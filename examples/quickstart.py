#!/usr/bin/env python3
"""Quickstart: simulate LRU-2 against classical LRU in thirty lines.

Runs the paper's two-pool workload (Example 1.1 / Section 4.1) through
the cache simulator at one buffer size and prints the hit ratios plus the
equi-effective buffer ratio B(1)/B(2).

Run::

    python examples/quickstart.py
"""

from repro import CacheSimulator, LRUKPolicy, LRUPolicy, make_policy
from repro.sim import PolicySpec, equi_effective_ratio
from repro.workloads import TwoPoolWorkload

BUFFER_PAGES = 100

workload = TwoPoolWorkload(n1=100, n2=10_000)


def hit_ratio(policy) -> float:
    """Warm up for 2,000 references, then measure 20,000 (Section 4.1)."""
    simulator = CacheSimulator(policy, capacity=BUFFER_PAGES)
    simulator.run(workload.references(2_000, seed=1))
    simulator.start_measurement()
    simulator.run(workload.references(20_000, seed=2))
    return simulator.hit_ratio


def main() -> None:
    print(f"Two-pool workload, B = {BUFFER_PAGES} buffer pages")
    print(f"  LRU-1 (classical LRU): {hit_ratio(LRUPolicy()):.3f}")
    print(f"  LRU-2 (the paper):     {hit_ratio(LRUKPolicy(k=2)):.3f}")
    print(f"  LRU-3:                 {hit_ratio(LRUKPolicy(k=3)):.3f}")
    # Policies are also available by registry name:
    print(f"  LFU:                   {hit_ratio(make_policy('lfu')):.3f}")

    ratio = equi_effective_ratio(
        workload,
        baseline=PolicySpec.lru(),
        improved=PolicySpec.lruk(2),
        capacity=BUFFER_PAGES,
        warmup=2_000,
        measured=20_000,
    )
    print(f"\nB(1)/B(2) at B={BUFFER_PAGES}: {ratio:.2f}  "
          f"(paper Table 4.1 reports 3.0)")
    print("LRU-1 needs that many times more buffer pages to match LRU-2.")


if __name__ == "__main__":
    main()
