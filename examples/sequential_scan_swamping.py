#!/usr/bin/env python3
"""Example 1.2: cache swamping by sequential scans.

"If a few batch processes begin sequential scans ... the pages read in by
the sequential scans will replace commonly referenced pages in buffer ...
cache swamping by sequential scans causes interactive response time to
deteriorate noticeably."

This example measures both halves of that claim:

1. **Hit ratios** — the interactive stream's hit ratio under LRU-1,
   LRU-2, 2Q and MRU, with the batch scanners off and on.
2. **Response times** — the extra misses become disk-queue traffic; a
   seek/rotation/queueing model turns the hit-ratio gap into the
   "interactive response time" deterioration the paper describes.

Run::

    python examples/sequential_scan_swamping.py
"""

from repro import CacheSimulator, LRUKPolicy, make_policy
from repro.storage import DiskQueue, DiskServiceModel
from repro.types import HitRatioCounter
from repro.workloads import ScanSwampingWorkload
from repro.workloads.sequential_scan import INTERACTIVE_PROCESS

BUFFER_PAGES = 600
REFERENCES = 60_000
WARMUP = 15_000
#: Simulated arrival rate of references (per millisecond).
ARRIVALS_PER_MS = 0.05


def run(policy, workload):
    """Interactive hit ratio + mean latency per interactive request.

    Every miss (interactive or batch) occupies the disk arm; an
    interactive request's expected latency is its miss probability times
    the response time its miss experiences behind the scan traffic —
    the paper's "interactive response time deteriorates" effect.
    """
    simulator = CacheSimulator(policy, BUFFER_PAGES)
    interactive = HitRatioCounter()
    queue = DiskQueue(DiskServiceModel())
    interactive_latency = 0.0
    interactive_requests = 0
    for index, reference in enumerate(workload.references(REFERENCES,
                                                          seed=11)):
        outcome = simulator.access(reference)
        arrival_ms = index / ARRIVALS_PER_MS
        response = 0.0
        if not outcome.hit:
            response = queue.submit(reference.page, arrival_ms)
        if index >= WARMUP and reference.process_id == INTERACTIVE_PROCESS:
            interactive.record(outcome.hit)
            interactive_requests += 1
            interactive_latency += response
    mean_latency = (interactive_latency / interactive_requests
                    if interactive_requests else 0.0)
    return interactive.hit_ratio, mean_latency


def build(name):
    if name in ("2q", "arc"):
        return make_policy(name, capacity=BUFFER_PAGES)
    if name == "lru-2":
        return LRUKPolicy(k=2)
    return make_policy(name)


def main() -> None:
    swamped = ScanSwampingWorkload(db_pages=100_000, hot_pages=500,
                                   hot_fraction=0.95,
                                   scan_processes=2, scan_share=0.4)
    quiet = swamped.interactive_only()

    print(f"Interactive hit ratio and disk response time "
          f"(B = {BUFFER_PAGES} pages)\n")
    header = (f"{'policy':<8} {'no scans':>9} {'with scans':>11} "
              f"{'degradation':>12} {'ms/request':>11}")
    print(header)
    print("-" * len(header))
    for name in ("lru", "lru-2", "2q", "mru", "lfu"):
        quiet_ratio, _ = run(build(name), quiet)
        swamped_ratio, latency_ms = run(build(name), swamped)
        label = "LRU-1" if name == "lru" else name.upper()
        print(f"{label:<8} {quiet_ratio:>9.3f} {swamped_ratio:>11.3f} "
              f"{quiet_ratio - swamped_ratio:>12.3f} {latency_ms:>11.2f}")

    print("\nLRU-1 loses its hot set to the scans (big degradation, long")
    print("queues); LRU-2 barely notices them: scan pages have infinite")
    print("backward 2-distance and are evicted first, exactly as Section")
    print("2 prescribes.")


if __name__ == "__main__":
    main()
