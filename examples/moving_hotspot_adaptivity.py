#!/usr/bin/env python3
"""Moving hot spots: LRU-2's adaptivity against LFU's perfect memory.

The paper's recurring argument against LFU (Sections 1.2 and 4.3): it
"never 'forgets' any previous references ... so it does not adapt itself
to evolving access patterns", whereas LRU-K "has a built-in notion of
'aging', considering only the last K references". And within the LRU-K
family, "LRU-3 is less responsive than LRU-2 ... it needs more references
to adapt itself to dynamic changes of reference frequencies" (Section 4.1).

This example makes both effects visible: a hot set of pages jumps to a
fresh region every epoch, and we chart each policy's hit ratio per
half-epoch window. Watch LFU fall off a cliff at the first jump and never
climb back, LRU-1 stay mediocre but stable, and LRU-2/LRU-3 re-learn the
new hot set each time (LRU-3 a beat slower).

Run::

    python examples/moving_hotspot_adaptivity.py
"""

from repro import CacheSimulator, LRUKPolicy, LRUPolicy
from repro.policies import LFUPolicy
from repro.sim import ascii_chart
from repro.types import HitRatioCounter
from repro.workloads import MovingHotspotWorkload

EPOCHS = 4
EPOCH_LENGTH = 20_000
WINDOW = EPOCH_LENGTH // 2
CAPACITY = 120


def run(policy, references):
    """Hit ratio per WINDOW-sized slice."""
    simulator = CacheSimulator(policy, CAPACITY)
    window = HitRatioCounter()
    series = []
    for index, reference in enumerate(references):
        window.record(simulator.access(reference).hit)
        if (index + 1) % WINDOW == 0:
            series.append(window.hit_ratio)
            window.reset()
    return series


def main() -> None:
    workload = MovingHotspotWorkload(db_pages=10_000, hot_pages=100,
                                     hot_fraction=0.8,
                                     epoch_length=EPOCH_LENGTH)
    references = list(workload.references(EPOCHS * EPOCH_LENGTH, seed=21))
    print(f"Hot set of {workload.hot_pages} pages carrying "
          f"{workload.hot_fraction:.0%} of references jumps every "
          f"{EPOCH_LENGTH} references; B = {CAPACITY}.\n")

    series = {}
    for label, policy in (("LRU-1", LRUPolicy()),
                          ("LRU-2", LRUKPolicy(k=2)),
                          ("LRU-3", LRUKPolicy(k=3)),
                          ("LFU", LFUPolicy())):
        series[label] = run(policy, references)

    windows = list(range(1, len(series["LRU-1"]) + 1))
    print(ascii_chart([float(w) for w in windows], series,
                      width=56, height=14, y_min=0.0, y_max=1.0,
                      x_label="half-epoch window"))
    print()
    header = f"{'window':>7}" + "".join(f"{label:>9}" for label in series)
    print(header)
    for row_index, window in enumerate(windows):
        jump = " <- hot set jumped" if row_index % 2 == 0 and row_index else ""
        cells = "".join(f"{series[label][row_index]:>9.3f}"
                        for label in series)
        print(f"{window:>7}{cells}{jump}")
    print("\nLFU's lifetime counts point at the previous epochs' pages;")
    print("LRU-2 needs only two references to a new page to re-rank it.")


if __name__ == "__main__":
    main()
