#!/usr/bin/env python3
"""Tuning LRU-K: the Correlated Reference Period and Retained Information
Period in practice (paper Sections 2.1.1 and 2.1.2).

Part 1 runs a transactional workload on the real database engine with
update transactions and injected aborts — the paper's correlated
reference-pair types (1) and (2) — and shows how the CRP changes what
LRU-2 learns from them.

Part 2 derives the paper's canonical constants from the Five Minute Rule
helpers and shows the RIP's memory/recognition trade-off on a moving
hot-spot workload.

Run::

    python examples/tuning_crp_rip.py
"""

from repro import CacheSimulator, LRUKPolicy
from repro.clock import ReferenceClock
from repro.core import (
    five_minute_rule_interarrival,
    suggest_correlated_reference_period,
    suggest_retained_information_period,
)
from repro.workloads import CustomerLookupWorkload, MovingHotspotWorkload


def part_1_crp() -> None:
    print("Part 1 — Correlated Reference Period")
    print("------------------------------------")
    workload = CustomerLookupWorkload(customers=2_000,
                                      update_fraction=0.5,
                                      abort_probability=0.1,
                                      locality_run_length=4)
    references = list(workload.references(30_000, seed=3))
    capacity = len(workload.hot_pages()) + 2
    print(f"engine workload: lookups+updates with retries, "
          f"B = {capacity} pages")
    print(f"{'CRP':>5} {'hit ratio':>10} {'correlated refs':>16}")
    for crp in (0, 2, 6, 12, 24):
        policy = LRUKPolicy(k=2, correlated_reference_period=crp)
        simulator = CacheSimulator(policy, capacity)
        for index, reference in enumerate(references):
            if index == 6_000:
                simulator.start_measurement()
            simulator.access(reference)
        print(f"{crp:>5} {simulator.hit_ratio:>10.3f} "
              f"{policy.stats.correlated_references:>16}")
    print("A CRP covering the intra-transaction re-reference gap stops")
    print("bursts from faking short interarrival times.\n")


def part_2_rip() -> None:
    print("Part 2 — Retained Information Period")
    print("------------------------------------")
    break_even = five_minute_rule_interarrival()
    print(f"Five Minute Rule break-even: {break_even:.0f} s "
          f"(paper: ~100 s)")
    print(f"canonical CRP: "
          f"{suggest_correlated_reference_period():.0f} s; "
          f"canonical RIP (K=2): "
          f"{suggest_retained_information_period(break_even):.0f} s")
    clock = ReferenceClock(references_per_second=130.0)
    rip_refs = suggest_retained_information_period(break_even, clock=clock)
    print(f"at 130 refs/s that RIP is {rip_refs} logical references\n")

    workload = MovingHotspotWorkload(db_pages=200_000, hot_pages=50,
                                     hot_fraction=0.0625,
                                     epoch_length=10_000)
    print("moving hot spot, B = 80 pages (history must outlive residence):")
    print(f"{'RIP':>7} {'hit ratio':>10} {'history blocks':>15}")
    for rip in (200, 800, 3_200, None):
        policy = LRUKPolicy(k=2, retained_information_period=rip)
        simulator = CacheSimulator(policy, 80)
        for index, reference in enumerate(workload.references(40_000,
                                                              seed=5)):
            if index == 10_000:
                simulator.start_measurement()
            simulator.access(reference)
        label = "inf" if rip is None else str(rip)
        print(f"{label:>7} {simulator.hit_ratio:>10.3f} "
              f"{policy.retained_blocks:>15}")
    print("Too short a RIP forgets newly-hot pages between references;")
    print("past the hot interarrival the hit ratio plateaus while the")
    print("history footprint keeps growing — the Section 5 open issue.")


if __name__ == "__main__":
    part_1_crp()
    part_2_rip()
