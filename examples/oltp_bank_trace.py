#!/usr/bin/env python3
"""The Section 4.3 OLTP experiment end to end.

Generates the calibrated synthetic CODASYL bank trace, verifies its
locality profile against the statistics the paper reports for the
production trace, writes it to a trace file, and replays it against
LRU-1, LRU-2 and LFU at a few buffer sizes — a condensed Table 4.3.

Run::

    python examples/oltp_bank_trace.py [--scale 0.25] [--trace-file out.trace]
"""

import argparse
import tempfile
from pathlib import Path

from repro import CacheSimulator, LRUKPolicy, LRUPolicy
from repro.analysis import profile_trace
from repro.policies import LFUPolicy
from repro.storage import read_trace, write_trace
from repro.workloads import BankOLTPWorkload
from repro.workloads.oltp import (
    FIVE_MINUTE_WINDOW_REFERENCES,
    PAPER_TRACE_LENGTH,
)

BUFFER_SIZES = (200, 600, 1400, 3000)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="fraction of the paper's 470k references")
    parser.add_argument("--trace-file", type=Path, default=None)
    args = parser.parse_args()

    count = int(PAPER_TRACE_LENGTH * args.scale)
    window = max(1, int(FIVE_MINUTE_WINDOW_REFERENCES * args.scale))
    print(f"Generating {count} references of the synthetic bank trace ...")
    references = list(BankOLTPWorkload().references(count, seed=0))

    # -- characterize, as the paper does in Section 4.3 ----------------------
    profile = profile_trace(references, window)
    print("\nTrace characterization (paper: 40%->3%, 90%->65%, ~1400 pages):")
    for line in profile.summary_lines():
        print(f"  {line}")

    # -- persist and replay from the trace file ------------------------------
    trace_path = args.trace_file
    if trace_path is None:
        trace_path = Path(tempfile.gettempdir()) / "repro-bank.trace"
    written = write_trace(trace_path, references,
                          comment="synthetic CODASYL bank trace")
    print(f"\nWrote {written} references to {trace_path}")
    replay = list(read_trace(trace_path))

    # -- the Table 4.3 comparison --------------------------------------------
    warmup = len(replay) // 7
    print(f"\nReplaying against the Table 4.3 policies "
          f"(warm-up {warmup} references):\n")
    print(f"{'B':>6} {'LRU-1':>8} {'LRU-2':>8} {'LFU':>8}")
    for capacity in BUFFER_SIZES:
        row = []
        for policy in (LRUPolicy(), LRUKPolicy(k=2), LFUPolicy()):
            simulator = CacheSimulator(policy, capacity)
            for index, reference in enumerate(replay):
                if index == warmup:
                    simulator.start_measurement()
                simulator.access(reference)
            row.append(simulator.hit_ratio)
        print(f"{capacity:>6} {row[0]:>8.3f} {row[1]:>8.3f} {row[2]:>8.3f}")

    print("\nShape to expect (paper Table 4.3): LRU-2 > LFU > LRU-1 at")
    print("small B, converging as B approaches the trace's hot footprint.")


if __name__ == "__main__":
    main()
