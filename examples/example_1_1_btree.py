#!/usr/bin/env python3
"""Example 1.1, executed for real.

The paper opens with a B-tree scenario: customers referenced through a
clustered CUST-ID index produce the reference pattern I1, R1, I2, R2, ...
(alternating index-leaf and record pages), and "using the LRU algorithm
... the pages held in memory buffers will be the hundred most recently
referenced ones ... clearly inappropriate behavior".

This example does not *model* that scenario — it *executes* it: it builds
the customer table and B-tree on the simulated disk, runs random indexed
lookups through the buffer manager, captures the resulting page reference
string, and replays it against LRU-1, LRU-2 and A0, reporting how many
index pages each policy ends up holding.

Run::

    python examples/example_1_1_btree.py [--customers 8000]
"""

import argparse

from repro import (
    BufferPool,
    CacheSimulator,
    LRUKPolicy,
    LRUPolicy,
    SimulatedDisk,
    TraceRecorder,
)
from repro.analysis import skew_profile
from repro.db import build_customer_database
from repro.policies import A0Policy
from repro.stats import SeededRng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--customers", type=int, default=8_000)
    parser.add_argument("--lookups", type=int, default=12_000)
    args = parser.parse_args()

    # -- build the database (Example 1.1 geometry) ---------------------------
    disk = SimulatedDisk()
    pool = BufferPool(disk, LRUPolicy(), capacity=max(64, args.customers))
    print(f"Building {args.customers} customers "
          f"(2 records/page, 200 index entries/leaf) ...")
    database = build_customer_database(pool, customers=args.customers)
    leaves = database.index_leaf_pages()
    records = database.record_pages()
    hot = {database.index.root_page_id, *leaves}
    print(f"  {len(leaves)} B-tree leaf pages, {len(records)} record pages")

    # -- execute the workload and capture its reference string ---------------
    recorder = TraceRecorder()
    pool.observer = recorder
    rng = SeededRng(7)
    for _ in range(args.lookups):
        database.lookup(rng.randrange(args.customers))
    pool.observer = None
    references = list(recorder.references)
    print(f"  captured {len(references)} page references "
          f"({args.lookups} lookups x root/leaf/record)")

    profile = skew_profile(references)
    index_fraction = len(hot) / profile.touched_pages
    print(f"  index pages are {index_fraction:.1%} of touched pages but "
          f"{profile.mass_of_top_fraction(index_fraction):.0%} of references")

    # -- replay against the policies -----------------------------------------
    # Buffer sized to hold exactly the index plus two slots, the regime
    # where the paper says LRU-1 misbehaves.
    capacity = len(hot) + 2
    probabilities = {page: 0.0 for page in references}
    per_lookup = 1.0 / args.lookups / 3.0
    for page in {r.page for r in references}:
        if page in hot:
            probabilities[page] = 1.0 / (3 * len(leaves))
        else:
            probabilities[page] = per_lookup
    print(f"\nReplaying with B = {capacity} buffer pages:")
    print(f"  {'policy':<8} {'hit ratio':>9}  {'index pages held':>16}")
    for label, policy in (
            ("LRU-1", LRUPolicy()),
            ("LRU-2", LRUKPolicy(k=2)),
            ("A0", A0Policy(probabilities))):
        simulator = CacheSimulator(policy, capacity)
        for index, reference in enumerate(references):
            if index == len(references) // 4:
                simulator.start_measurement()
            simulator.access(reference)
        held = len(simulator.resident_pages & hot)
        print(f"  {label:<8} {simulator.hit_ratio:>9.3f}  "
              f"{held:>7} / {len(hot)}")

    print("\nLRU-2 discovers the index/record frequency split by itself —")
    print("the behaviour the paper's Section 1.2 promises.")


if __name__ == "__main__":
    main()
