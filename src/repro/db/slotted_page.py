"""Slotted pages: variable-length records inside a fixed page payload.

Layout (within the page payload, which is
:data:`repro.storage.page.PAGE_PAYLOAD_SIZE` bytes):

    [ header | slot directory -> ...grows... | free | ...data grows <- ]

- header: slot_count (H), data_start (H) — the offset where record data
  begins (data is packed at the payload's tail, growing downward);
- slot directory: per slot (offset H, length H); offset 0xFFFF marks a
  deleted slot (tombstone), so RIDs of surviving records stay stable.

The class operates on an in-memory ``bytearray``; callers read a page
payload through the buffer pool, wrap it, mutate, then write the new
payload back (marking the frame dirty). Compaction rewrites the data area
in place when a deleted slot's space is needed.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ..errors import DatabaseError, PageOverflowError
from ..storage.page import PAGE_PAYLOAD_SIZE

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_TOMBSTONE = 0xFFFF


class SlottedPage:
    """A mutable view over one slotted page payload."""

    def __init__(self, payload: bytes = b"",
                 capacity: int = PAGE_PAYLOAD_SIZE) -> None:
        if capacity < _HEADER.size + _SLOT.size:
            raise DatabaseError("page capacity too small for slotted layout")
        self.capacity = capacity
        if payload:
            buffer = bytearray(payload)
            if len(buffer) < capacity:
                buffer.extend(b"\x00" * (capacity - len(buffer)))
            self._buffer = buffer
            self._slot_count, self._data_start = _HEADER.unpack_from(buffer, 0)
            if self._data_start == 0:
                # Fresh zeroed payload: initialize.
                self._data_start = capacity
        else:
            self._buffer = bytearray(capacity)
            self._slot_count = 0
            self._data_start = capacity

    # -- geometry -----------------------------------------------------------------

    def _slot_offset(self, slot: int) -> int:
        return _HEADER.size + slot * _SLOT.size

    @property
    def slot_count(self) -> int:
        """Number of slots ever allocated (including tombstones)."""
        return self._slot_count

    @property
    def free_space(self) -> int:
        """Contiguous bytes available for a new record + its slot entry."""
        directory_end = self._slot_offset(self._slot_count)
        return max(0, self._data_start - directory_end - _SLOT.size)

    def fits(self, record: bytes) -> bool:
        """True when inserting the record would succeed without compaction."""
        return len(record) <= self.free_space

    # -- record operations -----------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record; returns the slot number.

        Reuses a tombstoned slot when one exists (the record data still
        goes to the tail); raises :class:`PageOverflowError` when the
        record cannot fit even after compaction.
        """
        if len(record) > self.capacity - _HEADER.size - _SLOT.size:
            raise PageOverflowError(
                f"record of {len(record)} bytes can never fit a page")
        reuse = self._find_tombstone()
        new_slots = self._slot_count + (0 if reuse is not None else 1)
        directory_end = self._slot_offset(new_slots)
        if self._data_start - len(record) < directory_end:
            self._compact()
        if self._data_start - len(record) < directory_end:
            raise PageOverflowError("page full")

        self._data_start -= len(record)
        self._buffer[self._data_start:self._data_start + len(record)] = record
        if reuse is not None:
            slot = reuse
        else:
            slot = self._slot_count
            self._slot_count += 1
        _SLOT.pack_into(self._buffer, self._slot_offset(slot),
                        self._data_start, len(record))
        self._write_header()
        return slot

    def get(self, slot: int) -> bytes:
        """Read the record in a slot; raises on tombstones/bad slots."""
        offset, length = self._slot_entry(slot)
        if offset == _TOMBSTONE:
            raise DatabaseError(f"slot {slot} is deleted")
        return bytes(self._buffer[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone a slot; its data space is reclaimed on compaction."""
        offset, _ = self._slot_entry(slot)
        if offset == _TOMBSTONE:
            raise DatabaseError(f"slot {slot} already deleted")
        _SLOT.pack_into(self._buffer, self._slot_offset(slot), _TOMBSTONE, 0)

    def update(self, slot: int, record: bytes) -> None:
        """Replace a record in place (same slot number)."""
        offset, length = self._slot_entry(slot)
        if offset == _TOMBSTONE:
            raise DatabaseError(f"slot {slot} is deleted")
        if len(record) <= length:
            self._buffer[offset:offset + len(record)] = record
            _SLOT.pack_into(self._buffer, self._slot_offset(slot),
                            offset, len(record))
            return
        # Grow: tombstone + reinsert into the same slot id.
        _SLOT.pack_into(self._buffer, self._slot_offset(slot), _TOMBSTONE, 0)
        self._compact()
        directory_end = self._slot_offset(self._slot_count)
        if self._data_start - len(record) < directory_end:
            raise PageOverflowError("updated record no longer fits the page")
        self._data_start -= len(record)
        self._buffer[self._data_start:self._data_start + len(record)] = record
        _SLOT.pack_into(self._buffer, self._slot_offset(slot),
                        self._data_start, len(record))
        self._write_header()

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (slot, record) for every live slot, in slot order."""
        for slot in range(self._slot_count):
            offset, length = self._slot_entry(slot)
            if offset != _TOMBSTONE:
                yield slot, bytes(self._buffer[offset:offset + length])

    @property
    def live_records(self) -> int:
        """Number of non-deleted slots."""
        return sum(1 for _ in self.records())

    # -- serialization ---------------------------------------------------------------

    def to_payload(self) -> bytes:
        """The page payload bytes to hand back to the buffer pool."""
        self._write_header()
        return bytes(self._buffer)

    # -- internals ---------------------------------------------------------------------

    def _write_header(self) -> None:
        _HEADER.pack_into(self._buffer, 0, self._slot_count, self._data_start)

    def _slot_entry(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self._slot_count:
            raise DatabaseError(f"slot {slot} out of range")
        return _SLOT.unpack_from(self._buffer, self._slot_offset(slot))

    def _find_tombstone(self) -> Optional[int]:
        for slot in range(self._slot_count):
            offset, _ = _SLOT.unpack_from(self._buffer, self._slot_offset(slot))
            if offset == _TOMBSTONE:
                return slot
        return None

    def _compact(self) -> None:
        """Repack live records at the tail, dropping dead space."""
        live: List[Tuple[int, bytes]] = list(self.records())
        self._data_start = self.capacity
        for slot, record in live:
            self._data_start -= len(record)
            self._buffer[self._data_start:self._data_start + len(record)] = record
            _SLOT.pack_into(self._buffer, self._slot_offset(slot),
                            self._data_start, len(record))
        self._write_header()
