"""Transactions, processes, aborts, and retries.

The paper's Section 2.1.1 taxonomy of correlated reference pairs is
defined in terms of transactions and processes: intra-transaction
re-reads, transaction retry after abort, and intra-process access to the
same page by consecutive transactions. This module provides just enough
transactional machinery to *generate* those patterns honestly:

- :class:`Transaction` — carries ids, records the page-level accesses its
  operations performed, commits or aborts;
- :class:`TransactionManager` — issues transaction ids per process,
  injects aborts with a seeded probability, and implements retry by
  replaying a transaction body until it commits.

There is no concurrency control or recovery here (the paper's algorithm
is orthogonal to both); aborts are injected faults whose only observable
effect is the retried reference pattern — precisely the effect LRU-K's
Correlated Reference Period is designed to discount.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from ..errors import TransactionAborted, TransactionError
from ..stats import SeededRng
from ..types import PageId


class TxnState(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work issued by a process."""

    def __init__(self, txn_id: int, process_id: int) -> None:
        self.txn_id = txn_id
        self.process_id = process_id
        self.state = TxnState.ACTIVE
        self.pages_touched: List[PageId] = []

    def touch(self, page_id: PageId) -> None:
        """Record a page access made on behalf of this transaction."""
        self._require_active()
        self.pages_touched.append(page_id)

    def commit(self) -> None:
        """Finish successfully."""
        self._require_active()
        self.state = TxnState.COMMITTED

    def abort(self) -> None:
        """Roll back (bookkeeping only; callers replay for retry)."""
        self._require_active()
        self.state = TxnState.ABORTED

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} already {self.state.value}")


#: A transaction body: receives the transaction, performs work, may raise
#: TransactionAborted (injected or its own) to trigger a retry.
TxnBody = Callable[[Transaction], None]


class TransactionManager:
    """Issues transactions and replays aborted ones.

    Parameters
    ----------
    abort_probability:
        Chance that a transaction is aborted by an injected fault at a
        random point of its body — producing the paper's type-(2)
        Transaction-Retry correlated references on replay.
    max_retries:
        Safety bound on replays of one body.
    """

    def __init__(self, abort_probability: float = 0.0, seed: int = 0,
                 max_retries: int = 5) -> None:
        if not 0.0 <= abort_probability < 1.0:
            raise TransactionError("abort probability must lie in [0, 1)")
        if max_retries < 0:
            raise TransactionError("max_retries cannot be negative")
        self.abort_probability = abort_probability
        self.max_retries = max_retries
        self._rng = SeededRng(seed)
        self._next_txn_id = 1
        self.committed = 0
        self.aborted = 0

    def begin(self, process_id: int = 0) -> Transaction:
        """Start a new transaction for a process."""
        txn = Transaction(self._next_txn_id, process_id)
        self._next_txn_id += 1
        return txn

    def should_inject_abort(self) -> bool:
        """Fault-injection coin flip (exposed for workload generators)."""
        return self._rng.random() < self.abort_probability

    def run(self, body: TxnBody, process_id: int = 0) -> Transaction:
        """Execute a body to commit, replaying after (injected) aborts.

        The body may consult ``txn`` and must be replayable — exactly the
        property real retry loops require.
        """
        attempts = 0
        while True:
            txn = self.begin(process_id)
            inject = self.should_inject_abort()
            try:
                body(txn)
                if inject:
                    raise TransactionAborted(
                        f"injected abort of txn {txn.txn_id}")
            except TransactionAborted:
                txn.abort()
                self.aborted += 1
                attempts += 1
                if attempts > self.max_retries:
                    raise
                continue
            txn.commit()
            self.committed += 1
            return txn
