"""A CODASYL-style network database.

The paper's Table 4.3 trace came from "the production OLTP system of a
large bank ... a CODASYL database with a total size of 20 Gigabytes". The
network (CODASYL DBTG) model differs from relational storage in ways that
shape its page reference pattern, and this module implements those
mechanisms at laptop scale so the synthetic trace generator rests on real
behaviour:

- **CALC location**: records are placed on a page determined by hashing
  their key, and retrieved by recomputing the hash — one direct page
  reference per lookup, no index traversal.
- **VIA SET location / set chains**: member records are linked to their
  owner in an embedded chain (owner record holds the first member RID,
  each member holds the next). Navigation (``FIND NEXT WITHIN SET``)
  follows RIDs record to record, touching one page per step.

Record layout: every record is ``[id, next_rid_bytes, payload]`` encoded
with :func:`~repro.db.record.encode_fields` and padded to its type's fixed
size; chains are genuinely stored in the records, so navigation *must*
read each record's page to find the next — exactly the navigational I/O
of a real network database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..buffer.pool import BufferPool
from ..errors import ConfigurationError, DatabaseError, RecordNotFoundError
from ..stats import SeededRng
from ..types import AccessKind, PageId
from .record import RecordId, decode_fields, encode_fields
from .slotted_page import SlottedPage

#: Encoded RID placeholder meaning "end of chain".
_NO_RID = b"\x00" * RecordId.encoded_size()


@dataclass(frozen=True)
class RecordType:
    """A CODASYL record type with CALC or VIA placement."""

    name: str
    count: int
    record_size: int = 120
    #: "calc" = hashed placement (direct access); "via" = clustered near
    #: its owner chain (sequential-ish placement in build order).
    location_mode: str = "calc"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError(f"record type {self.name}: empty")
        if self.record_size <= 40:
            raise ConfigurationError(
                f"record type {self.name}: record size too small for header")
        if self.location_mode not in ("calc", "via"):
            raise ConfigurationError(
                f"record type {self.name}: unknown location mode")


@dataclass(frozen=True)
class SetType:
    """A CODASYL set: owner record type -> chained member record type."""

    name: str
    owner: str
    member: str


@dataclass(frozen=True)
class CodasylSchema:
    """Record types plus set types."""

    record_types: Sequence[RecordType]
    set_types: Sequence[SetType]

    def record_type(self, name: str) -> RecordType:
        for record_type in self.record_types:
            if record_type.name == name:
                return record_type
        raise ConfigurationError(f"unknown record type {name!r}")

    def __post_init__(self) -> None:
        names = {rt.name for rt in self.record_types}
        if len(names) != len(self.record_types):
            raise ConfigurationError("duplicate record type names")
        for set_type in self.set_types:
            if set_type.owner not in names or set_type.member not in names:
                raise ConfigurationError(
                    f"set {set_type.name!r} references unknown record types")


class _TypeStorage:
    """Page range + geometry of one record type."""

    def __init__(self, record_type: RecordType, pages: List[PageId],
                 per_page: int) -> None:
        self.record_type = record_type
        self.pages = pages
        self.per_page = per_page

    def rid_of(self, ordinal: int) -> RecordId:
        """RID of the ordinal-th record of this type (build-order placement)."""
        if not 0 <= ordinal < self.record_type.count:
            raise RecordNotFoundError(
                f"{self.record_type.name}[{ordinal}]")
        return RecordId(page_id=self.pages[ordinal // self.per_page],
                        slot=ordinal % self.per_page)


class CodasylDatabase:
    """A built network database with navigational operations."""

    def __init__(self, pool: BufferPool, schema: CodasylSchema,
                 seed: int = 0) -> None:
        self.pool = pool
        self.schema = schema
        self._storage: Dict[str, _TypeStorage] = {}
        # set name -> owner ordinal -> first member ordinal (in-record
        # chains hold the rest; this map only seeds build-time wiring).
        self._rng = SeededRng(seed)
        self._build()

    # -- construction -----------------------------------------------------------------

    def _build(self) -> None:
        for record_type in self.schema.record_types:
            self._storage[record_type.name] = self._allocate_type(record_type)
        # Wire chains: for each set, partition members round-robin among
        # owners (randomized start so chains interleave pages), then embed
        # next-RIDs into the member records and first-RIDs into owners.
        chains: Dict[str, Dict[int, List[int]]] = {}
        for set_type in self.schema.set_types:
            owners = self.schema.record_type(set_type.owner).count
            members = self.schema.record_type(set_type.member).count
            assignment: Dict[int, List[int]] = {o: [] for o in range(owners)}
            for member in range(members):
                assignment[self._rng.randrange(owners)].append(member)
            chains[set_type.name] = assignment
        self._write_records(chains)

    def _allocate_type(self, record_type: RecordType) -> _TypeStorage:
        probe = SlottedPage()
        per_page = 0
        blank = b"\x00" * record_type.record_size
        while probe.fits(blank):
            probe.insert(blank)
            per_page += 1
        if per_page == 0:
            raise ConfigurationError(
                f"record type {record_type.name}: record larger than a page")
        page_count = -(-record_type.count // per_page)  # ceil division
        pages = [self.pool.disk.allocate() for _ in range(page_count)]
        return _TypeStorage(record_type, pages, per_page)

    def _write_records(self,
                       chains: Dict[str, Dict[int, List[int]]]) -> None:
        # Precompute, per record, its first/next chain pointers. A record
        # type may participate in at most one set as owner and one as
        # member (enough for the bank schema; asserted here).
        first_of: Dict[str, Dict[int, RecordId]] = {}
        next_of: Dict[str, Dict[int, RecordId]] = {}
        for set_type in self.schema.set_types:
            owner_first = first_of.setdefault(set_type.owner, {})
            member_next = next_of.setdefault(set_type.member, {})
            member_storage = self._storage[set_type.member]
            for owner, members in chains[set_type.name].items():
                if not members:
                    continue
                if owner in owner_first:
                    raise DatabaseError(
                        f"record type {set_type.owner} owns multiple sets; "
                        "unsupported")
                owner_first[owner] = member_storage.rid_of(members[0])
                for position in range(len(members) - 1):
                    member_next[members[position]] = member_storage.rid_of(
                        members[position + 1])

        for record_type in self.schema.record_types:
            storage = self._storage[record_type.name]
            firsts = first_of.get(record_type.name, {})
            nexts = next_of.get(record_type.name, {})
            if firsts and nexts:
                raise DatabaseError(
                    f"record type {record_type.name} is both a set owner "
                    "and a set member; the single-pointer layout cannot "
                    "store both chains")
            ordinal = 0
            for page_id in storage.pages:
                slotted = SlottedPage()
                for _ in range(storage.per_page):
                    if ordinal >= record_type.count:
                        break
                    chain_rid = firsts.get(ordinal) or nexts.get(ordinal)
                    encoded = encode_fields([
                        ordinal,
                        chain_rid.to_bytes() if chain_rid else _NO_RID,
                        b"\x00" * 8,
                    ])
                    padded = encoded + b"\x00" * max(
                        0, record_type.record_size - len(encoded))
                    slotted.insert(padded)
                    ordinal += 1
                self.pool.fetch(page_id, pin=True, kind=AccessKind.WRITE)
                self.pool.write_payload(page_id, slotted.to_payload())
                self.pool.unpin(page_id, dirty=True)
        self.pool.flush_all()

    # -- access paths --------------------------------------------------------------------

    def storage(self, type_name: str) -> _TypeStorage:
        """Page geometry of a record type (used to seed workload models)."""
        return self._storage[type_name]

    def _read_record(self, rid: RecordId,
                     kind: AccessKind = AccessKind.READ) -> List:
        frame = self.pool.fetch(rid.page_id, pin=True, kind=kind)
        page = frame.page
        assert page is not None
        try:
            record = SlottedPage(page.payload).get(rid.slot)
        finally:
            self.pool.unpin(rid.page_id)
        return decode_fields(record)

    def find_calc(self, type_name: str, key: int) -> List:
        """CALC retrieval: hash the key to its page, read the record."""
        storage = self._storage[type_name]
        return self._read_record(storage.rid_of(key % storage.record_type.count))

    def walk_set(self, set_type_name: str, owner_ordinal: int,
                 limit: Optional[int] = None) -> Iterator[List]:
        """FIND NEXT WITHIN SET: owner record, then the member chain."""
        set_type = self._set_type(set_type_name)
        owner_storage = self._storage[set_type.owner]
        member_count_bound = self.schema.record_type(set_type.member).count
        owner_fields = self._read_record(owner_storage.rid_of(owner_ordinal))
        chain = owner_fields[1]
        steps = 0
        while chain != _NO_RID:
            if limit is not None and steps >= limit:
                return
            if steps > member_count_bound:
                raise DatabaseError(
                    f"cycle detected in set {set_type_name!r}")
            rid = RecordId.from_bytes(chain)
            fields = self._read_record(rid)
            yield fields
            chain = fields[1]
            steps += 1

    def update_record(self, type_name: str, ordinal: int) -> None:
        """Dirty a record's page in place (balance-update style write)."""
        storage = self._storage[type_name]
        rid = storage.rid_of(ordinal)
        frame = self.pool.fetch(rid.page_id, pin=True, kind=AccessKind.WRITE)
        page = frame.page
        assert page is not None
        slotted = SlottedPage(page.payload)
        record = slotted.get(rid.slot)
        slotted.update(rid.slot, record)  # same bytes; the write is the point
        self.pool.write_payload(rid.page_id, slotted.to_payload())
        self.pool.unpin(rid.page_id, dirty=True)

    def _set_type(self, name: str) -> SetType:
        for set_type in self.schema.set_types:
            if set_type.name == name:
                return set_type
        raise ConfigurationError(f"unknown set type {name!r}")


def build_bank_database(pool: BufferPool,
                        branches: int = 10,
                        tellers: int = 100,
                        accounts: int = 10_000,
                        seed: int = 0) -> CodasylDatabase:
    """The bank schema behind the Section 4.3 trace, at laptop scale.

    BRANCH and TELLER are tiny CALC-placed hot types; ACCOUNT is a large
    CALC type; the BRANCH-ACCOUNT set supports navigational statements.
    """
    schema = CodasylSchema(
        record_types=[
            RecordType("branch", count=branches, record_size=120),
            RecordType("teller", count=tellers, record_size=120),
            RecordType("account", count=accounts, record_size=120,
                       location_mode="calc"),
        ],
        set_types=[SetType("branch_accounts", owner="branch",
                           member="account")],
    )
    return CodasylDatabase(pool, schema, seed=seed)
