"""The catalog: named database objects persisted on page 0.

Maps object names to their anchor pages — a heap file's page list head, a
B-tree's root. Serialized as a text directory on the database's first page
so a database can be closed and reopened against the same simulated disk
(the test suite exercises that round trip).

Format (page 0 payload, ASCII):

    repro-catalog v1
    <name> <kind> <extent> [<extent> ...]

where an extent is either a single page id (``17``) or an inclusive run
(``2-2001``). Heap files allocate contiguously, so run-length encoding
keeps even a 10,000-page table's entry within one catalog page.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..buffer.pool import BufferPool
from ..errors import DatabaseError
from ..types import AccessKind, PageId

_MAGIC = "repro-catalog v1"


def _encode_extents(pages: List[PageId]) -> List[str]:
    """Compress a page list into single-id and run extents."""
    extents: List[str] = []
    index = 0
    while index < len(pages):
        start = pages[index]
        end = start
        while index + 1 < len(pages) and pages[index + 1] == end + 1:
            index += 1
            end = pages[index]
        extents.append(str(start) if start == end else f"{start}-{end}")
        index += 1
    return extents


def _decode_extents(extents: List[str]) -> List[PageId]:
    """Expand extents back into the page list."""
    pages: List[PageId] = []
    for extent in extents:
        if "-" in extent:
            start_text, end_text = extent.split("-", 1)
            start, end = int(start_text), int(end_text)
            if end < start:
                raise DatabaseError(f"bad catalog extent {extent!r}")
            pages.extend(range(start, end + 1))
        else:
            pages.append(int(extent))
    return pages


class Catalog:
    """Name -> (kind, pages) directory stored on a fixed catalog page."""

    def __init__(self, pool: BufferPool,
                 catalog_page_id: PageId = 0) -> None:
        self.pool = pool
        self.catalog_page_id = catalog_page_id
        self._entries: Dict[str, Tuple[str, List[PageId]]] = {}
        if not pool.disk.is_allocated(catalog_page_id):
            allocated = pool.disk.allocate()
            if allocated != catalog_page_id:
                raise DatabaseError(
                    "catalog page must be the first allocation")
            self.save()
        else:
            self.load()

    # -- persistence ---------------------------------------------------------------

    def save(self) -> None:
        """Serialize the directory to the catalog page."""
        lines = [_MAGIC]
        for name in sorted(self._entries):
            kind, pages = self._entries[name]
            if " " in name:
                raise DatabaseError("object names cannot contain spaces")
            lines.append(" ".join([name, kind] + _encode_extents(pages)))
        payload = "\n".join(lines).encode("ascii")
        self.pool.fetch(self.catalog_page_id, pin=True, kind=AccessKind.WRITE)
        self.pool.write_payload(self.catalog_page_id, payload)
        self.pool.unpin(self.catalog_page_id, dirty=True)

    def load(self) -> None:
        """Read the directory back from the catalog page."""
        frame = self.pool.fetch(self.catalog_page_id, pin=True)
        page = frame.page
        assert page is not None
        text = page.payload.decode("ascii")
        self.pool.unpin(self.catalog_page_id)
        lines = text.splitlines()
        if not lines or lines[0] != _MAGIC:
            raise DatabaseError("catalog page is corrupt or uninitialized")
        entries: Dict[str, Tuple[str, List[PageId]]] = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatabaseError(f"bad catalog line: {line!r}")
            name, kind = parts[0], parts[1]
            try:
                pages = _decode_extents(parts[2:])
            except ValueError:
                raise DatabaseError(f"bad catalog line: {line!r}") from None
            entries[name] = (kind, pages)
        self._entries = entries

    # -- directory operations ------------------------------------------------------------

    def register(self, name: str, kind: str, pages: List[PageId]) -> None:
        """Add or replace an object entry and persist immediately."""
        self._entries[name] = (kind, list(pages))
        self.save()

    def lookup(self, name: str) -> Tuple[str, List[PageId]]:
        """Fetch an object's (kind, pages); raises when unknown."""
        try:
            kind, pages = self._entries[name]
        except KeyError:
            raise DatabaseError(f"no catalog entry named {name!r}") from None
        return kind, list(pages)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> List[str]:
        """All registered object names, sorted."""
        return sorted(self._entries)
