"""Records and record identifiers.

A record is a byte string living in a slot of a slotted page; a
:class:`RecordId` names it by ``(page_id, slot)``, the classical RID.
Field encoding is a tiny length-prefixed format sufficient for the
examples (integers and short strings), with round-trip helpers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Union

from ..errors import DatabaseError
from ..types import PageId

Field = Union[int, str, bytes]

_RID = struct.Struct("<qH")


@dataclass(frozen=True, order=True)
class RecordId:
    """Physical record address: page id + slot number."""

    page_id: PageId
    slot: int

    def to_bytes(self) -> bytes:
        """10-byte fixed encoding (used as B-tree values)."""
        return _RID.pack(self.page_id, self.slot)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RecordId":
        if len(raw) != _RID.size:
            raise DatabaseError(f"bad RecordId encoding of {len(raw)} bytes")
        page_id, slot = _RID.unpack(raw)
        return cls(page_id=page_id, slot=slot)

    @classmethod
    def encoded_size(cls) -> int:
        """Size in bytes of the fixed encoding."""
        return _RID.size


# Field type tags.
_TAG_INT = 0
_TAG_STR = 1
_TAG_BYTES = 2


def encode_fields(fields: Sequence[Field]) -> bytes:
    """Encode a heterogeneous field tuple into record bytes."""
    parts = [struct.pack("<H", len(fields))]
    for field in fields:
        if isinstance(field, bool):
            raise DatabaseError("boolean fields are not supported")
        if isinstance(field, int):
            parts.append(struct.pack("<Bq", _TAG_INT, field))
        elif isinstance(field, str):
            data = field.encode("utf-8")
            parts.append(struct.pack("<BH", _TAG_STR, len(data)) + data)
        elif isinstance(field, bytes):
            parts.append(struct.pack("<BH", _TAG_BYTES, len(field)) + field)
        else:
            raise DatabaseError(f"unsupported field type {type(field).__name__}")
    return b"".join(parts)


def decode_fields(raw: bytes) -> List[Field]:
    """Decode record bytes produced by :func:`encode_fields`."""
    if len(raw) < 2:
        raise DatabaseError("record too short for a field count")
    (count,) = struct.unpack_from("<H", raw, 0)
    offset = 2
    fields: List[Field] = []
    for _ in range(count):
        if offset >= len(raw):
            raise DatabaseError("record truncated")
        tag = raw[offset]
        offset += 1
        if tag == _TAG_INT:
            (value,) = struct.unpack_from("<q", raw, offset)
            offset += 8
            fields.append(value)
        elif tag in (_TAG_STR, _TAG_BYTES):
            (length,) = struct.unpack_from("<H", raw, offset)
            offset += 2
            data = raw[offset:offset + length]
            if len(data) != length:
                raise DatabaseError("record truncated inside a field")
            offset += length
            fields.append(data.decode("utf-8") if tag == _TAG_STR else data)
        else:
            raise DatabaseError(f"unknown field tag {tag}")
    return fields
