"""The Example 1.1 customer database and its access operations.

Example 1.1 of the paper: 20,000 customers, 2000-byte records (two per
4000-byte page -> 10,000 record pages), a clustered B-tree on CUST-ID
whose leaf entries are 20 bytes (200 per page -> 100 leaf pages plus a
single root). Random lookups produce the alternating reference pattern
I1, R1, I2, R2, ... that motivates the whole paper.

:func:`build_customer_database` constructs that database *for real* on a
simulated disk — heap file, B-tree, catalog entries — and
:class:`CustomerDatabase` exposes the transactional operations whose page
accesses, captured through the buffer pool's trace observer, become
experiment workloads:

- :meth:`CustomerDatabase.lookup` — indexed point read (I, R pattern);
- :meth:`CustomerDatabase.update_customer` — read-then-update, the
  paper's type (1) intra-transaction correlated pair;
- :meth:`CustomerDatabase.scan_all` — the Example 1.2 sequential scan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..buffer.pool import BufferPool
from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import PageId
from .btree import BPlusTree
from .catalog import Catalog
from .heap_file import HeapFile
from .record import RecordId, decode_fields, encode_fields
from .transaction import Transaction


class CustomerDatabase:
    """The customer table + CUST-ID index of Example 1.1."""

    def __init__(self, pool: BufferPool, heap: HeapFile, index: BPlusTree,
                 customers: int, record_size: int) -> None:
        self.pool = pool
        self.heap = heap
        self.index = index
        self.customers = customers
        self.record_size = record_size

    # -- operations --------------------------------------------------------------

    def lookup(self, cust_id: int,
               txn: Optional[Transaction] = None) -> List:
        """Point lookup through the index: root/leaf pages then record page."""
        rid = RecordId.from_bytes(self.index.search(cust_id))
        if txn is not None:
            txn.touch(rid.page_id)
        return decode_fields(self.heap.get(rid))

    def update_customer(self, cust_id: int, new_balance: int,
                        txn: Optional[Transaction] = None) -> None:
        """Read a customer then write it back — an intra-transaction pair."""
        rid = RecordId.from_bytes(self.index.search(cust_id))
        fields = decode_fields(self.heap.get(rid))
        fields[1] = new_balance
        record = _pad_record(encode_fields(fields), self.record_size)
        self.heap.update(rid, record)
        if txn is not None:
            txn.touch(rid.page_id)

    def scan_all(self) -> int:
        """Full sequential scan of the record pages; returns record count."""
        return sum(1 for _ in self.heap.scan())

    # -- page sets (used to configure the multi-pool baseline) ---------------------

    def index_leaf_pages(self) -> List[PageId]:
        """The B-tree leaf pages (the hot pool of Example 1.1)."""
        return self.index.leaf_page_ids()

    def record_pages(self) -> List[PageId]:
        """The data pages (the cold pool of Example 1.1)."""
        return list(self.heap.page_ids)


def _pad_record(encoded: bytes, record_size: int) -> bytes:
    """Pad an encoded record up to the schema's fixed record size."""
    if len(encoded) > record_size:
        raise ConfigurationError(
            f"encoded record ({len(encoded)} bytes) exceeds the fixed "
            f"record size ({record_size})")
    return encoded + b"\x00" * (record_size - len(encoded))


def build_customer_database(pool: BufferPool,
                            customers: int = 20_000,
                            record_size: int = 1990,
                            index_entries_per_leaf: int = 200,
                            seed: int = 0) -> CustomerDatabase:
    """Create and populate the Example 1.1 database on the pool's disk.

    Defaults follow the paper: ~2000-byte records (1990 plus slotted-page
    overhead packs exactly two per 4000-byte-usable page) and 200 index
    entries per leaf ("20 bytes for each key entry"). Customer balances
    are seeded randomly for the update workloads.

    Building is a real workload itself (every insert flows through the
    buffer pool); attach the trace observer *after* building unless the
    build traffic is wanted.
    """
    if customers <= 0:
        raise ConfigurationError("need at least one customer")
    catalog = Catalog(pool)
    heap = HeapFile(pool, name="customer")
    index = BPlusTree(pool, value_size=RecordId.encoded_size(),
                      max_leaf_keys=index_entries_per_leaf)
    rng = SeededRng(seed)
    for cust_id in range(customers):
        fields = [cust_id, rng.randrange(1_000_000), f"cust-{cust_id:08d}"]
        record = _pad_record(encode_fields(fields), record_size)
        rid = heap.insert(record)
        index.insert(cust_id, rid.to_bytes())
    catalog.register("customer", "heap", heap.page_ids)
    catalog.register("customer_cust_id", "btree", [index.root_page_id])
    return CustomerDatabase(pool=pool, heap=heap, index=index,
                            customers=customers, record_size=record_size)
