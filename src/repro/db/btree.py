"""A disk-resident B+-tree index over the buffer pool.

This is the structure behind the paper's Example 1.1: a clustered key
index whose root is resident, whose leaf pages are hot (every lookup
touches one), and whose pointed-to record pages are cold. All node access
goes through :class:`~repro.buffer.BufferPool`, so index traffic appears
in the reference string exactly as the paper's I1, R1, I2, R2, ... pattern.

Design:

- Keys are signed 64-bit integers; values are fixed-length byte strings
  (``value_size``, default the 10-byte :class:`~repro.db.record.RecordId`).
- Leaves are chained (``next_leaf``) for range scans.
- Node fan-out derives from the page payload size, but ``max_leaf_keys``
  can be forced down to match a scenario (Example 1.1's "20 bytes for each
  key entry" -> 200 entries/leaf).
- Deletion is *lazy*: keys are removed from leaves without rebalancing
  (underfull leaves persist). This keeps the code honest yet compact; the
  technique is standard practice in real engines for non-merge workloads
  and is documented behaviour here.

Node page layout (within the page payload):

    type(B) key_count(H) next_leaf(q)        -- header, 11 bytes
    leaf:     key(q)*count, value(value_size)*count
    internal: key(q)*count, child(q)*(count+1)
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ..buffer.pool import BufferPool
from ..errors import ConfigurationError, DatabaseError, DuplicateKeyError, RecordNotFoundError
from ..storage.page import PAGE_PAYLOAD_SIZE
from ..types import AccessKind, PageId

_HEADER = struct.Struct("<BHq")
_KEY = struct.Struct("<q")
_CHILD = struct.Struct("<q")

_LEAF = 0
_INTERNAL = 1
_NO_LEAF = -1


class _Node:
    """Decoded node contents."""

    __slots__ = ("is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.values: List[bytes] = []      # leaves only
        self.children: List[PageId] = []   # internals only
        self.next_leaf: PageId = _NO_LEAF

    @classmethod
    def decode(cls, payload: bytes, value_size: int) -> "_Node":
        node_type, count, next_leaf = _HEADER.unpack_from(payload, 0)
        node = cls(is_leaf=(node_type == _LEAF))
        node.next_leaf = next_leaf
        offset = _HEADER.size
        for _ in range(count):
            (key,) = _KEY.unpack_from(payload, offset)
            node.keys.append(key)
            offset += _KEY.size
        if node.is_leaf:
            for _ in range(count):
                node.values.append(payload[offset:offset + value_size])
                offset += value_size
        else:
            for _ in range(count + 1):
                (child,) = _CHILD.unpack_from(payload, offset)
                node.children.append(child)
                offset += _CHILD.size
        return node

    def encode(self, value_size: int) -> bytes:
        node_type = _LEAF if self.is_leaf else _INTERNAL
        parts = [_HEADER.pack(node_type, len(self.keys), self.next_leaf)]
        parts.extend(_KEY.pack(key) for key in self.keys)
        if self.is_leaf:
            if any(len(v) != value_size for v in self.values):
                raise DatabaseError("leaf value of unexpected size")
            parts.extend(self.values)
        else:
            parts.extend(_CHILD.pack(child) for child in self.children)
        payload = b"".join(parts)
        if len(payload) > PAGE_PAYLOAD_SIZE:
            raise DatabaseError("B-tree node overflowed its page")
        return payload


class BPlusTree:
    """A B+-tree mapping int64 keys to fixed-size byte values."""

    def __init__(self, pool: BufferPool, value_size: int = 10,
                 root_page_id: Optional[PageId] = None,
                 max_leaf_keys: Optional[int] = None,
                 max_internal_keys: Optional[int] = None) -> None:
        if value_size <= 0:
            raise ConfigurationError("value_size must be positive")
        self.pool = pool
        self.value_size = value_size

        usable = PAGE_PAYLOAD_SIZE - _HEADER.size
        leaf_capacity = usable // (_KEY.size + value_size)
        internal_capacity = (usable - _CHILD.size) // (_KEY.size + _CHILD.size)
        self.max_leaf_keys = (min(max_leaf_keys, leaf_capacity)
                              if max_leaf_keys else leaf_capacity)
        self.max_internal_keys = (min(max_internal_keys, internal_capacity)
                                  if max_internal_keys else internal_capacity)
        if self.max_leaf_keys < 2 or self.max_internal_keys < 2:
            raise ConfigurationError("B-tree fan-out must be at least 2")

        if root_page_id is None:
            self.root_page_id = self.pool.disk.allocate()
            self._write_node(self.root_page_id, _Node(is_leaf=True))
        else:
            self.root_page_id = root_page_id

    # -- node I/O ------------------------------------------------------------------

    def _read_node(self, page_id: PageId,
                   kind: AccessKind = AccessKind.READ) -> _Node:
        frame = self.pool.fetch(page_id, pin=True, kind=kind)
        page = frame.page
        assert page is not None
        try:
            node = _Node.decode(page.payload, self.value_size)
        finally:
            self.pool.unpin(page_id)
        return node

    def _write_node(self, page_id: PageId, node: _Node) -> None:
        self.pool.fetch(page_id, pin=True, kind=AccessKind.WRITE)
        self.pool.write_payload(page_id, node.encode(self.value_size))
        self.pool.unpin(page_id, dirty=True)

    # -- search -------------------------------------------------------------------

    @staticmethod
    def _child_index(node: _Node, key: int) -> int:
        """Index of the child subtree that may contain ``key``."""
        import bisect
        return bisect.bisect_right(node.keys, key)

    def _descend_to_leaf(self, key: int) -> Tuple[PageId, _Node, List[PageId]]:
        """Walk root->leaf; returns (leaf page id, leaf node, path of internals)."""
        path: List[PageId] = []
        page_id = self.root_page_id
        node = self._read_node(page_id)
        while not node.is_leaf:
            path.append(page_id)
            page_id = node.children[self._child_index(node, key)]
            node = self._read_node(page_id)
        return page_id, node, path

    def search(self, key: int) -> bytes:
        """Exact-match lookup; raises RecordNotFoundError when absent."""
        import bisect
        _, leaf, _ = self._descend_to_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        raise RecordNotFoundError(key)

    def contains(self, key: int) -> bool:
        """Membership test via :meth:`search`."""
        try:
            self.search(key)
            return True
        except RecordNotFoundError:
            return False

    def range_scan(self, low: int, high: int) -> Iterator[Tuple[int, bytes]]:
        """Yield (key, value) for low <= key <= high, in key order."""
        import bisect
        if low > high:
            return
        page_id, leaf, _ = self._descend_to_leaf(low)
        index = bisect.bisect_left(leaf.keys, low)
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, leaf.values[index]
                index += 1
            if leaf.next_leaf == _NO_LEAF:
                return
            page_id = leaf.next_leaf
            leaf = self._read_node(page_id)
            index = 0

    def leaf_page_ids(self) -> List[PageId]:
        """All leaf pages left to right (diagnostics / Example 1.1 setup)."""
        page_id = self.root_page_id
        node = self._read_node(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self._read_node(page_id)
        leaves = [page_id]
        while node.next_leaf != _NO_LEAF:
            page_id = node.next_leaf
            node = self._read_node(page_id)
            leaves.append(page_id)
        return leaves

    # -- insertion -----------------------------------------------------------------

    def insert(self, key: int, value: bytes,
               allow_update: bool = False) -> None:
        """Insert a key/value pair, splitting as needed.

        Duplicate keys raise :class:`DuplicateKeyError` unless
        ``allow_update`` is set, in which case the value is replaced.
        """
        import bisect
        if len(value) != self.value_size:
            raise DatabaseError(
                f"value must be exactly {self.value_size} bytes")
        leaf_id, leaf, path = self._descend_to_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            if not allow_update:
                raise DuplicateKeyError(key)
            leaf.values[index] = value
            self._write_node(leaf_id, leaf)
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        if len(leaf.keys) <= self.max_leaf_keys:
            self._write_node(leaf_id, leaf)
            return
        # Rightmost-append optimization: when the overflow was caused by
        # appending past the current maximum key AND this is the last leaf
        # (monotone bulk load, Example 1.1's "packed full" pattern), keep
        # the left node full and move only the new key right.
        appended = (index == len(leaf.keys) - 1
                    and leaf.next_leaf == _NO_LEAF)
        self._split_leaf(leaf_id, leaf, path, packed=appended)

    def _split_leaf(self, leaf_id: PageId, leaf: _Node,
                    path: List[PageId], packed: bool = False) -> None:
        middle = len(leaf.keys) - 1 if packed else len(leaf.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        right.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right_id = self.pool.disk.allocate()
        leaf.next_leaf = right_id
        self._write_node(right_id, right)
        self._write_node(leaf_id, leaf)
        self._insert_into_parent(leaf_id, right.keys[0], right_id, path)

    def _insert_into_parent(self, left_id: PageId, separator: int,
                            right_id: PageId, path: List[PageId]) -> None:
        if not path:
            # Split reached the root: grow the tree by one level.
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [left_id, right_id]
            new_root_id = self.pool.disk.allocate()
            self._write_node(new_root_id, new_root)
            self.root_page_id = new_root_id
            return
        parent_id = path[-1]
        parent = self._read_node(parent_id)
        position = parent.children.index(left_id)
        parent.keys.insert(position, separator)
        parent.children.insert(position + 1, right_id)
        if len(parent.keys) <= self.max_internal_keys:
            self._write_node(parent_id, parent)
            return
        self._split_internal(parent_id, parent, path[:-1])

    def _split_internal(self, node_id: PageId, node: _Node,
                        path: List[PageId]) -> None:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        right_id = self.pool.disk.allocate()
        self._write_node(right_id, right)
        self._write_node(node_id, node)
        self._insert_into_parent(node_id, separator, right_id, path)

    # -- deletion (lazy) ---------------------------------------------------------------

    def delete(self, key: int) -> None:
        """Remove a key from its leaf (no rebalancing; see module docstring)."""
        import bisect
        leaf_id, leaf, _ = self._descend_to_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            raise RecordNotFoundError(key)
        del leaf.keys[index]
        del leaf.values[index]
        self._write_node(leaf_id, leaf)

    # -- diagnostics ------------------------------------------------------------------

    def height(self) -> int:
        """Number of levels (1 = a lone leaf root)."""
        levels = 1
        node = self._read_node(self.root_page_id)
        while not node.is_leaf:
            levels += 1
            node = self._read_node(node.children[0])
        return levels

    def __len__(self) -> int:
        """Total keys (walks the leaf chain)."""
        return sum(1 for _ in self.range_scan(-(2 ** 63), 2 ** 63 - 1))

    def check_invariants(self) -> None:
        """Validate key ordering and leaf chaining (test support)."""
        previous = None
        for key, _ in self.range_scan(-(2 ** 63), 2 ** 63 - 1):
            if previous is not None and key <= previous:
                raise DatabaseError(
                    f"leaf chain out of order: {previous} before {key}")
            previous = key
