"""Heap files: unordered record storage over the buffer pool.

A heap file owns a list of page ids; inserts go to the last page with
space (allocating a new page when full), scans read every page in order —
which is exactly the physical behaviour behind the paper's Example 1.2
sequential scans. All page access flows through the buffer pool, so every
heap-file operation contributes to the observable reference string.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..buffer.pool import BufferPool
from ..errors import DatabaseError, PageOverflowError, RecordNotFoundError
from ..types import AccessKind, PageId
from .record import RecordId
from .slotted_page import SlottedPage


class HeapFile:
    """An unordered collection of records across a chain of pages."""

    def __init__(self, pool: BufferPool, name: str = "heap",
                 page_ids: Optional[List[PageId]] = None) -> None:
        self.pool = pool
        self.name = name
        self.page_ids: List[PageId] = list(page_ids) if page_ids else []
        self._page_set = set(self.page_ids)

    def _new_page(self) -> PageId:
        page_id = self.pool.disk.allocate()
        self.page_ids.append(page_id)
        self._page_set.add(page_id)
        return page_id

    def _load(self, page_id: PageId,
              kind: AccessKind = AccessKind.READ) -> SlottedPage:
        frame = self.pool.fetch(page_id, pin=True, kind=kind)
        page = frame.page
        assert page is not None
        return SlottedPage(page.payload)

    def _store(self, page_id: PageId, slotted: SlottedPage) -> None:
        self.pool.write_payload(page_id, slotted.to_payload())
        self.pool.unpin(page_id, dirty=True)

    # -- operations ---------------------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Append a record, returning its RID."""
        if self.page_ids:
            page_id = self.page_ids[-1]
            slotted = self._load(page_id, AccessKind.WRITE)
            if slotted.fits(record):
                slot = slotted.insert(record)
                self._store(page_id, slotted)
                return RecordId(page_id=page_id, slot=slot)
            self.pool.unpin(page_id)
        page_id = self._new_page()
        slotted = self._load(page_id, AccessKind.WRITE)
        try:
            slot = slotted.insert(record)
        except PageOverflowError:
            self.pool.unpin(page_id)
            raise
        self._store(page_id, slotted)
        return RecordId(page_id=page_id, slot=slot)

    def get(self, rid: RecordId) -> bytes:
        """Fetch one record by RID."""
        if rid.page_id not in self._page_set:
            raise RecordNotFoundError(rid)
        slotted = self._load(rid.page_id)
        try:
            record = slotted.get(rid.slot)
        except DatabaseError:
            raise RecordNotFoundError(rid) from None
        finally:
            self.pool.unpin(rid.page_id)
        return record

    def update(self, rid: RecordId, record: bytes) -> None:
        """Rewrite a record in place (RID is preserved)."""
        slotted = self._load(rid.page_id, AccessKind.WRITE)
        try:
            slotted.update(rid.slot, record)
        except DatabaseError:
            self.pool.unpin(rid.page_id)
            raise
        self._store(rid.page_id, slotted)

    def delete(self, rid: RecordId) -> None:
        """Tombstone a record."""
        slotted = self._load(rid.page_id, AccessKind.WRITE)
        try:
            slotted.delete(rid.slot)
        except DatabaseError:
            self.pool.unpin(rid.page_id)
            raise
        self._store(rid.page_id, slotted)

    def scan(self) -> Iterator[Tuple[RecordId, bytes]]:
        """Full sequential scan, page by page in file order."""
        for page_id in self.page_ids:
            slotted = self._load(page_id)
            entries = list(slotted.records())
            self.pool.unpin(page_id)
            for slot, record in entries:
                yield RecordId(page_id=page_id, slot=slot), record

    def __len__(self) -> int:
        """Count live records (performs a scan)."""
        return sum(1 for _ in self.scan())

    @property
    def page_count(self) -> int:
        """Number of pages the heap file occupies."""
        return len(self.page_ids)
