"""Miniature database engine substrate.

The paper's reference strings come from database mechanisms: B-tree
lookups alternating with record fetches (Example 1.1), sequential scans
(Example 1.2), transactional re-references (Section 2.1.1), and CODASYL
navigation (the Section 4.3 trace). This package implements those
mechanisms for real — slotted pages, heap files, a B+-tree, transactions
with retry, and a CODASYL-style network schema — all running on top of
:class:`repro.buffer.BufferPool`, so that executing queries *produces*
page reference strings instead of hand-waving them.
"""

from .record import RecordId, encode_fields, decode_fields
from .slotted_page import SlottedPage
from .heap_file import HeapFile
from .btree import BPlusTree
from .catalog import Catalog
from .transaction import Transaction, TransactionManager
from .executor import CustomerDatabase, build_customer_database
from .operators import (
    Filter,
    IndexLookup,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Limit,
    Operator,
    Project,
    SeqScan,
)
from .codasyl import (
    CodasylDatabase,
    CodasylSchema,
    RecordType,
    SetType,
    build_bank_database,
)

__all__ = [
    "RecordId",
    "encode_fields",
    "decode_fields",
    "SlottedPage",
    "HeapFile",
    "BPlusTree",
    "Catalog",
    "Transaction",
    "TransactionManager",
    "CustomerDatabase",
    "build_customer_database",
    "Operator",
    "SeqScan",
    "IndexLookup",
    "IndexNestedLoopJoin",
    "IndexRangeScan",
    "Filter",
    "Project",
    "Limit",
    "CodasylDatabase",
    "CodasylSchema",
    "RecordType",
    "SetType",
    "build_bank_database",
]
