"""A miniature pull-based query executor.

The paper's Section 1.1 surveys "Query Execution Plan Analysis"
approaches (Hot Set, DBMIN, hint passing) that derive buffer advice from
operator trees — and argues they fail for multi-user mixes. To make that
argument executable we need actual operator trees whose page access flows
through the buffer manager. This module provides the classical iterator
(Volcano-style) operators over the storage substrate:

- :class:`SeqScan` — full heap-file scan (the Example 1.2 access pattern);
- :class:`IndexLookup` — B-tree point access (the Example 1.1 pattern);
- :class:`IndexRangeScan` — B-tree range + record fetches;
- :class:`Filter`, :class:`Project`, :class:`Limit` — tuple-at-a-time
  transformers.

Every operator yields decoded field lists; all page I/O happens in the
leaves through the buffer pool, so running a plan produces an honest
reference string (capture it with a
:class:`~repro.buffer.TraceRecorder`).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator, List, Optional

from ..errors import ConfigurationError, RecordNotFoundError
from .btree import BPlusTree
from .heap_file import HeapFile
from .record import Field, RecordId, decode_fields

#: A decoded tuple: the record's field list.
Row = List[Field]


class Operator(abc.ABC):
    """A pull-based operator: iterate to execute."""

    @abc.abstractmethod
    def rows(self) -> Iterator[Row]:
        """Produce the operator's output tuples."""

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def execute(self) -> List[Row]:
        """Materialize the full result."""
        return list(self.rows())


class SeqScan(Operator):
    """Scan every record of a heap file in physical order."""

    def __init__(self, heap: HeapFile) -> None:
        self.heap = heap

    def rows(self) -> Iterator[Row]:
        for _, record in self.heap.scan():
            yield decode_fields(record)


class IndexLookup(Operator):
    """Exact-match key lookup: B-tree descent + record page fetch."""

    def __init__(self, index: BPlusTree, heap: HeapFile, key: int,
                 missing_ok: bool = False) -> None:
        self.index = index
        self.heap = heap
        self.key = key
        self.missing_ok = missing_ok

    def rows(self) -> Iterator[Row]:
        try:
            rid = RecordId.from_bytes(self.index.search(self.key))
        except RecordNotFoundError:
            if self.missing_ok:
                return
            raise
        yield decode_fields(self.heap.get(rid))


class IndexRangeScan(Operator):
    """Key-ordered range scan: leaf chain walk + record fetch per match."""

    def __init__(self, index: BPlusTree, heap: HeapFile,
                 low: int, high: int) -> None:
        if low > high:
            raise ConfigurationError("range scan needs low <= high")
        self.index = index
        self.heap = heap
        self.low = low
        self.high = high

    def rows(self) -> Iterator[Row]:
        for _, value in self.index.range_scan(self.low, self.high):
            rid = RecordId.from_bytes(value)
            yield decode_fields(self.heap.get(rid))


class Filter(Operator):
    """Keep rows satisfying a predicate."""

    def __init__(self, child: Operator,
                 predicate: Callable[[Row], bool]) -> None:
        self.child = child
        self.predicate = predicate

    def rows(self) -> Iterator[Row]:
        for row in self.child:
            if self.predicate(row):
                yield row


class Project(Operator):
    """Keep a subset of columns, by position."""

    def __init__(self, child: Operator, columns: List[int]) -> None:
        if not columns:
            raise ConfigurationError("projection needs at least one column")
        self.child = child
        self.columns = columns

    def rows(self) -> Iterator[Row]:
        for row in self.child:
            try:
                yield [row[index] for index in self.columns]
            except IndexError:
                raise ConfigurationError(
                    f"projection column out of range for row of "
                    f"{len(row)} fields") from None


class IndexNestedLoopJoin(Operator):
    """Index nested-loop join: for each outer row, probe an inner index.

    The classical plan whose page reference pattern stresses a buffer
    manager most recognizably: the inner index's root/upper pages are
    re-touched once per outer row (extremely hot), inner leaves are warm,
    and outer pages stream by once — a three-temperature mix that LRU-K
    separates and LRU-1 does not (it is Example 1.1's pattern with an
    extra stratum).

    ``outer_key`` selects the join column from the outer row; matches
    yield ``outer_row + inner_row``. Rows without a match are dropped
    (inner join).
    """

    def __init__(self, outer: Operator, inner_index: BPlusTree,
                 inner_heap: HeapFile,
                 outer_key: Callable[[Row], int]) -> None:
        self.outer = outer
        self.inner_index = inner_index
        self.inner_heap = inner_heap
        self.outer_key = outer_key

    def rows(self) -> Iterator[Row]:
        for outer_row in self.outer:
            key = self.outer_key(outer_row)
            try:
                rid = RecordId.from_bytes(self.inner_index.search(key))
            except RecordNotFoundError:
                continue
            inner_row = decode_fields(self.inner_heap.get(rid))
            yield list(outer_row) + inner_row


class Limit(Operator):
    """Stop after ``count`` rows — plans that stop early also stop their
    page references early, which matters for buffer studies."""

    def __init__(self, child: Operator, count: int) -> None:
        if count < 0:
            raise ConfigurationError("limit cannot be negative")
        self.child = child
        self.count = count

    def rows(self) -> Iterator[Row]:
        if self.count == 0:
            return
        produced = 0
        for row in self.child:
            yield row
            produced += 1
            if produced >= self.count:
                return
