"""ASCII tables in the layout of the paper's Tables 4.1-4.3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

from ..errors import ConfigurationError

Cell = Union[str, int, float, None]


@dataclass
class Table:
    """A simple column-aligned table with a title and optional caption."""

    title: str
    columns: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    caption: str = ""

    def add_row(self, *cells: Cell) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(cells))

    def render(self, float_format: str = "{:.3f}") -> str:
        """Render to a fixed-width ASCII string."""
        return format_table(self, float_format=float_format)

    def __str__(self) -> str:
        return self.render()

    def column(self, name: str) -> List[Cell]:
        """Extract one column by header name."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]


def _format_cell(cell: Cell, float_format: str) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_table(table: Table, float_format: str = "{:.3f}") -> str:
    """Fixed-width rendering with a rule under the header, paper style."""
    header = [str(name) for name in table.columns]
    body = [[_format_cell(cell, float_format) for cell in row]
            for row in table.rows]
    widths = [len(name) for name in header]
    for row in body:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def line(cells: Iterable[str]) -> str:
        return "  ".join(text.rjust(width)
                         for text, width in zip(cells, widths)).rstrip()

    parts = []
    if table.title:
        parts.append(table.title)
    parts.append(line(header))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in body)
    if table.caption:
        parts.append("")
        parts.append(table.caption)
    return "\n".join(parts)
