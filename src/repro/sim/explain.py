"""`repro explain`: why was page P evicted at reference t?

Aggregate hit ratios validate the paper's *outcome*; this module exposes
the *mechanism*. It deterministically replays one (workload, seed,
capacity) cell with a :class:`~repro.obs.provenance.ProvenanceRecorder`
attached to an LRU-K policy, then answers a pointed question about a
single eviction: the victim's backward K-distance at decision time, the
candidate set it beat (Definition 2.2's total order), which resident
pages the Correlated Reference Period protected (Section 2.1), whether
retained history (Section 2.1.2) informed the choice — and, since the
replay knows the whole reference string, what Belady's B0 oracle would
have evicted from the same resident set and the per-eviction regret.

Everything here is read-only over the simulation stack: the replay uses
the same :class:`~repro.sim.cache.CacheSimulator` fast path as the
measurement protocol, and provenance capture is decision-identical to an
unobserved run (property-tested in ``tests/sim/test_explain.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.lruk import LRUKPolicy
from ..errors import ConfigurationError
from ..obs.provenance import EvictionDecision, ProvenanceRecorder
from ..types import PageId
from ..workloads import (
    BankOLTPWorkload,
    MovingHotspotWorkload,
    ScanSwampingWorkload,
    TwoPoolWorkload,
    ZipfianWorkload,
)
from ..workloads.base import Workload
from .cache import CacheSimulator
from .trace_cache import CachedTrace

#: Named workload factories the CLI can replay. Each builds the default
#: parameterization used by the paper-scale experiments; `repro explain`
#: cares about a *specific, reproducible* cell, not a tuned sweep.
EXPLAIN_WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "zipfian": ZipfianWorkload,
    "two-pool": TwoPoolWorkload,
    "oltp": BankOLTPWorkload,
    "scan": ScanSwampingWorkload,
    "hotspot": MovingHotspotWorkload,
}

#: Default replay length when ``--refs`` is not given.
DEFAULT_REFERENCES = 20_000


def make_workload(name: str) -> Workload:
    """Build a named workload, or raise with the known names."""
    try:
        factory = EXPLAIN_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(EXPLAIN_WORKLOADS))
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {known}") from None
    return factory()


class NextUseIndex:
    """O(log n) forward-distance oracle over a materialized trace.

    Maps each page to the sorted list of its (1-based) reference times;
    ``next_use(page, now)`` bisects for the first reference strictly
    after ``now``. This is the same future knowledge
    :class:`~repro.policies.belady.BeladyPolicy` uses, packaged as the
    :data:`~repro.obs.provenance.NextUseOracle` callable the provenance
    recorder wants.
    """

    def __init__(self, pages: Sequence[PageId]) -> None:
        occurrences: Dict[PageId, List[int]] = {}
        for index, page in enumerate(pages):
            occurrences.setdefault(page, []).append(index + 1)
        self._occurrences = occurrences
        self.horizon = len(pages)

    def next_use(self, page: PageId, now: int) -> Optional[int]:
        """Time of the page's next reference strictly after ``now``."""
        times = self._occurrences.get(page)
        if times is None:
            return None
        position = bisect_right(times, now)
        if position == len(times):
            return None
        return times[position]


@dataclass
class ExplainReport:
    """The answer `repro explain` renders."""

    workload: str
    seed: int
    capacity: int
    k: int
    correlated_reference_period: int
    references: int
    hit_ratio: float
    evictions: int
    page: PageId
    at: Optional[int]
    #: The eviction being explained (None: the page was never evicted).
    decision: Optional[EvictionDecision]
    #: Every retained eviction time of the page, for navigation.
    eviction_times: List[int]
    recorder: ProvenanceRecorder

    @property
    def found(self) -> bool:
        """True when an eviction of the page was located."""
        return self.decision is not None

    def render(self) -> str:
        """The full human-readable report."""
        lines = [
            f"workload={self.workload} seed={self.seed} "
            f"capacity={self.capacity} k={self.k} "
            f"crp={self.correlated_reference_period} "
            f"references={self.references}",
            f"replay: hit ratio {self.hit_ratio:.4f}, "
            f"{self.evictions} evictions",
            "",
        ]
        if self.decision is None:
            lines.append(f"page {self.page} was never evicted during "
                         "this replay")
            if self.eviction_times:
                sample = ", ".join(f"t={t}" for t in self.eviction_times[:10])
                lines.append(f"  (but see: {sample})")
        else:
            if self.at is not None and self.decision.time != self.at:
                lines.append(
                    f"no eviction of page {self.page} exactly at "
                    f"t={self.at}; nearest is t={self.decision.time}")
                if len(self.eviction_times) > 1:
                    sample = ", ".join(
                        f"t={t}" for t in self.eviction_times[:10])
                    more = len(self.eviction_times) - 10
                    if more > 0:
                        sample += f", ... ({more} more)"
                    lines.append(f"  all evictions of this page: {sample}")
                lines.append("")
            lines.extend(self.decision.summary_lines())
        lines.append("")
        lines.extend(self.recorder.tally_lines())
        return "\n".join(lines)


def replay_cell(workload: Workload, seed: int, capacity: int,
                references: int = DEFAULT_REFERENCES,
                k: int = 2, correlated_reference_period: int = 0,
                retained_information_period: Optional[int] = None,
                top_candidates: int = 8,
                belady: bool = True,
                trace: Optional[CachedTrace] = None
                ) -> "tuple[ProvenanceRecorder, CacheSimulator]":
    """Replay one cell with provenance (and optionally a Belady oracle).

    Returns the populated recorder and the finished simulator. The
    replay is deterministic: the same (workload, seed, capacity, k, CRP)
    always reproduces the same decisions, which is what makes a post-hoc
    "why?" answerable at all.

    ``trace`` short-circuits materialization with an already-cached (or
    disk-baked) string. Only the first ``references`` ids of it are
    replayed and indexed — asking about the head of a long baked trace
    never materializes or scans the tail.
    """
    if references <= 0:
        raise ConfigurationError("need a positive reference count")
    if trace is None:
        trace = CachedTrace.materialize(workload, references, seed)
    elif len(trace) < references:
        raise ConfigurationError(
            f"supplied trace holds {len(trace)} references, "
            f"fewer than the {references} the replay needs")
    pages = trace.page_ids(limit=references)
    oracle: Optional[NextUseIndex] = None
    if belady:
        oracle = NextUseIndex(pages)
    recorder = ProvenanceRecorder(
        top_candidates=top_candidates,
        next_use=oracle.next_use if oracle is not None else None,
        horizon=oracle.horizon if oracle is not None else None)
    policy = LRUKPolicy(
        k=k, correlated_reference_period=correlated_reference_period,
        retained_information_period=retained_information_period)
    # Attach before constructing the simulator: the eviction path
    # resolves the recorder once, at construction.
    policy.provenance = recorder
    simulator = CacheSimulator(policy, capacity)
    if trace.plain:
        access_page = simulator.access_page
        for page in pages:
            access_page(page)
    else:
        for reference in trace.references()[:references]:
            simulator.access(reference)
    return recorder, simulator


def explain_eviction(workload_name: str, seed: int, capacity: int,
                     page: PageId, at: Optional[int] = None,
                     references: Optional[int] = None,
                     k: int = 2, correlated_reference_period: int = 0,
                     retained_information_period: Optional[int] = None,
                     top_candidates: int = 8,
                     belady: bool = True) -> ExplainReport:
    """The `repro explain` engine: replay, locate, and report.

    ``at`` picks the eviction of ``page`` closest to that time (exact
    match preferred); None picks the page's most recent eviction. The
    replay length defaults to :data:`DEFAULT_REFERENCES`, extended to
    cover ``at`` when a later time is asked about.
    """
    total = references if references is not None else DEFAULT_REFERENCES
    if at is not None:
        if at <= 0:
            raise ConfigurationError("--at is a 1-based reference time")
        total = max(total, at)
    workload = make_workload(workload_name)
    recorder, simulator = replay_cell(
        workload, seed, capacity, references=total, k=k,
        correlated_reference_period=correlated_reference_period,
        retained_information_period=retained_information_period,
        top_candidates=top_candidates, belady=belady)
    decision = recorder.find(page, at)
    return ExplainReport(
        workload=workload_name, seed=seed, capacity=capacity, k=k,
        correlated_reference_period=correlated_reference_period,
        references=total,
        hit_ratio=simulator.counter.hit_ratio,
        evictions=simulator.evictions,
        page=page, at=at, decision=decision,
        eviction_times=[d.time for d in recorder.decisions_for(page)],
        recorder=recorder)
