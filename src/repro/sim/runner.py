"""The paper's measurement protocol.

Section 4.1: "The buffer hit ratio for each algorithm was evaluated by
first allowing the algorithm to reach a quasi-stable state, dropping the
initial set of 10*N1 references, and then measuring the next T = 30*N1
references. If the number of such references finding the requested page in
buffer is given by h, then the cache hit ratio C is given by C = h / T."

:func:`measure_hit_ratio` implements exactly that warm-up/measure split
for one policy instance; :func:`run_paper_protocol` wraps it with policy
construction (wiring oracles to the workload), seeding, and repetition
averaging; :class:`PolicySpec` names a policy and knows how to build it
for a given (capacity, workload, trace) context.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, is_dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs import runtime as obs_runtime
from ..obs import trace as obs_trace
from ..obs.dispatcher import EventDispatcher
from ..obs.events import SnapshotEvent
from ..obs.profiler import PROFILED_HOOKS, ProfiledPolicy
from ..obs.registry import MetricsRegistry
from ..policies import A0Policy, BeladyPolicy, ReplacementPolicy, make_policy
from ..stats import ConfidenceInterval, mean_confidence_interval
from ..types import PageId, Reference
from ..workloads.base import Workload
from .cache import CacheSimulator
from .trace_cache import CachedTrace, TraceCache, TraceLike


@dataclass
class RunContext:
    """Everything a policy factory may need to build a policy instance."""

    capacity: int
    workload: Optional[Workload] = None
    #: The materialized page-id string (oracles read their future from
    #: here). Shared with the trace cache — treat as read-only.
    trace: Optional[Sequence[PageId]] = None


#: A policy factory: receives the run context, returns a fresh policy.
PolicyFactory = Callable[[RunContext], ReplacementPolicy]


@dataclass
class PolicySpec:
    """A named, context-aware policy constructor for the harness."""

    label: str
    factory: PolicyFactory
    #: Oracles need the materialized trace in their context.
    needs_trace: bool = False

    def build(self, context: RunContext) -> ReplacementPolicy:
        """Construct a fresh policy for one run."""
        policy = self.factory(context)
        if self.needs_trace:
            if context.trace is None:
                raise ConfigurationError(
                    f"policy {self.label!r} needs the materialized trace")
            policy.prepare(context.trace)
        return policy

    # -- convenience constructors ------------------------------------------------

    @staticmethod
    def registry(label: str, name: str, **kwargs) -> "PolicySpec":
        """A spec over the policy registry, ignoring the context."""
        return PolicySpec(label, lambda ctx: make_policy(name, **kwargs))

    @staticmethod
    def lru() -> "PolicySpec":
        """Classical LRU, reported as LRU-1 per the paper."""
        return PolicySpec.registry("LRU-1", "lru")

    @staticmethod
    def lruk(k: int, correlated_reference_period: int = 0,
             retained_information_period: Optional[int] = None,
             **kwargs) -> "PolicySpec":
        """LRU-K labelled the paper's way (LRU-2, LRU-3, ...)."""
        return PolicySpec.registry(
            f"LRU-{k}", "lru-k", k=k,
            correlated_reference_period=correlated_reference_period,
            retained_information_period=retained_information_period,
            **kwargs)

    @staticmethod
    def lfu() -> "PolicySpec":
        """Never-forgetting LFU (Table 4.3 comparator)."""
        return PolicySpec.registry("LFU", "lfu")

    @staticmethod
    def a0() -> "PolicySpec":
        """The A0 oracle, wired to the workload's probability vector."""
        def factory(context: RunContext) -> ReplacementPolicy:
            if context.workload is None:
                raise ConfigurationError("A0 needs the workload in context")
            return A0Policy(context.workload.reference_probabilities())
        return PolicySpec("A0", factory)

    @staticmethod
    def opt() -> "PolicySpec":
        """Belady's B0 oracle, wired to the materialized trace."""
        return PolicySpec("OPT", lambda ctx: BeladyPolicy(), needs_trace=True)

    @staticmethod
    def capacity_aware(label: str, name: str, **kwargs) -> "PolicySpec":
        """For policies that take the buffer capacity (2Q, ARC)."""
        return PolicySpec(
            label, lambda ctx: make_policy(name, capacity=ctx.capacity,
                                           **kwargs))


@dataclass
class RunResult:
    """Outcome of one seeded run of one policy at one buffer size."""

    label: str
    capacity: int
    seed: int
    hit_ratio: float
    hits: int
    misses: int
    warmup_hit_ratio: float
    evictions: int
    writebacks: int

    @property
    def measured_references(self) -> int:
        """T, the size of the measurement window."""
        return self.hits + self.misses


def _snapshot_counters(simulator: CacheSimulator) -> dict:
    """The counters a run-boundary SnapshotEvent carries."""
    counters = {
        "hits": float(simulator.counter.hits),
        "misses": float(simulator.counter.misses),
        "hit_ratio": simulator.hit_ratio,
        "evictions": float(simulator.evictions),
        "writebacks": float(simulator.writebacks),
        "resident": float(len(simulator.resident_pages)),
    }
    # LRU-K-family policies carry an LRUKStats block; surface it so the
    # eviction-quality counters land in the event stream too.
    stats = getattr(simulator.policy, "stats", None)
    if stats is not None and is_dataclass(stats):
        for spec in dataclass_fields(stats):
            counters[f"policy.{spec.name}"] = float(
                getattr(stats, spec.name))
        informed = getattr(stats, "history_informed_evictions", None)
        if informed is not None:
            counters["policy.history_informed_evictions"] = float(informed)
    return counters


def measure_hit_ratio(policy: ReplacementPolicy,
                      references: TraceLike,
                      capacity: int,
                      warmup: int,
                      observability: Optional[EventDispatcher] = None
                      ) -> CacheSimulator:
    """Drive one policy over a reference string with a warm-up boundary.

    ``references`` is either a sequence of :class:`~repro.types.Reference`
    objects or a :class:`~repro.sim.trace_cache.CachedTrace`; plain cached
    traces are driven through the simulator's fast integer path
    (:meth:`CacheSimulator.access_page`), which is decision-identical.

    Returns the simulator so callers can pull any statistic; the hit ratio
    of the measurement window is ``simulator.hit_ratio``. When an event
    dispatcher is given (or ambient), the run is bracketed by
    ``SnapshotEvent``s: ``start``, ``measurement`` (the warm-up
    boundary), and ``end`` (with final counters, including the policy's
    own stats block when it has one).
    """
    if warmup < 0 or warmup >= len(references):
        raise ConfigurationError(
            "warm-up must leave a non-empty measurement window")
    simulator = CacheSimulator(policy, capacity,
                               observability=observability)
    obs = simulator._obs
    observing = obs is not None and obs.has_sinks
    if observing:
        obs.emit(SnapshotEvent(time=0, phase="start",
                               counters={"capacity": float(capacity),
                                         "references": float(
                                             len(references)),
                                         "warmup": float(warmup)}))

    def at_measurement_boundary() -> None:
        if observing:
            # Emitted before the counter reset so this snapshot
            # carries the warm-up window's totals.
            obs.emit(SnapshotEvent(time=simulator.now, phase="measurement",
                                   counters=_snapshot_counters(simulator)))
        simulator.start_measurement()

    measured = len(references) - warmup
    if isinstance(references, CachedTrace) and references.plain:
        # Pre-normalized stream: bare page ids. Offer the whole trace to
        # the policy's fused kernel first (decision-identical, no
        # per-reference dispatch); run_fused declines — returning False —
        # whenever observability is attached or no kernel exists, and the
        # per-reference fast path below takes over.
        pages = references.page_ids()
        if not simulator.run_fused(pages, warmup):
            access_page = simulator.access_page
            with obs_trace.maybe_span("warmup", references=warmup):
                for page in pages[:warmup]:
                    access_page(page)
            at_measurement_boundary()
            with obs_trace.maybe_span("measure", references=measured):
                for page in pages[warmup:]:
                    access_page(page)
    else:
        if isinstance(references, CachedTrace):
            references = references.references()
        iterator = iter(references)
        access = simulator.access
        with obs_trace.maybe_span("warmup", references=warmup):
            for _ in range(warmup):
                access(next(iterator))
        at_measurement_boundary()
        with obs_trace.maybe_span("measure", references=measured):
            for reference in iterator:
                access(reference)
    if observing:
        obs.emit(SnapshotEvent(time=simulator.now, phase="end",
                               counters=_snapshot_counters(simulator)))
    return simulator


def _record_hook_spans(tracer: "obs_trace.Tracer",
                       parent: "obs_trace.Span",
                       profiled: ProfiledPolicy) -> None:
    """Synthesize aggregate ``policy-hook`` spans under a simulate span.

    One span per protocol hook (millions of per-call spans would dwarf
    the run being measured); each carries call count and p50/p95/p99 in
    its args and spans the hook's *total* time, laid out sequentially
    from the simulate span's start so Perfetto renders them nested.
    """
    cursor = parent.start_us
    for hook in PROFILED_HOOKS:
        profile = profiled.profiles[hook]
        if not profile.count:
            continue
        duration = int(profile.total * 1e6)
        summary = profile.summary_us()
        tracer.record(
            hook, start_us=cursor, duration_us=duration, cpu_us=duration,
            parent_id=parent.span_id, category="policy-hook",
            pid=parent.pid, tid=parent.tid,
            calls=profile.count, mean_us=round(summary["mean"], 3),
            p50_us=round(summary["p50"], 3),
            p95_us=round(summary["p95"], 3),
            p99_us=round(summary["p99"], 3))
        cursor += duration


def _record_protocol_counters(registry: MetricsRegistry,
                              simulator: CacheSimulator) -> None:
    """Fold one finished run's totals into protocol.* counters."""
    counter = registry.counter
    counter("protocol.runs").inc()
    measured = simulator.counter
    warm = simulator.warmup_counter
    references = measured.hits + measured.misses
    if warm is not None:
        references += warm.hits + warm.misses
    counter("protocol.references").inc(references)
    counter("protocol.hits").inc(measured.hits)
    counter("protocol.misses").inc(measured.misses)
    counter("protocol.evictions").inc(simulator.evictions)
    counter("protocol.writebacks").inc(simulator.writebacks)
    # Hit ratios are bounded in [0, 1], so a fixed binning is exact for
    # relay: forked sweep workers ship bin counts + raw moments and the
    # parent merges them (see MetricsRegistry.merge_histograms), keeping
    # --metrics-out distributions identical under --jobs N and serial.
    registry.histogram("protocol.run_hit_ratio", 0.0, 1.0).observe(
        simulator.hit_ratio)
    # Point-in-time gauges for the live telemetry plane: non-callable,
    # so forked sweep workers can snapshot them at cell exit and the
    # parent can merge them last-write-wins (MetricsRegistry.
    # merge_gauges) — a /metrics scrape mid-sweep then shows the most
    # recently completed run regardless of which process ran it.
    registry.set_gauge("protocol.last_run_hit_ratio", simulator.hit_ratio)
    registry.set_gauge("protocol.last_run_evictions",
                       float(simulator.evictions))
    stats = getattr(simulator.policy, "stats", None)
    if stats is not None and is_dataclass(stats):
        for spec in dataclass_fields(stats):
            value = getattr(stats, spec.name)
            if isinstance(value, int) and value >= 0:
                counter(f"policy.{spec.name}").inc(value)


@dataclass
class ProtocolResult:
    """Aggregated repetitions of one (policy, capacity) cell."""

    label: str
    capacity: int
    interval: ConfidenceInterval
    runs: List[RunResult] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Mean hit ratio over repetitions."""
        return self.interval.mean


def run_paper_protocol(workload: Workload,
                       spec: PolicySpec,
                       capacity: int,
                       warmup: int,
                       measured: int,
                       seed: int = 0,
                       repetitions: int = 1,
                       observability: Optional[EventDispatcher] = None,
                       trace_cache: Optional[TraceCache] = None,
                       metrics: Optional[MetricsRegistry] = None
                       ) -> ProtocolResult:
    """Warm up, measure, repeat over seeds, and average — Section 4.1 style.

    ``trace_cache`` shares materialized reference strings across calls:
    a sweep passes one cache so every (policy, capacity) cell replays
    the identical trace without regenerating it, and oracle policies
    read their future from the same array instead of a private copy.
    Without a cache the trace is still materialized only once per
    repetition and shared with the oracle.

    Events emitted during each run are tagged with
    ``policy``/``capacity``/``seed`` context so downstream sinks can
    separate the repetitions of a sweep. With an ambient tracer (see
    :mod:`repro.obs.trace`) each repetition records a ``simulate`` span
    (plus ``warmup``/``measure`` children and aggregate ``policy-hook``
    spans from a decision-transparent :class:`ProfiledPolicy` wrapper);
    with a metrics registry — ``metrics`` or the ambient dispatcher's —
    the run's totals accumulate into ``protocol.*`` counters.
    """
    if repetitions <= 0:
        raise ConfigurationError("need at least one repetition")
    obs = obs_runtime.resolve(observability)
    tracer = obs_trace.current()
    registry = metrics
    if registry is None and obs is not None:
        registry = getattr(obs, "metrics", None)
    total = warmup + measured
    runs: List[RunResult] = []
    for repetition in range(repetitions):
        run_seed = seed + repetition
        if trace_cache is not None:
            trace = trace_cache.get(workload, total, run_seed)
        else:
            trace = CachedTrace.materialize(workload, total, run_seed)
        context = RunContext(capacity=capacity, workload=workload)
        if spec.needs_trace:
            context.trace = trace.page_ids()
        policy = spec.build(context)
        driven: ReplacementPolicy = policy
        if tracer is not None and tracer.profile_hooks:
            driven = ProfiledPolicy(policy)

        def drive() -> CacheSimulator:
            if obs is not None:
                with obs.scoped(policy=spec.label, capacity=capacity,
                                seed=run_seed):
                    return measure_hit_ratio(driven, trace, capacity,
                                             warmup, observability=obs)
            return measure_hit_ratio(driven, trace, capacity, warmup)

        if tracer is not None:
            with tracer.span("simulate", policy=spec.label,
                             capacity=capacity, seed=run_seed) as span:
                simulator = drive()
            if isinstance(driven, ProfiledPolicy):
                _record_hook_spans(tracer, span, driven)
        else:
            simulator = drive()
        if registry is not None:
            _record_protocol_counters(registry, simulator)
        warmup_ratio = (simulator.warmup_counter.hit_ratio
                        if simulator.warmup_counter else 0.0)
        runs.append(RunResult(
            label=spec.label, capacity=capacity, seed=run_seed,
            hit_ratio=simulator.hit_ratio,
            hits=simulator.counter.hits, misses=simulator.counter.misses,
            warmup_hit_ratio=warmup_ratio,
            evictions=simulator.evictions,
            writebacks=simulator.writebacks))
    interval = mean_confidence_interval([run.hit_ratio for run in runs])
    return ProtocolResult(label=spec.label, capacity=capacity,
                          interval=interval, runs=runs)
