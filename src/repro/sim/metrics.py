"""Detailed run metrics beyond the hit ratio.

The paper's tables report hit ratios; diagnosing *why* a policy wins
needs more: which misses were compulsory (first touch ever) versus
capacity (page was resident before and got evicted), how long pages stay
resident, and how old evicted pages' last references were. The
:class:`MetricsCollector` gathers these from any simulator run via the
:class:`~repro.types.AccessOutcome` stream, with O(1) work per access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..stats import IntervalHistogram, StreamingMoments
from ..types import AccessOutcome, PageId


@dataclass
class MissBreakdown:
    """Misses split by cause."""

    compulsory: int = 0   # first reference to the page, ever
    capacity: int = 0     # page was resident earlier and was evicted

    @property
    def total(self) -> int:
        """All misses."""
        return self.compulsory + self.capacity

    def capacity_fraction(self) -> float:
        """Share of misses a better policy could have avoided."""
        if self.total == 0:
            return 0.0
        return self.capacity / self.total


class MetricsCollector:
    """Accumulate per-access metrics from AccessOutcome records.

    Usage::

        collector = MetricsCollector()
        for ref in workload.references(n, seed):
            collector.record(simulator.access(ref))
        print(collector.misses.capacity_fraction())
    """

    def __init__(self) -> None:
        self.misses = MissBreakdown()
        self.hits = 0
        #: Residency duration (references) of evicted pages.
        self.residency = StreamingMoments()
        self.residency_histogram = IntervalHistogram()
        #: Time since last reference of evicted pages ("eviction age"):
        #: small values mean the policy discards pages it just used.
        self.eviction_age = StreamingMoments()
        self._ever_seen: Set[PageId] = set()
        self._admitted_at: Dict[PageId, int] = {}
        self._last_reference: Dict[PageId, int] = {}

    def record(self, outcome: AccessOutcome) -> None:
        """Fold one access outcome into the metrics."""
        page = outcome.reference.page
        now = outcome.time
        if outcome.hit:
            self.hits += 1
        else:
            if page in self._ever_seen:
                self.misses.capacity += 1
            else:
                self.misses.compulsory += 1
                self._ever_seen.add(page)
            self._admitted_at[page] = now
        if outcome.evicted is not None:
            victim = outcome.evicted
            admitted = self._admitted_at.pop(victim, now)
            duration = max(0, now - admitted)
            self.residency.add(float(duration))
            self.residency_histogram.add(duration)
            last = self._last_reference.get(victim, admitted)
            self.eviction_age.add(float(max(0, now - last)))
        self._last_reference[page] = now

    @property
    def references(self) -> int:
        """Total accesses recorded."""
        return self.hits + self.misses.total

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over everything recorded."""
        if self.references == 0:
            return 0.0
        return self.hits / self.references

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline metrics (for tables/reports)."""
        return {
            "references": float(self.references),
            "hit_ratio": self.hit_ratio,
            "compulsory_misses": float(self.misses.compulsory),
            "capacity_misses": float(self.misses.capacity),
            "capacity_miss_fraction": self.misses.capacity_fraction(),
            "mean_residency": self.residency.mean,
            "mean_eviction_age": self.eviction_age.mean,
        }
