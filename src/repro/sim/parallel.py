"""Parallel sweep engine: fan the (policy, capacity) grid over processes.

The paper's evaluation (Section 4.1) is a grid of independent cells —
each a pure function of (workload spec, policy spec, buffer size, seed).
:func:`run_grid` executes that grid on a ``ProcessPoolExecutor`` and
merges the results deterministically, so a parallel sweep returns
*bit-identical* :class:`~repro.sim.runner.ProtocolResult` objects to a
serial one (property-tested in ``tests/sim/test_parallel.py``).

Policy specs hold closures, which do not pickle; the engine therefore
requires the ``fork`` start method (standard on Linux): the grid inputs
— workload, specs, and a :class:`~repro.sim.trace_cache.TraceCache`
pre-warmed with every run seed's reference string — are published in a
module-level registry *before* the pool forks, and workers inherit them
copy-on-write. Each task submission then carries only a few small
integers. Every seed's trace is materialized exactly once, in the
parent, and shared read-only by all workers; no worker regenerates a
reference string. On platforms without ``fork`` the engine degrades to
in-process execution with the same shared cache.

Workers run unobserved: the parent's ambient event dispatcher (and its
file sinks) must not be written from forked children, so the first thing
a worker task does is clear the inherited ambient dispatcher. Progress
is instead narrated from the parent — one line per *completed* cell, in
completion order, through the usual ``progress`` callback or as
:class:`~repro.obs.events.ProgressEvent`s on the dispatcher — so
``--timeline``/``--quiet`` behave under ``--jobs N`` exactly as in
serial mode.

Execution is fault tolerant (see :mod:`repro.sim.recovery`): a crashed
worker breaks only its cell, not the sweep. Failed cells are classified
transient-vs-poisoned, retried with exponential backoff (the pool is
rebuilt after a ``BrokenProcessPool``), bounded by an optional per-cell
wall-clock timeout (enforced by reaping the pool — the only way to
cancel a running pool task), and finally re-run in-process serially as
graceful degradation. Completed cells stream into an optional
:class:`~repro.sim.recovery.SweepCheckpoint`; a ``KeyboardInterrupt``
salvages them (flushing the checkpoint and reaping workers) instead of
orphaning the sweep. Failures surface as
:class:`~repro.obs.events.CellFailureEvent`s and ``sweep.cell.*``
counters on the usual observability channels.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..obs import runtime as obs_runtime
from ..obs import trace as obs_trace
from ..obs.dispatcher import EventDispatcher
from ..obs.events import CellFailureEvent, ProgressEvent
from ..obs.registry import MetricsRegistry
from ..workloads.base import Workload
from . import recovery
from .runner import PolicySpec, ProtocolResult, run_paper_protocol
from .trace_cache import TraceCache

#: A grid result: {(capacity, policy label): ProtocolResult}.
GridResults = Dict[Tuple[int, str], ProtocolResult]

# -- job-count resolution ------------------------------------------------------

_default_jobs = 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """An explicit job count if given, else the ambient default (1)."""
    if jobs is None:
        return _default_jobs
    if jobs <= 0:
        raise ConfigurationError("jobs must be a positive integer (or None)")
    return jobs


@contextmanager
def default_jobs(jobs: int) -> Iterator[int]:
    """Ambiently set the sweep job count for a dynamic extent.

    Mirrors :func:`repro.obs.runtime.activate`: code many layers below
    the CLI (ablation functions, report generation) runs sweeps without
    a ``jobs`` parameter; activating a default here parallelizes them
    without rewriting every call site.
    """
    global _default_jobs
    if jobs <= 0:
        raise ConfigurationError("jobs must be a positive integer")
    previous = _default_jobs
    _default_jobs = jobs
    try:
        yield jobs
    finally:
        _default_jobs = previous


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- fork-shared grid state ----------------------------------------------------


@dataclass
class _SweepJob:
    """Everything a worker needs, published pre-fork."""

    workload: Workload
    specs: Sequence[PolicySpec]
    warmup: int
    measured: int
    seed: int
    repetitions: int
    trace_cache: TraceCache
    #: Record spans in the worker and relay them to the parent tracer.
    trace: bool = False
    #: Accumulate metrics in a worker-local registry and relay the
    #: counter values and histogram states for the parent to merge.
    collect_metrics: bool = False


@dataclass
class _CellOutput:
    """What a worker sends back over the result channel.

    The cell's :class:`ProtocolResult` plus the observability side
    channels: serialized spans (plain dicts, see
    :meth:`repro.obs.trace.Tracer.serialize`), the worker registry's
    counter values, its histogram states (see
    :meth:`repro.obs.registry.MetricsRegistry.histogram_values`), and a
    snapshot of its non-callable gauges taken at cell exit (merged
    last-write-wins with the worker pid as provenance). All ride the
    existing pickle result channel — no extra IPC machinery.
    """

    result: ProtocolResult
    spans: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, object]] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    worker_pid: int = 0


#: Jobs visible to forked workers; keyed by a monotonically increasing id
#: so overlapping grids (nested sweeps) cannot collide.
_SHARED: Dict[int, _SweepJob] = {}
_next_job_id = 0


def _run_cell(job_id: int, spec_index: int, capacity: int,
              attempt: int = 0) -> _CellOutput:
    """Worker task: one (policy, capacity) cell of the grid."""
    # Forked workers inherit the parent's ambient dispatcher (and its
    # open file sinks) and the parent's ambient tracer; emitting through
    # the former from many processes would interleave corrupt output,
    # and appending to the latter is invisible to the parent — so
    # workers clear both and build their own instruments when asked.
    obs_runtime.deactivate()
    obs_trace.deactivate()
    recovery.chaos_hook(spec_index, capacity, attempt)
    job = _SHARED[job_id]
    registry = MetricsRegistry() if job.collect_metrics else None

    def cell() -> ProtocolResult:
        return run_paper_protocol(
            job.workload, job.specs[spec_index], capacity,
            job.warmup, job.measured, seed=job.seed,
            repetitions=job.repetitions, observability=None,
            trace_cache=job.trace_cache, metrics=registry)

    if job.trace:
        tracer = obs_trace.Tracer()
        with obs_trace.activate(tracer):
            result = cell()
        spans = tracer.serialize()
    else:
        result = cell()
        spans = []
    return _CellOutput(
        result=result, spans=spans,
        counters=registry.counter_values() if registry is not None else {},
        histograms=(registry.histogram_values()
                    if registry is not None else {}),
        gauges=registry.gauge_values() if registry is not None else {},
        worker_pid=os.getpid())


# -- the engine ----------------------------------------------------------------


def _narrate(line: str,
             progress: Optional[Callable[[str], None]],
             observability: Optional[EventDispatcher]) -> None:
    """Progress via the callback when given, else the event dispatcher."""
    if progress is not None:
        progress(line)
        return
    obs = obs_runtime.resolve(observability)
    if obs is not None and obs.active:
        obs.emit(ProgressEvent(message=line))


def _cell_line(capacity: int, label: str, result: ProtocolResult) -> str:
    """The per-cell progress line (same format as the serial sweep)."""
    return f"B={capacity:<6d} {label:<8s} C={result.hit_ratio:.4f}"


@dataclass
class _Flight:
    """One in-flight cell attempt submitted to the pool."""

    capacity: int
    index: int
    attempt: int
    deadline: Optional[float]


class _GridRun:
    """State and helpers shared by the serial and resilient executors."""

    def __init__(self, workload: Workload, specs: Sequence[PolicySpec],
                 retry: recovery.RetryPolicy,
                 checkpoint: Optional[recovery.SweepCheckpoint],
                 fingerprint: Optional[str],
                 progress: Optional[Callable[[str], None]],
                 observability: Optional[EventDispatcher]) -> None:
        self.workload = workload
        self.specs = specs
        self.retry = retry
        self.checkpoint = checkpoint
        self.fingerprint = fingerprint
        self.progress = progress
        self.observability = observability
        self.obs = obs_runtime.resolve(observability)
        self.registry: Optional[MetricsRegistry] = (
            getattr(self.obs, "metrics", None)
            if self.obs is not None else None)
        self.results: GridResults = {}
        self.failures: List[recovery.CellFailure] = []

    def track_progress(self, total: int) -> None:
        """Publish the grid's cell-completion gauges for live scrapes.

        ``sweep.cells_total`` / ``sweep.cells_done`` are what ``repro
        top`` renders as the progress bar; resumed cells from a
        checkpoint count as already done.
        """
        if self.registry is None:
            return
        self.registry.set_gauge("sweep.cells_total", float(total))
        self.registry.set_gauge("sweep.cells_done",
                                float(len(self.results)))
        # Register the fault counters at zero up front: a live /metrics
        # scrape of a healthy sweep should show them absent-of-faults,
        # not absent-of-instrumentation.
        for name in ("sweep.cell.retries", "sweep.cell.timeouts",
                     "sweep.cell.fallbacks", "sweep.cell.failures",
                     "sweep.pool.rebuilds"):
            self.registry.counter(name)

    def complete(self, capacity: int, label: str, result: ProtocolResult,
                 narrate: bool = True) -> None:
        """Record one finished cell: results, checkpoint, narration."""
        self.results[(capacity, label)] = result
        if self.registry is not None:
            self.registry.set_gauge("sweep.cells_done",
                                    float(len(self.results)))
        if self.checkpoint is not None and self.fingerprint is not None:
            self.checkpoint.record(self.fingerprint, result)
        if narrate:
            _narrate(_cell_line(capacity, label, result),
                     self.progress, self.observability)

    def counter(self, name: str, amount: int = 1) -> None:
        if self.registry is not None and amount:
            self.registry.counter(name).inc(amount)

    def report_failure(self, capacity: int, index: int, attempt: int,
                       kind: str, error: str, action: str) -> None:
        """Emit the structured failure event and bump its counters.

        ``attempt`` is the 1-based number of attempts consumed so far;
        ``action`` is what the engine does next: ``"retry"`` (back into
        the pool), ``"fallback"`` (in-process serial re-run) or
        ``"failed"`` (recorded as a permanent :class:`CellFailure`).
        """
        label = self.specs[index].label
        if self.obs is not None and self.obs.active:
            self.obs.emit(CellFailureEvent(
                capacity=capacity, label=label, attempt=attempt,
                failure=kind, error=error, action=action))
        if kind == recovery.TIMEOUT:
            self.counter("sweep.cell.timeouts")
        if action == "retry":
            self.counter("sweep.cell.retries")
        elif action == "fallback":
            self.counter("sweep.cell.fallbacks")
        elif action == "failed":
            self.counter("sweep.cell.failures")

    def salvage(self) -> "recovery.SweepInterrupted":
        """Flush the checkpoint and wrap the completed cells for re-raise."""
        if self.checkpoint is not None:
            self.checkpoint.flush()
        return recovery.SweepInterrupted(self.results)

    def finish(self) -> GridResults:
        """Raise if any cell failed permanently, else hand back the grid."""
        if self.failures:
            if self.checkpoint is not None:
                self.checkpoint.flush()
            raise recovery.CellExecutionError(self.failures, self.results)
        return self.results


def run_grid(workload: Workload,
             specs: Sequence[PolicySpec],
             capacities: Sequence[int],
             warmup: int,
             measured: int,
             seed: int = 0,
             repetitions: int = 1,
             jobs: Optional[int] = None,
             trace_cache: Optional[TraceCache] = None,
             progress: Optional[Callable[[str], None]] = None,
             observability: Optional[EventDispatcher] = None,
             retry: Optional[recovery.RetryPolicy] = None,
             checkpoint: Optional[recovery.SweepCheckpoint] = None
             ) -> GridResults:
    """Run every (policy, capacity) cell of a grid, ``jobs`` at a time.

    Returns ``{(capacity, label): ProtocolResult}`` — an order-free shape
    the caller assembles into its own row structure, making the merge
    deterministic regardless of completion order. ``jobs=None`` resolves
    through the ambient :func:`default_jobs` (1 — serial — unless a
    caller activated a default), and the engine falls back to in-process
    execution (still sharing one trace cache) when process parallelism
    is unavailable.

    ``retry`` and ``checkpoint`` default to the ambient
    :func:`repro.sim.recovery.default_retry` /
    :func:`~repro.sim.recovery.default_checkpoint` configuration. Cells
    already present in the checkpoint (matched by grid fingerprint) are
    returned without re-running; newly completed cells are appended as
    they finish. A ``KeyboardInterrupt`` raises
    :class:`~repro.sim.recovery.SweepInterrupted` carrying every
    completed cell; permanently failed cells raise
    :class:`~repro.sim.recovery.CellExecutionError` — in both cases
    after the checkpoint is flushed, so no completed work is lost.
    """
    jobs = resolve_jobs(jobs)
    retry = recovery.resolve_retry(retry)
    checkpoint = recovery.resolve_checkpoint(checkpoint)
    owns_cache = trace_cache is None
    cache = trace_cache if trace_cache is not None else TraceCache()
    try:
        return _run_grid(workload, specs, capacities, warmup, measured,
                         seed, repetitions, jobs, cache, progress,
                         observability, retry, checkpoint)
    finally:
        if owns_cache:
            # The cache pins workloads and materialized arrays by id();
            # a grid-local cache must not outlive the grid.
            cache.clear()


def _run_grid(workload: Workload, specs: Sequence[PolicySpec],
              capacities: Sequence[int], warmup: int, measured: int,
              seed: int, repetitions: int, jobs: int, cache: TraceCache,
              progress: Optional[Callable[[str], None]],
              observability: Optional[EventDispatcher],
              retry: recovery.RetryPolicy,
              checkpoint: Optional[recovery.SweepCheckpoint]) -> GridResults:
    global _next_job_id
    fingerprint = None
    if checkpoint is not None:
        fingerprint = recovery.grid_fingerprint(
            workload, specs, capacities, warmup, measured, seed, repetitions)
    run = _GridRun(workload, specs, retry, checkpoint, fingerprint,
                   progress, observability)

    order = [(capacity, index) for capacity in capacities
             for index in range(len(specs))]
    if checkpoint is not None:
        for key, result in checkpoint.completed(fingerprint).items():
            run.results[key] = result
        remaining = [(capacity, index) for capacity, index in order
                     if (capacity, specs[index].label) not in run.results]
    else:
        remaining = order
    run.track_progress(len(order))
    if not remaining:
        return run.results

    total = warmup + measured
    # Materialize every run seed's trace once, pre-fork: workers inherit
    # the compact arrays copy-on-write instead of regenerating them.
    # Traces past the spill threshold (see repro.sim.trace_cache) live
    # in mmap-backed columnar files at this point, so workers share one
    # page-cache copy outright — no copy-on-write dirtying at all.
    for repetition in range(repetitions):
        cache.get(workload, total, seed + repetition)

    if jobs <= 1 or not fork_available() or len(remaining) <= 1:
        return _execute_serial(run, remaining, workload, warmup, measured,
                               seed, repetitions, cache)

    tracer = obs_trace.current()
    job = _SweepJob(workload=workload, specs=specs, warmup=warmup,
                    measured=measured, seed=seed, repetitions=repetitions,
                    trace_cache=cache, trace=tracer is not None,
                    collect_metrics=run.registry is not None)
    job_id = _next_job_id
    _next_job_id += 1
    _SHARED[job_id] = job
    try:
        return _execute_resilient(run, remaining, job_id, jobs, tracer,
                                  workload, warmup, measured, seed,
                                  repetitions, cache)
    finally:
        _SHARED.pop(job_id, None)


def _execute_serial(run: _GridRun, remaining: Sequence[Tuple[int, int]],
                    workload: Workload, warmup: int, measured: int,
                    seed: int, repetitions: int,
                    cache: TraceCache) -> GridResults:
    """In-process execution with the same retry and salvage semantics."""
    try:
        for capacity, index in remaining:
            spec = run.specs[index]
            attempt = 0
            while True:
                try:
                    with obs_trace.maybe_span("cell", capacity=capacity,
                                              policy=spec.label):
                        result = run_paper_protocol(
                            workload, spec, capacity, warmup, measured,
                            seed=seed, repetitions=repetitions,
                            observability=run.observability,
                            trace_cache=cache)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    kind, transient = recovery.classify(exc)
                    attempt += 1
                    if transient and attempt < run.retry.max_attempts:
                        run.report_failure(capacity, index, attempt, kind,
                                           repr(exc), action="retry")
                        run.retry.backoff(attempt - 1)
                        continue
                    run.report_failure(capacity, index, attempt, kind,
                                       repr(exc), action="failed")
                    run.failures.append(recovery.CellFailure(
                        capacity=capacity, label=spec.label,
                        attempts=attempt, kind=kind, error=repr(exc)))
                    break
                run.complete(capacity, spec.label, result)
                break
    except KeyboardInterrupt:
        raise run.salvage() from None
    return run.finish()


def _execute_resilient(run: _GridRun, remaining: Sequence[Tuple[int, int]],
                       job_id: int, jobs: int,
                       tracer: Optional["obs_trace.Tracer"],
                       workload: Workload, warmup: int, measured: int,
                       seed: int, repetitions: int,
                       cache: TraceCache) -> GridResults:
    """Pool execution with per-cell isolation, retries, and timeouts.

    At most ``workers`` cells are submitted at a time (a sliding window)
    so a per-cell deadline measures *execution* wall clock, not queue
    time. A ``BrokenProcessPool`` cannot be attributed to one cell, so
    every in-flight cell's attempt count advances and the pool is
    rebuilt; an expired deadline reaps the pool (the only way to cancel
    a running task) but penalizes only the cell that timed out. Cells
    that exhaust their attempts collect into a fallback list executed
    in-process after the pool drains, so degraded cells never starve
    healthy ones.
    """
    workers = min(jobs, len(remaining))
    queue: Deque[Tuple[int, int, int]] = deque(
        (capacity, index, 0) for capacity, index in remaining)
    fallback: List[Tuple[int, int]] = []
    context = multiprocessing.get_context("fork")
    pool: Optional[ProcessPoolExecutor] = None
    crash_streak = 0

    def build_pool() -> ProcessPoolExecutor:
        # Flush the parent's sinks before forking: a child inheriting
        # buffered-but-unwritten file output would duplicate it at exit.
        if run.obs is not None:
            run.obs.flush()
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def absorb(flight: _Flight, output: _CellOutput) -> None:
        # The observability side channels merge as each cell completes —
        # not at sweep end — so a live /metrics scrape sees worker
        # counters, histogram buckets, and gauges mid-sweep. Counters
        # and histogram bin counts are sums (order-independent, exact);
        # only the histogram mean's Chan merge is completion-order
        # sensitive, and only in the last ulp.
        nonlocal crash_streak
        crash_streak = 0
        label = run.specs[flight.index].label
        if tracer is not None:
            _absorb_cell(tracer, output.spans, flight.capacity, label)
        if run.registry is not None:
            if output.counters:
                run.registry.merge_counters(output.counters)
            if output.histograms:
                run.registry.merge_histograms(output.histograms)
            if output.gauges:
                run.registry.merge_gauges(output.gauges,
                                          worker=str(output.worker_pid))
        run.complete(flight.capacity, label, output.result)

    def requeue(flight: _Flight, kind: str, error: str,
                penalize: bool = True) -> None:
        """Route a failed attempt: retry, fallback, or permanent failure."""
        attempt = flight.attempt + 1 if penalize else flight.attempt
        if not penalize:
            queue.append((flight.capacity, flight.index, attempt))
            return
        transient = kind in (recovery.CRASH, recovery.TIMEOUT,
                             recovery.ERROR)
        if transient and attempt < run.retry.max_attempts:
            run.report_failure(flight.capacity, flight.index, attempt,
                               kind, error, action="retry")
            queue.append((flight.capacity, flight.index, attempt))
        elif run.retry.fallback_serial and kind != recovery.POISONED:
            run.report_failure(flight.capacity, flight.index, attempt,
                               kind, error, action="fallback")
            fallback.append((flight.capacity, flight.index))
        else:
            run.report_failure(flight.capacity, flight.index, attempt,
                               kind, error, action="failed")
            run.failures.append(recovery.CellFailure(
                capacity=flight.capacity,
                label=run.specs[flight.index].label,
                attempts=attempt, kind=kind, error=error))

    def drain_after_crash(window: Dict[Future, _Flight],
                          error: str) -> None:
        """Settle every in-flight cell once the pool is known broken."""
        nonlocal crash_streak
        for future, flight in list(window.items()):
            del window[future]
            if future.done() and not future.cancelled():
                try:
                    absorb(flight, future.result())
                    continue
                except KeyboardInterrupt:
                    raise
                except BaseException:
                    pass
            else:
                future.cancel()
            requeue(flight, recovery.CRASH, error)
        run.counter("sweep.pool.rebuilds")
        run.retry.backoff(crash_streak)
        crash_streak += 1

    try:
        while queue:
            pool = build_pool()
            window: Dict[Future, _Flight] = {}
            rebuild = False
            try:
                while (queue or window) and not rebuild:
                    while queue and len(window) < workers:
                        capacity, index, attempt = queue.popleft()
                        try:
                            future = pool.submit(_run_cell, job_id, index,
                                                 capacity, attempt)
                        except (BrokenProcessPool, RuntimeError) as exc:
                            queue.appendleft((capacity, index, attempt))
                            drain_after_crash(window, repr(exc))
                            rebuild = True
                            break
                        deadline = (time.monotonic() + run.retry.timeout
                                    if run.retry.timeout is not None
                                    else None)
                        window[future] = _Flight(capacity, index, attempt,
                                                 deadline)
                    if rebuild or not window:
                        continue
                    timeout = None
                    if run.retry.timeout is not None:
                        timeout = max(0.0, min(
                            flight.deadline for flight in window.values()
                            if flight.deadline is not None)
                            - time.monotonic())
                    done, _ = wait(window, timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                    if not done:
                        rebuild = _handle_timeouts(run, window, requeue,
                                                   absorb)
                        continue
                    crashed: Optional[str] = None
                    for future in done:
                        flight = window.pop(future)
                        try:
                            output = future.result()
                        except KeyboardInterrupt:
                            raise
                        except BaseException as exc:
                            kind, _ = recovery.classify(exc)
                            if kind == recovery.CRASH:
                                crashed = repr(exc)
                                requeue(flight, kind, repr(exc))
                            else:
                                requeue(flight, kind, repr(exc))
                                if kind == recovery.ERROR:
                                    run.retry.backoff(flight.attempt)
                            continue
                        absorb(flight, output)
                    if crashed is not None:
                        drain_after_crash(window, crashed)
                        rebuild = True
            except KeyboardInterrupt:
                # Do NOT fall through to the graceful shutdown below: it
                # waits for running tasks, and a hung cell would stall
                # the interrupt until its sleep expires.
                _reap(pool)
                pool = None
                raise
            finally:
                if pool is not None:
                    if rebuild:
                        _reap(pool)
                    else:
                        pool.shutdown(wait=True, cancel_futures=True)
                    pool = None
    except KeyboardInterrupt:
        if pool is not None:
            _reap(pool)
        raise run.salvage() from None

    # Graceful degradation: cells that exhausted their pool attempts run
    # in-process, serially, under the parent's full observability — a
    # clean traceback for broken cells and relief from the parallel
    # memory pressure that kills OOM-prone ones.
    for capacity, index in fallback:
        spec = run.specs[index]
        try:
            with obs_trace.maybe_span("cell", capacity=capacity,
                                      policy=spec.label, fallback=True):
                result = run_paper_protocol(
                    workload, spec, capacity, warmup, measured, seed=seed,
                    repetitions=repetitions,
                    observability=run.observability, trace_cache=cache)
        except KeyboardInterrupt:
            raise run.salvage() from None
        except Exception as exc:
            kind, _ = recovery.classify(exc)
            run.report_failure(capacity, index, run.retry.max_attempts + 1,
                               kind, repr(exc), action="failed")
            run.failures.append(recovery.CellFailure(
                capacity=capacity, label=spec.label,
                attempts=run.retry.max_attempts + 1, kind=kind,
                error=repr(exc)))
            continue
        run.counter("sweep.cell.recovered")
        run.complete(capacity, spec.label, result)

    return run.finish()


def _handle_timeouts(run: _GridRun, window: Dict[Future, _Flight],
                     requeue: Callable[..., None],
                     absorb: Callable[[_Flight, _CellOutput], None]) -> bool:
    """Settle expired deadlines; True when the pool must be rebuilt.

    A deadline that fires while the task is merely queued is cancelled
    and resubmitted without penalty; a *running* task can only be
    cancelled by reaping the whole pool, so innocent in-flight cells are
    requeued with their attempt count unchanged.
    """
    now = time.monotonic()
    expired = {future for future, flight in window.items()
               if flight.deadline is not None and flight.deadline <= now}
    if not expired:
        return False
    must_reap = False
    for future in expired:
        flight = window.pop(future)
        if future.cancel():
            requeue(flight, recovery.TIMEOUT, "", penalize=False)
            continue
        must_reap = True
        requeue(flight, recovery.TIMEOUT,
                f"cell exceeded {run.retry.timeout:.3f}s wall clock")
    if not must_reap:
        return False
    for future, flight in list(window.items()):
        del window[future]
        if future.done() and not future.cancelled():
            try:
                absorb(flight, future.result())
                continue
            except KeyboardInterrupt:
                raise
            except BaseException:
                pass
        else:
            future.cancel()
        requeue(flight, recovery.TIMEOUT, "", penalize=False)
    run.counter("sweep.pool.rebuilds")
    return True


def _reap(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers instead of waiting on a hung task.

    ``shutdown`` alone would block until running tasks finish — which a
    hung or chaos-injected cell never does — so the worker processes are
    terminated first. Reaches into ``_processes`` (no public API exposes
    the workers); guarded so a future stdlib change degrades to a plain
    shutdown.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.join(timeout=5.0)


def _absorb_cell(tracer: "obs_trace.Tracer",
                 spans: List[Dict[str, object]],
                 capacity: int, label: str) -> None:
    """Adopt one worker cell's relayed spans into the parent tracer.

    Synthesizes the parent-side ``cell`` envelope covering the worker
    spans' wall-clock extent (absolute timestamps make the two processes
    directly comparable), then re-parents the worker's root spans under
    it via :meth:`~repro.obs.trace.Tracer.absorb`. The envelope sits on
    the worker's pid track so Perfetto nests it with the spans it
    contains.
    """
    if not spans:
        return
    start = min(int(record["start_us"]) for record in spans)  # type: ignore[arg-type]
    end = max(int(record["start_us"]) + int(record["duration_us"])  # type: ignore[arg-type]
              for record in spans)
    cpu = sum(int(record["cpu_us"]) for record in spans  # type: ignore[arg-type]
              if record["parent_id"] is None)
    worker_pid = int(spans[0]["pid"])  # type: ignore[arg-type]
    worker_tid = int(spans[0]["tid"])  # type: ignore[arg-type]
    envelope = tracer.record(
        "cell", start_us=start, duration_us=end - start, cpu_us=cpu,
        pid=worker_pid, tid=worker_tid,
        capacity=capacity, policy=label, worker_pid=worker_pid)
    tracer.absorb(spans, parent_id=envelope.span_id)


def suggested_jobs() -> int:
    """A sensible ``--jobs`` default for this machine (all cores)."""
    return max(1, os.cpu_count() or 1)
