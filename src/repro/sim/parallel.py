"""Parallel sweep engine: fan the (policy, capacity) grid over processes.

The paper's evaluation (Section 4.1) is a grid of independent cells —
each a pure function of (workload spec, policy spec, buffer size, seed).
:func:`run_grid` executes that grid on a ``ProcessPoolExecutor`` and
merges the results deterministically, so a parallel sweep returns
*bit-identical* :class:`~repro.sim.runner.ProtocolResult` objects to a
serial one (property-tested in ``tests/sim/test_parallel.py``).

Policy specs hold closures, which do not pickle; the engine therefore
requires the ``fork`` start method (standard on Linux): the grid inputs
— workload, specs, and a :class:`~repro.sim.trace_cache.TraceCache`
pre-warmed with every run seed's reference string — are published in a
module-level registry *before* the pool forks, and workers inherit them
copy-on-write. Each task submission then carries only three small
integers. Every seed's trace is materialized exactly once, in the
parent, and shared read-only by all workers; no worker regenerates a
reference string. On platforms without ``fork`` the engine degrades to
in-process execution with the same shared cache.

Workers run unobserved: the parent's ambient event dispatcher (and its
file sinks) must not be written from forked children, so the first thing
a worker task does is clear the inherited ambient dispatcher. Progress
is instead narrated from the parent — one line per *completed* cell, in
completion order, through the usual ``progress`` callback or as
:class:`~repro.obs.events.ProgressEvent`s on the dispatcher — so
``--timeline``/``--quiet`` behave under ``--jobs N`` exactly as in
serial mode.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..obs import runtime as obs_runtime
from ..obs import trace as obs_trace
from ..obs.dispatcher import EventDispatcher
from ..obs.events import ProgressEvent
from ..obs.registry import MetricsRegistry
from ..workloads.base import Workload
from .runner import PolicySpec, ProtocolResult, run_paper_protocol
from .trace_cache import TraceCache

#: A grid result: {(capacity, policy label): ProtocolResult}.
GridResults = Dict[Tuple[int, str], ProtocolResult]

# -- job-count resolution ------------------------------------------------------

_default_jobs = 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """An explicit job count if given, else the ambient default (1)."""
    if jobs is None:
        return _default_jobs
    if jobs <= 0:
        raise ConfigurationError("jobs must be a positive integer (or None)")
    return jobs


@contextmanager
def default_jobs(jobs: int) -> Iterator[int]:
    """Ambiently set the sweep job count for a dynamic extent.

    Mirrors :func:`repro.obs.runtime.activate`: code many layers below
    the CLI (ablation functions, report generation) runs sweeps without
    a ``jobs`` parameter; activating a default here parallelizes them
    without rewriting every call site.
    """
    global _default_jobs
    if jobs <= 0:
        raise ConfigurationError("jobs must be a positive integer")
    previous = _default_jobs
    _default_jobs = jobs
    try:
        yield jobs
    finally:
        _default_jobs = previous


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- fork-shared grid state ----------------------------------------------------


@dataclass
class _SweepJob:
    """Everything a worker needs, published pre-fork."""

    workload: Workload
    specs: Sequence[PolicySpec]
    warmup: int
    measured: int
    seed: int
    repetitions: int
    trace_cache: TraceCache
    #: Record spans in the worker and relay them to the parent tracer.
    trace: bool = False
    #: Accumulate metrics in a worker-local registry and relay the
    #: counter values for the parent to merge.
    collect_metrics: bool = False


@dataclass
class _CellOutput:
    """What a worker sends back over the result channel.

    The cell's :class:`ProtocolResult` plus the observability side
    channels: serialized spans (plain dicts, see
    :meth:`repro.obs.trace.Tracer.serialize`) and the worker registry's
    counter values. Both ride the existing pickle result channel — no
    extra IPC machinery.
    """

    result: ProtocolResult
    spans: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)


#: Jobs visible to forked workers; keyed by a monotonically increasing id
#: so overlapping grids (nested sweeps) cannot collide.
_SHARED: Dict[int, _SweepJob] = {}
_next_job_id = 0


def _run_cell(job_id: int, spec_index: int, capacity: int) -> _CellOutput:
    """Worker task: one (policy, capacity) cell of the grid."""
    # Forked workers inherit the parent's ambient dispatcher (and its
    # open file sinks) and the parent's ambient tracer; emitting through
    # the former from many processes would interleave corrupt output,
    # and appending to the latter is invisible to the parent — so
    # workers clear both and build their own instruments when asked.
    obs_runtime.deactivate()
    obs_trace.deactivate()
    job = _SHARED[job_id]
    registry = MetricsRegistry() if job.collect_metrics else None

    def cell() -> ProtocolResult:
        return run_paper_protocol(
            job.workload, job.specs[spec_index], capacity,
            job.warmup, job.measured, seed=job.seed,
            repetitions=job.repetitions, observability=None,
            trace_cache=job.trace_cache, metrics=registry)

    if job.trace:
        tracer = obs_trace.Tracer()
        with obs_trace.activate(tracer):
            result = cell()
        spans = tracer.serialize()
    else:
        result = cell()
        spans = []
    return _CellOutput(
        result=result, spans=spans,
        counters=registry.counter_values() if registry is not None else {})


# -- the engine ----------------------------------------------------------------


def _narrate(line: str,
             progress: Optional[Callable[[str], None]],
             observability: Optional[EventDispatcher]) -> None:
    """Progress via the callback when given, else the event dispatcher."""
    if progress is not None:
        progress(line)
        return
    obs = obs_runtime.resolve(observability)
    if obs is not None and obs.active:
        obs.emit(ProgressEvent(message=line))


def _cell_line(capacity: int, label: str, result: ProtocolResult) -> str:
    """The per-cell progress line (same format as the serial sweep)."""
    return f"B={capacity:<6d} {label:<8s} C={result.hit_ratio:.4f}"


def run_grid(workload: Workload,
             specs: Sequence[PolicySpec],
             capacities: Sequence[int],
             warmup: int,
             measured: int,
             seed: int = 0,
             repetitions: int = 1,
             jobs: int = 2,
             trace_cache: Optional[TraceCache] = None,
             progress: Optional[Callable[[str], None]] = None,
             observability: Optional[EventDispatcher] = None
             ) -> GridResults:
    """Run every (policy, capacity) cell of a grid, ``jobs`` at a time.

    Returns ``{(capacity, label): ProtocolResult}`` — an order-free shape
    the caller assembles into its own row structure, making the merge
    deterministic regardless of completion order. Falls back to
    in-process execution (still sharing one trace cache) when process
    parallelism is unavailable.
    """
    global _next_job_id
    cache = trace_cache if trace_cache is not None else TraceCache()
    total = warmup + measured
    # Materialize every run seed's trace once, pre-fork: workers inherit
    # the compact arrays copy-on-write instead of regenerating them.
    for repetition in range(repetitions):
        cache.get(workload, total, seed + repetition)

    order = [(capacity, index) for capacity in capacities
             for index in range(len(specs))]
    results: GridResults = {}

    if jobs <= 1 or not fork_available() or len(order) <= 1:
        for capacity, index in order:
            spec = specs[index]
            with obs_trace.maybe_span("cell", capacity=capacity,
                                      policy=spec.label):
                result = run_paper_protocol(
                    workload, spec, capacity, warmup, measured, seed=seed,
                    repetitions=repetitions, observability=observability,
                    trace_cache=cache)
            results[(capacity, spec.label)] = result
            _narrate(_cell_line(capacity, spec.label, result),
                     progress, observability)
        return results

    obs = obs_runtime.resolve(observability)
    tracer = obs_trace.current()
    registry = getattr(obs, "metrics", None) if obs is not None else None
    job = _SweepJob(workload=workload, specs=specs, warmup=warmup,
                    measured=measured, seed=seed, repetitions=repetitions,
                    trace_cache=cache, trace=tracer is not None,
                    collect_metrics=registry is not None)
    job_id = _next_job_id
    _next_job_id += 1
    _SHARED[job_id] = job
    # Flush the parent's sinks before forking: a child inheriting
    # buffered-but-unwritten file output would duplicate it at exit.
    if obs is not None:
        obs.flush()
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(order)),
                                 mp_context=context) as pool:
            pending = {
                pool.submit(_run_cell, job_id, index, capacity):
                    (capacity, specs[index].label)
                for capacity, index in order}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    capacity, label = pending.pop(future)
                    output = future.result()
                    results[(capacity, label)] = output.result
                    if tracer is not None:
                        _absorb_cell(tracer, output.spans, capacity, label)
                    if registry is not None and output.counters:
                        registry.merge_counters(output.counters)
                    _narrate(_cell_line(capacity, label, output.result),
                             progress, observability)
    finally:
        _SHARED.pop(job_id, None)
    return results


def _absorb_cell(tracer: "obs_trace.Tracer",
                 spans: List[Dict[str, object]],
                 capacity: int, label: str) -> None:
    """Adopt one worker cell's relayed spans into the parent tracer.

    Synthesizes the parent-side ``cell`` envelope covering the worker
    spans' wall-clock extent (absolute timestamps make the two processes
    directly comparable), then re-parents the worker's root spans under
    it via :meth:`~repro.obs.trace.Tracer.absorb`. The envelope sits on
    the worker's pid track so Perfetto nests it with the spans it
    contains.
    """
    if not spans:
        return
    start = min(int(record["start_us"]) for record in spans)  # type: ignore[arg-type]
    end = max(int(record["start_us"]) + int(record["duration_us"])  # type: ignore[arg-type]
              for record in spans)
    cpu = sum(int(record["cpu_us"]) for record in spans  # type: ignore[arg-type]
              if record["parent_id"] is None)
    worker_pid = int(spans[0]["pid"])  # type: ignore[arg-type]
    worker_tid = int(spans[0]["tid"])  # type: ignore[arg-type]
    envelope = tracer.record(
        "cell", start_us=start, duration_us=end - start, cpu_us=cpu,
        pid=worker_pid, tid=worker_tid,
        capacity=capacity, policy=label, worker_pid=worker_pid)
    tracer.absorb(spans, parent_id=envelope.span_id)


def suggested_jobs() -> int:
    """A sensible ``--jobs`` default for this machine (all cores)."""
    return max(1, os.cpu_count() or 1)
