"""Policy-level cache simulator.

This is the instrument the paper's experiments are run on: a fixed number
of buffer slots, a replacement policy, and a reference string. It tracks
residency, hit/miss counts, evictions, and (for write references) dirty
state and write-backs — but deliberately models no pins, latency, or real
page contents; that heavier machinery lives in :class:`repro.buffer.BufferPool`.
Both drivers speak the same :class:`~repro.policies.base.ReplacementPolicy`
protocol, so a policy validated here runs unmodified there.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..clock import LogicalClock
from ..errors import ConfigurationError
from ..obs import runtime as obs_runtime
from ..obs import trace as obs_trace
from ..obs.dispatcher import EventDispatcher
from ..obs.events import AccessEvent, EvictionEvent, victim_telemetry
from ..policies.base import ReplacementPolicy
from ..types import (
    AccessOutcome,
    HitRatioCounter,
    PageId,
    Reference,
    as_reference,
)

#: Minimum trace length before :meth:`CacheSimulator.run_fused` tries a
#: policy's batch kernel. Short traces cannot amortize the batch path's
#: setup (dense page-universe arrays plus the hotness probe), and the
#: scalar kernels already run them in well under a millisecond.
BATCH_MIN_REFS = 50_000


class CacheSimulator:
    """Drive a replacement policy over a reference string.

    Parameters
    ----------
    policy:
        Any :class:`~repro.policies.base.ReplacementPolicy`.
    capacity:
        Number of buffer slots ``B``.
    record_evictions:
        When True, keeps an in-order log of (time, page) evictions for
        post-hoc analysis (costs memory on long runs; off by default).
    observability:
        An :class:`repro.obs.EventDispatcher` to emit access/eviction
        events through. Defaults to the ambient dispatcher activated via
        :func:`repro.obs.activate`, if any; with none resolved (or no
        sinks attached) the hot path pays only a guard per reference.
    """

    def __init__(self, policy: ReplacementPolicy, capacity: int,
                 record_evictions: bool = False,
                 observability: Optional[EventDispatcher] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError("buffer capacity must be positive")
        self.policy = policy
        self.capacity = capacity
        # The fast integer path may skip the observe() hook: the base
        # implementation is a no-op, and policies whose override only
        # consumes metadata that bare-page-id streams cannot carry opt
        # out via ``observe_optional`` (LRU-K does, unless it is
        # distinguishing processes).
        self._wants_observe = (
            type(policy).observe is not ReplacementPolicy.observe
            and not getattr(policy, "observe_optional", False))
        self._obs = obs_runtime.resolve(observability)
        if self._obs is not None and hasattr(policy, "bind_observability"):
            policy.bind_observability(self._obs)
        # Eviction-decision provenance (repro.obs.provenance): resolved
        # once, so the eviction path pays a single None-check. Attach the
        # recorder to the policy *before* constructing the simulator.
        self._provenance = getattr(policy, "provenance", None)
        self.clock = LogicalClock()
        self.counter = HitRatioCounter()
        self.warmup_counter: Optional[HitRatioCounter] = None
        self.evictions = 0
        self.writebacks = 0
        self._resident: Dict[PageId, bool] = {}  # page -> dirty?
        self._admitted_at: Dict[PageId, int] = {}
        self.eviction_log: Optional[List[AccessOutcome]] = (
            [] if record_evictions else None)

    # -- state inspection -------------------------------------------------------

    @property
    def resident_pages(self) -> FrozenSet[PageId]:
        """Snapshot of resident page ids."""
        return frozenset(self._resident)

    @property
    def now(self) -> int:
        """Logical time of the most recent access."""
        return self.clock.now

    def is_resident(self, page: PageId) -> bool:
        """True when the page currently occupies a buffer slot."""
        return page in self._resident

    def is_dirty(self, page: PageId) -> bool:
        """True when the page is resident and has unwritten modifications."""
        return self._resident.get(page, False)

    # -- driving ------------------------------------------------------------------

    def access(self, item: "Reference | PageId") -> AccessOutcome:
        """Process one reference and return what happened."""
        ref = as_reference(item)
        t = self.clock.tick()
        outcome = AccessOutcome(reference=ref, time=t, hit=False)

        self.policy.observe(ref, t)
        if ref.page in self._resident:
            outcome.hit = True
            self.policy.on_hit(ref.page, t)
        else:
            if len(self._resident) >= self.capacity:
                victim = self.policy.choose_victim(t, incoming=ref.page)
                self._evict(victim, t, outcome)
            self.policy.on_admit(ref.page, t)
            self._resident[ref.page] = False
            self._admitted_at[ref.page] = t

        if ref.is_write:
            self._resident[ref.page] = True
        self.counter.record(outcome.hit)
        obs = self._obs
        if obs is not None and obs.has_sinks:
            obs.emit(AccessEvent(time=t, page=ref.page, hit=outcome.hit,
                                 write=ref.is_write))
        return outcome

    def access_page(self, page: PageId) -> bool:
        """Fast integer path: process one plain read reference.

        Behaviourally identical to ``access(page)`` for a metadata-free
        read, but skips the :func:`~repro.types.as_reference` isinstance
        dispatch, the :class:`~repro.types.AccessOutcome` allocation,
        and (when the policy permits) the ``observe`` hook. Returns
        whether the access hit. Pre-normalized streams — the compact
        page-id form of :class:`repro.sim.trace_cache.CachedTrace` —
        are driven through here by :func:`repro.sim.measure_hit_ratio`.
        """
        if self.eviction_log is not None:
            # The eviction log records full outcomes; take the slow path.
            return self.access(page).hit
        t = self.clock.tick()
        policy = self.policy
        if self._wants_observe:
            policy.observe(Reference(page=page), t)
        resident = self._resident
        if page in resident:
            hit = True
            policy.on_hit(page, t)
        else:
            hit = False
            if len(resident) >= self.capacity:
                self._evict(policy.choose_victim(t, incoming=page), t)
            policy.on_admit(page, t)
            resident[page] = False
            self._admitted_at[page] = t
        self.counter.record(hit)
        obs = self._obs
        if obs is not None and obs.has_sinks:
            obs.emit(AccessEvent(time=t, page=page, hit=hit, write=False))
        return hit

    def run_fused(self, pages: Sequence[PageId], warmup: int) -> bool:
        """Play a compact page-id trace through the policy's fused kernel.

        The fused path (see :mod:`repro.policies.kernel`) runs the whole
        warm-up + measurement protocol in one loop with the policy's
        structures bound to locals — no per-reference hook dispatch, no
        :class:`~repro.types.Reference`/:class:`~repro.types.AccessOutcome`
        allocation — and is decision-identical to calling
        :meth:`access_page` once per reference with
        :meth:`start_measurement` at the boundary.

        Returns True when a kernel ran (the simulator's counters, clock,
        and residency then reflect the completed run), or False when the
        caller must fall back to the object path because:

        - any observation channel is attached — event sinks, an ambient
          tracer, a provenance recorder, or the eviction log (kernels
          are observability-free by contract);
        - the simulator already processed references (kernels replay
          whole runs from a fresh state only);
        - the policy offers no kernel for its configuration.

        Traces of at least :data:`BATCH_MIN_REFS` references first try
        the policy's *batch kernel* (``make_batch_kernel``, see
        :mod:`repro.policies.kernel`), which skips runs of hits between
        misses with vectorized bookkeeping. A batch kernel may decline
        at runtime — numpy absent, page ids unusable as dense indices,
        or a hotness probe predicting batching would lose — in which
        case the scalar kernel runs instead; both are decision-identical
        so the choice is invisible in results.
        """
        if (self.eviction_log is not None or self._provenance is not None
                or self.clock.now != 0 or self.counter.total):
            return False
        obs = self._obs
        if obs is not None and obs.has_sinks:
            return False
        if obs_trace.current() is not None:
            return False
        result = None
        if len(pages) >= BATCH_MIN_REFS:
            batch_factory = getattr(self.policy, "make_batch_kernel", None)
            if batch_factory is not None:
                batch_kernel = batch_factory(self.capacity)
                if batch_kernel is not None:
                    result = batch_kernel(pages, warmup)
        if result is None:
            factory = getattr(self.policy, "make_kernel", None)
            if factory is None:
                return False
            kernel = factory(self.capacity)
            if kernel is None:
                return False
            result = kernel(pages, warmup)
        self.clock.advance(result.now)
        self.warmup_counter = HitRatioCounter(hits=result.warmup_hits,
                                              misses=result.warmup_misses)
        self.counter.hits = result.hits
        self.counter.misses = result.misses
        self.evictions += result.evictions
        self._resident = dict.fromkeys(result.resident, False)
        self._admitted_at = dict(result.resident)
        return True

    def _evict(self, victim: PageId, t: int,
               outcome: Optional[AccessOutcome] = None) -> None:
        dirty = self._resident.pop(victim)
        admitted = self._admitted_at.pop(victim)
        if self._provenance is not None:
            # Victim choice already recorded its decision; complete it
            # with the outcome only the driver knows.
            self._provenance.annotate_eviction(victim, t, dirty)
        obs = self._obs
        if obs is not None and obs.has_sinks:
            distance, informed = victim_telemetry(self.policy, victim, t)
            obs.emit(EvictionEvent(time=t, victim=victim, dirty=dirty,
                                   backward_k_distance=distance,
                                   history_informed=informed))
        self.policy.on_evict(victim, t)
        self.evictions += 1
        if dirty:
            self.writebacks += 1
        if outcome is not None:
            outcome.evicted = victim
            outcome.evicted_dirty = dirty
            if self.eviction_log is not None:
                self.eviction_log.append(
                    AccessOutcome(reference=outcome.reference, time=t,
                                  hit=False, evicted=victim,
                                  evicted_dirty=dirty))
        del admitted  # retained only for residency-duration analyses

    def set_capacity(self, capacity: int) -> None:
        """Resize the buffer, evicting victims if it shrank.

        Supports the dynamic frame/history-block exchange of
        :class:`repro.sim.adaptive.AdaptiveCacheSimulator` (the paper's
        Section 5 future-work idea). Shrinking evicts through the policy's
        normal victim selection, so the pages sacrificed are exactly the
        ones the policy values least.
        """
        if capacity <= 0:
            raise ConfigurationError("buffer capacity must be positive")
        self.capacity = capacity
        now = self.clock.now
        while len(self._resident) > self.capacity:
            victim = self.policy.choose_victim(max(1, now))
            outcome = AccessOutcome(
                reference=as_reference(victim), time=now, hit=False)
            self._evict(victim, max(1, now), outcome)

    def run(self, references: Iterable["Reference | PageId"]) -> HitRatioCounter:
        """Process an entire reference string; returns the live counter."""
        for item in references:
            self.access(item)
        return self.counter

    def start_measurement(self) -> None:
        """Mark the warm-up boundary: archive and reset the hit counter.

        Implements the paper's protocol of "dropping the initial set of
        references" before measuring (Section 4.1).
        """
        self.warmup_counter = HitRatioCounter(hits=self.counter.hits,
                                              misses=self.counter.misses)
        self.counter.reset()

    @property
    def hit_ratio(self) -> float:
        """Cache hit ratio C = h/T over the current measurement window."""
        return self.counter.hit_ratio
