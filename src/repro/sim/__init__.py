"""Simulation harness: cache simulator, experiment protocol, sweeps, tables."""

from .cache import CacheSimulator
from .adaptive import AdaptiveCacheSimulator
from .runner import (
    PolicySpec,
    RunResult,
    measure_hit_ratio,
    run_paper_protocol,
)
from .equi_effective import equi_effective_buffer_size, equi_effective_ratio
from .trace_cache import CachedTrace, TraceCache
from .parallel import default_jobs, fork_available, run_grid, suggested_jobs
from .recovery import (
    CellExecutionError,
    CellFailure,
    RetryPolicy,
    SweepCheckpoint,
    SweepInterrupted,
    default_checkpoint,
    default_retry,
    grid_fingerprint,
)
from .sweep import SweepCell, sweep_buffer_sizes
from .explain import (
    EXPLAIN_WORKLOADS,
    ExplainReport,
    NextUseIndex,
    explain_eviction,
    replay_cell,
)
from .experiment import ExperimentResult, ExperimentSpec, run_experiment
from .tables import format_table, Table
from .metrics import MetricsCollector, MissBreakdown
from .charts import ascii_chart, chart_experiment

__all__ = [
    "CacheSimulator",
    "AdaptiveCacheSimulator",
    "PolicySpec",
    "RunResult",
    "measure_hit_ratio",
    "run_paper_protocol",
    "equi_effective_buffer_size",
    "equi_effective_ratio",
    "CachedTrace",
    "TraceCache",
    "default_jobs",
    "fork_available",
    "run_grid",
    "suggested_jobs",
    "CellExecutionError",
    "CellFailure",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepInterrupted",
    "default_checkpoint",
    "default_retry",
    "grid_fingerprint",
    "SweepCell",
    "sweep_buffer_sizes",
    "EXPLAIN_WORKLOADS",
    "ExplainReport",
    "NextUseIndex",
    "explain_eviction",
    "replay_cell",
    "ExperimentResult",
    "ExperimentSpec",
    "run_experiment",
    "format_table",
    "Table",
    "MetricsCollector",
    "MissBreakdown",
    "ascii_chart",
    "chart_experiment",
]
