"""The equi-effective buffer size metric B(1)/B(2).

Section 4.1: "for a given N1, N2 and buffer size B(2), if LRU-2 achieves a
cache hit ratio C(2), we expect that LRU-1 will achieve a smaller cache
hit ratio. But by increasing the number of buffer pages available, LRU-1
will eventually achieve an equivalent cache hit ratio, and we say that
this happens when the number of buffer pages equals B(1). Then the ratio
B(1)/B(2) ... is a measure of comparable buffering effectiveness of the
two algorithms."

:func:`equi_effective_buffer_size` finds B(1) by bisection: a policy's hit
ratio is (statistically) non-decreasing in buffer size, so we search for
the smallest capacity whose measured hit ratio reaches the target. Results
are cached per capacity so the bracketing phase's endpoints are reused.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ConfigurationError, SimulationError
from ..workloads.base import Workload
from .runner import PolicySpec, run_paper_protocol

#: Evaluates the mean hit ratio of the baseline at a given capacity.
HitRatioFunction = Callable[[int], float]


def equi_effective_buffer_size(evaluate: HitRatioFunction,
                               target_hit_ratio: float,
                               low: int = 1,
                               high: int = 1 << 20,
                               max_probes: int = 64) -> int:
    """Smallest capacity whose hit ratio reaches ``target_hit_ratio``.

    ``evaluate`` must be (noisily) non-decreasing in capacity. ``high`` is
    a hard cap: if even that capacity misses the target, a
    :class:`~repro.errors.SimulationError` is raised — for hit-ratio
    targets near the workload's compulsory-miss ceiling no finite buffer
    suffices.
    """
    if not 0.0 <= target_hit_ratio <= 1.0:
        raise ConfigurationError("target hit ratio must lie in [0, 1]")
    if low <= 0 or high < low:
        raise ConfigurationError("need 0 < low <= high")

    cache: Dict[int, float] = {}

    def ratio(capacity: int) -> float:
        if capacity not in cache:
            cache[capacity] = evaluate(capacity)
        return cache[capacity]

    # Exponential bracketing upward from `low`.
    probes = 0
    bracket_low = low
    bracket_high = low
    while ratio(bracket_high) < target_hit_ratio:
        probes += 1
        if bracket_high >= high or probes > max_probes:
            raise SimulationError(
                f"hit ratio {target_hit_ratio:.4f} unreachable at "
                f"capacity {bracket_high} (got {ratio(bracket_high):.4f})")
        bracket_low = bracket_high
        bracket_high = min(high, bracket_high * 2)

    # Bisect for the smallest satisfying capacity.
    while bracket_low < bracket_high:
        probes += 1
        if probes > max_probes:
            break
        middle = (bracket_low + bracket_high) // 2
        if ratio(middle) >= target_hit_ratio:
            bracket_high = middle
        else:
            bracket_low = middle + 1
    return bracket_high


def equi_effective_ratio(workload: Workload,
                         baseline: PolicySpec,
                         improved: PolicySpec,
                         capacity: int,
                         warmup: int,
                         measured: int,
                         seed: int = 0,
                         repetitions: int = 1,
                         high: Optional[int] = None) -> float:
    """The paper's B(baseline)/B(improved) at the improved policy's capacity.

    Runs ``improved`` at ``capacity`` to get the target hit ratio, then
    searches for the baseline capacity matching it.
    """
    improved_result = run_paper_protocol(
        workload, improved, capacity, warmup, measured,
        seed=seed, repetitions=repetitions)
    target = improved_result.hit_ratio

    def evaluate(b: int) -> float:
        result = run_paper_protocol(
            workload, baseline, b, warmup, measured,
            seed=seed, repetitions=repetitions)
        return result.hit_ratio

    upper = high if high is not None else max(64 * capacity, 4096)
    b_baseline = equi_effective_buffer_size(
        evaluate, target, low=max(1, capacity // 2), high=upper)
    return b_baseline / capacity
