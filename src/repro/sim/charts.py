"""ASCII charts for hit-ratio curves.

The paper presents its evaluation as tables; a curve view makes the
crossovers and plateaus legible at a glance in a terminal. These are
deliberately dependency-free fixed-grid plots — the CLI renders one under
each table when asked (``--chart``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError

#: Glyphs assigned to series, in order.
_GLYPHS = "ox*+#@%&"


def ascii_chart(x_values: Sequence[float],
                series: Dict[str, Sequence[float]],
                width: int = 60,
                height: int = 16,
                y_min: Optional[float] = None,
                y_max: Optional[float] = None,
                y_label: str = "hit ratio",
                x_label: str = "B") -> str:
    """Render one or more y(x) series onto a character grid.

    X positions are mapped by value (not by index), so unevenly spaced
    buffer sizes land where they should. Collisions print the later
    series' glyph; the legend disambiguates.
    """
    if not x_values:
        raise ConfigurationError("chart needs at least one x value")
    if not series:
        raise ConfigurationError("chart needs at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small to be legible")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {label!r} has {len(values)} points for "
                f"{len(x_values)} x values")
    if len(series) > len(_GLYPHS):
        raise ConfigurationError(
            f"at most {len(_GLYPHS)} series are distinguishable")

    all_y = [y for values in series.values() for y in values]
    low = min(all_y) if y_min is None else y_min
    high = max(all_y) if y_max is None else y_max
    if high <= low:
        high = low + 1.0
    x_low, x_high = min(x_values), max(x_values)
    x_span = (x_high - x_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for glyph, (label, values) in zip(_GLYPHS, series.items()):
        for x, y in zip(x_values, values):
            column = int(round((x - x_low) / x_span * (width - 1)))
            clamped = min(max(y, low), high)
            row = int(round((clamped - low) / (high - low) * (height - 1)))
            grid[height - 1 - row][column] = glyph

    lines: List[str] = []
    for index, row in enumerate(grid):
        if index == 0:
            margin = f"{high:7.3f} |"
        elif index == height - 1:
            margin = f"{low:7.3f} |"
        else:
            margin = "        |"
        lines.append(margin + "".join(row))
    lines.append("        +" + "-" * width)
    lines.append(f"        {x_label}: {x_low:g} .. {x_high:g}   "
                 f"y: {y_label}")
    legend = "   ".join(f"{glyph}={label}" for glyph, label
                        in zip(_GLYPHS, series))
    lines.append(f"        {legend}")
    return "\n".join(lines)


def chart_experiment(result, width: int = 60, height: int = 16) -> str:
    """Chart an :class:`~repro.sim.experiment.ExperimentResult`."""
    x_values = [float(b) for b in result.capacities]
    series = {spec.label: result.hit_ratios(spec.label)
              for spec in result.spec.policies}
    return ascii_chart(x_values, series, width=width, height=height,
                       y_min=0.0)
