"""Parameter sweeps over buffer sizes (the rows of the paper's tables)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs import trace as obs_trace
from ..obs.dispatcher import EventDispatcher
from ..stats import ConfidenceInterval
from ..workloads.base import Workload
from . import parallel
from .runner import PolicySpec, ProtocolResult, run_paper_protocol
from .trace_cache import TraceCache


@dataclass
class SweepCell:
    """One buffer size's results across all policies."""

    capacity: int
    results: Dict[str, ProtocolResult] = field(default_factory=dict)

    def hit_ratio(self, label: str) -> float:
        """Mean hit ratio of the given policy at this buffer size."""
        return self.results[label].hit_ratio

    def interval(self, label: str) -> ConfidenceInterval:
        """Confidence interval of the given policy at this buffer size."""
        return self.results[label].interval


def sweep_buffer_sizes(workload: Workload,
                       specs: Sequence[PolicySpec],
                       capacities: Sequence[int],
                       warmup: int,
                       measured: int,
                       seed: int = 0,
                       repetitions: int = 1,
                       progress: Optional[callable] = None,
                       observability: Optional[EventDispatcher] = None,
                       jobs: Optional[int] = None,
                       trace_cache: Optional[TraceCache] = None
                       ) -> List[SweepCell]:
    """Run every (policy, capacity) cell of a table.

    All cells share one :class:`~repro.sim.trace_cache.TraceCache`, so
    each seed's reference string is materialized exactly once for the
    whole sweep (pass ``trace_cache`` to extend the sharing further,
    e.g. to equi-effective probes).

    ``jobs`` fans the grid out over that many worker processes via
    :mod:`repro.sim.parallel`; ``None`` uses the ambient default set by
    :func:`repro.sim.parallel.default_jobs` (1 — serial — unless the CLI
    was invoked with ``--jobs``). Results are merged deterministically:
    a parallel sweep returns cells equal to a serial one.

    ``progress``, when given, is called with a human-readable string after
    each cell — the CLI uses it for live feedback on long sweeps. Under
    ``jobs > 1`` the lines arrive in completion order rather than grid
    order.
    """
    if not specs:
        raise ConfigurationError("sweep needs at least one policy")
    if not capacities:
        raise ConfigurationError("sweep needs at least one buffer size")
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate policy labels: {labels}")

    jobs = parallel.resolve_jobs(jobs)
    cache = trace_cache if trace_cache is not None else TraceCache()

    with obs_trace.maybe_span(
            "sweep", workload=type(workload).__name__,
            policies=labels, capacities=list(capacities),
            repetitions=repetitions, jobs=jobs):
        if jobs > 1:
            grid = parallel.run_grid(
                workload, specs, capacities, warmup, measured,
                seed=seed, repetitions=repetitions, jobs=jobs,
                trace_cache=cache, progress=progress,
                observability=observability)
            return [SweepCell(capacity=capacity,
                              results={spec.label:
                                       grid[(capacity, spec.label)]
                                       for spec in specs})
                    for capacity in capacities]

        cells: List[SweepCell] = []
        for capacity in capacities:
            cell = SweepCell(capacity=capacity)
            for spec in specs:
                with obs_trace.maybe_span("cell", capacity=capacity,
                                          policy=spec.label):
                    result = run_paper_protocol(
                        workload, spec, capacity, warmup, measured,
                        seed=seed, repetitions=repetitions,
                        observability=observability, trace_cache=cache)
                cell.results[spec.label] = result
                if progress is not None:
                    progress(f"B={capacity:<6d} {spec.label:<8s} "
                             f"C={result.hit_ratio:.4f}")
            cells.append(cell)
        return cells
