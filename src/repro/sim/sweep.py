"""Parameter sweeps over buffer sizes (the rows of the paper's tables)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs.dispatcher import EventDispatcher
from ..stats import ConfidenceInterval
from ..workloads.base import Workload
from .runner import PolicySpec, ProtocolResult, run_paper_protocol


@dataclass
class SweepCell:
    """One buffer size's results across all policies."""

    capacity: int
    results: Dict[str, ProtocolResult] = field(default_factory=dict)

    def hit_ratio(self, label: str) -> float:
        """Mean hit ratio of the given policy at this buffer size."""
        return self.results[label].hit_ratio

    def interval(self, label: str) -> ConfidenceInterval:
        """Confidence interval of the given policy at this buffer size."""
        return self.results[label].interval


def sweep_buffer_sizes(workload: Workload,
                       specs: Sequence[PolicySpec],
                       capacities: Sequence[int],
                       warmup: int,
                       measured: int,
                       seed: int = 0,
                       repetitions: int = 1,
                       progress: Optional[callable] = None,
                       observability: Optional[EventDispatcher] = None
                       ) -> List[SweepCell]:
    """Run every (policy, capacity) cell of a table.

    ``progress``, when given, is called with a human-readable string after
    each cell — the CLI uses it for live feedback on long sweeps.
    """
    if not specs:
        raise ConfigurationError("sweep needs at least one policy")
    if not capacities:
        raise ConfigurationError("sweep needs at least one buffer size")
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate policy labels: {labels}")

    cells: List[SweepCell] = []
    for capacity in capacities:
        cell = SweepCell(capacity=capacity)
        for spec in specs:
            result = run_paper_protocol(
                workload, spec, capacity, warmup, measured,
                seed=seed, repetitions=repetitions,
                observability=observability)
            cell.results[spec.label] = result
            if progress is not None:
                progress(f"B={capacity:<6d} {spec.label:<8s} "
                         f"C={result.hit_ratio:.4f}")
        cells.append(cell)
    return cells
