"""Parameter sweeps over buffer sizes (the rows of the paper's tables)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs import trace as obs_trace
from ..obs.dispatcher import EventDispatcher
from ..stats import ConfidenceInterval
from ..workloads.base import Workload
from . import parallel, recovery
from .runner import PolicySpec, ProtocolResult
from .trace_cache import TraceCache


@dataclass
class SweepCell:
    """One buffer size's results across all policies."""

    capacity: int
    results: Dict[str, ProtocolResult] = field(default_factory=dict)

    def hit_ratio(self, label: str) -> float:
        """Mean hit ratio of the given policy at this buffer size."""
        return self.results[label].hit_ratio

    def interval(self, label: str) -> ConfidenceInterval:
        """Confidence interval of the given policy at this buffer size."""
        return self.results[label].interval


def sweep_buffer_sizes(workload: Workload,
                       specs: Sequence[PolicySpec],
                       capacities: Sequence[int],
                       warmup: int,
                       measured: int,
                       seed: int = 0,
                       repetitions: int = 1,
                       progress: Optional[callable] = None,
                       observability: Optional[EventDispatcher] = None,
                       jobs: Optional[int] = None,
                       trace_cache: Optional[TraceCache] = None,
                       retry: Optional[recovery.RetryPolicy] = None,
                       checkpoint: Optional[recovery.SweepCheckpoint] = None
                       ) -> List[SweepCell]:
    """Run every (policy, capacity) cell of a table.

    All cells share one :class:`~repro.sim.trace_cache.TraceCache`, so
    each seed's reference string is materialized exactly once for the
    whole sweep (pass ``trace_cache`` to extend the sharing further,
    e.g. to equi-effective probes). A cache created here is cleared when
    the sweep finishes — including the failure and interrupt paths — so
    sweeps in a long-lived process do not pin workloads forever.

    ``jobs`` fans the grid out over that many worker processes via
    :mod:`repro.sim.parallel`; ``None`` uses the ambient default set by
    :func:`repro.sim.parallel.default_jobs` (1 — serial — unless the CLI
    was invoked with ``--jobs``). Results are merged deterministically:
    a parallel sweep returns cells equal to a serial one.

    Execution is fault tolerant: failing cells are retried per ``retry``
    (default: the ambient :func:`repro.sim.recovery.default_retry`
    policy) and completed cells stream into ``checkpoint`` when one is
    given or ambiently active — see :mod:`repro.sim.recovery`.

    ``progress``, when given, is called with a human-readable string after
    each cell — the CLI uses it for live feedback on long sweeps. Under
    ``jobs > 1`` the lines arrive in completion order rather than grid
    order.
    """
    if not specs:
        raise ConfigurationError("sweep needs at least one policy")
    if not capacities:
        raise ConfigurationError("sweep needs at least one buffer size")
    labels = [spec.label for spec in specs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate policy labels: {labels}")

    jobs = parallel.resolve_jobs(jobs)
    owns_cache = trace_cache is None
    cache = trace_cache if trace_cache is not None else TraceCache()

    try:
        with obs_trace.maybe_span(
                "sweep", workload=type(workload).__name__,
                policies=labels, capacities=list(capacities),
                repetitions=repetitions, jobs=jobs):
            grid = parallel.run_grid(
                workload, specs, capacities, warmup, measured,
                seed=seed, repetitions=repetitions, jobs=jobs,
                trace_cache=cache, progress=progress,
                observability=observability, retry=retry,
                checkpoint=checkpoint)
    finally:
        if owns_cache:
            cache.clear()
    return [SweepCell(capacity=capacity,
                      results={spec.label: grid[(capacity, spec.label)]
                               for spec in specs})
            for capacity in capacities]
