"""Shared materialized reference strings for sweep grids.

Every cell of a paper table is a pure function of (workload spec, policy
spec, buffer size, seed) — yet materializing the reference string is the
one expensive input they all share. Before this module existed,
:func:`~repro.sim.runner.run_paper_protocol` regenerated the identical
Zipfian/OLTP trace once per policy and once more (as a full list copy)
for oracle policies that need the future. A Table 4.2 sweep over
P policies and B buffer sizes therefore sampled the same stream
``P × B`` times.

:class:`TraceCache` materializes each ``(workload, seed, total)`` string
exactly once and hands out a :class:`CachedTrace` — a compact
array-of-page-ids form when the stream carries no metadata (all reads,
no process/transaction ids), with lazy :class:`~repro.types.Reference`
reconstruction for consumers that need full reference objects. The
compact form is also what the parallel engine
(:mod:`repro.sim.parallel`) shares with forked workers copy-on-write:
one ``array('q')`` per seed instead of one Python object per reference
per process.

Oracles get :meth:`CachedTrace.page_ids` — the *same* array every
policy's victim-selection future is read from — instead of a fresh
per-policy list copy.
"""

from __future__ import annotations

import os
import tempfile
from array import array
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..types import PageId, Reference
from ..workloads.base import Workload, compact_reference_pages


def _spill_threshold() -> Optional[int]:
    """Reference count beyond which materialized traces spill to disk.

    ``REPRO_TRACE_SPILL`` overrides the default (an integer count; 0 or
    a negative value disables spilling entirely). The default keeps
    short property-test traces in memory and moves sweep-scale strings
    (tens of MB across seeds) into mmap-backed files that forked workers
    share copy-free.
    """
    raw = os.environ.get("REPRO_TRACE_SPILL")
    if raw is None:
        return 4_000_000
    try:
        threshold = int(raw)
    except ValueError:
        return 4_000_000
    return threshold if threshold > 0 else None


class CachedTrace:
    """One materialized reference string, stored as compactly as possible.

    ``plain`` traces (every reference a metadata-free read) keep only an
    ``array('q')`` of page ids — 8 bytes per reference instead of a
    ~100-byte ``Reference`` object — and rebuild ``Reference`` objects
    lazily, only if a consumer insists on them. Traces that carry writes
    or process/transaction ids (e.g. the Section 4.3 OLTP generator)
    keep the full reference list, with the page-id array derived lazily
    for oracle consumption.

    Past a size threshold (see :func:`_spill_threshold`), materialized
    plain traces *spill to disk* in the columnar format of
    :mod:`repro.storage.columnar`: the page ids then live in an
    ``mmap``-backed zero-copy view instead of a heap array, so a parent
    process that pre-materializes a sweep's traces shares one page-cache
    copy with every forked worker rather than copy-on-writing a heap
    array per seed.
    """

    __slots__ = ("_pages", "_references", "_backing")

    def __init__(self, pages: Optional[Sequence[PageId]],
                 references: Optional[List[Reference]],
                 backing=None) -> None:
        if pages is None and references is None:
            raise ValueError("a trace needs pages or references")
        self._pages = pages
        self._references = references
        # The TraceFile whose mmap backs _pages, if any: pinned here so
        # the mapping outlives every view handed out.
        self._backing = backing

    @classmethod
    def from_references(cls, references: Sequence[Reference]) -> "CachedTrace":
        """Compact a materialized reference list (drops it when plain)."""
        references = list(references)
        pages = compact_reference_pages(references)
        if pages is not None:
            return cls(pages, None)  # plain: keep only the page ids
        return cls(None, references)

    @classmethod
    def materialize(cls, workload: Workload, total: int, seed: int,
                    spill_threshold: Optional[int] = None) -> "CachedTrace":
        """Expand a workload into a cached trace (no cache involved).

        Tries the workload's bulk :meth:`~repro.workloads.base.Workload.
        page_ids` materializer first — same stream, no intermediate
        ``Reference`` objects — and falls back to draining
        :meth:`~repro.workloads.base.Workload.references` when the
        workload returns None (its stream carries metadata).

        Plain traces at or past the spill threshold (default: the
        ``REPRO_TRACE_SPILL`` environment knob) move to an mmap-backed
        columnar file — same ids, same indexing, one shared physical
        copy across forked workers. Spilling is best-effort: a read-only
        temp directory just keeps the trace in memory.
        """
        pages = workload.page_ids(total, seed=seed)
        if pages is None:
            return cls.from_references(workload.references(total, seed=seed))
        if spill_threshold is None:
            spill_threshold = _spill_threshold()
        if spill_threshold is not None and total >= spill_threshold:
            backed = cls._spill(pages, workload, seed)
            if backed is not None:
                return backed
        return cls(pages, None)

    @classmethod
    def from_file(cls, path) -> "CachedTrace":
        """Open a baked columnar trace file as a plain cached trace."""
        from ..storage.columnar import TraceFile

        backing = TraceFile(path)
        return cls(backing.page_ids(), None, backing=backing)

    @classmethod
    def _spill(cls, pages: array, workload: Workload,
               seed: int) -> Optional["CachedTrace"]:
        from ..storage.columnar import (TraceFile, workload_fingerprint,
                                        write_trace)

        directory = os.environ.get("REPRO_TRACE_DIR") or tempfile.gettempdir()
        handle = None
        try:
            fd, path = tempfile.mkstemp(prefix="repro-trace-",
                                        suffix=".rtrc", dir=directory)
            os.close(fd)
            write_trace(path, pages,
                        fingerprint=workload_fingerprint(workload), seed=seed)
            handle = TraceFile(path)
            # The file stays alive through the open descriptor/mapping
            # only: unlink now so abandoned spills never accumulate.
            os.unlink(path)
            return cls(handle.page_ids(), None, backing=handle)
        except OSError:
            if handle is not None:
                handle.close()
            return None

    @property
    def plain(self) -> bool:
        """True when every reference is a metadata-free read."""
        return self._references is None

    @property
    def mmap_backed(self) -> bool:
        """True when the page ids live in a columnar file mapping."""
        return self._backing is not None

    def __len__(self) -> int:
        if self._pages is not None:
            return len(self._pages)
        return len(self._references)

    def page_ids(self, limit: Optional[int] = None) -> Sequence[PageId]:
        """The page-id sequence (shared, not a copy) — what oracles need.

        ``limit`` asks for only the first ``limit`` ids: plain traces
        hand back a slice (for mmap-backed traces a zero-copy sub-view),
        and reference-backed traces materialize just the prefix instead
        of compacting the whole string — `repro explain` replaying the
        head of a long trace never touches the tail.
        """
        if self._pages is None:
            if limit is not None and limit < len(self._references):
                return array(
                    "q", (ref.page for ref in self._references[:limit]))
            self._pages = array("q", (ref.page for ref in self._references))
        if limit is not None and limit < len(self._pages):
            return self._pages[:limit]
        return self._pages

    def references(self) -> List[Reference]:
        """Full ``Reference`` objects, reconstructed lazily for plain traces.

        For a plain trace the rebuilt list is *not* retained: caching it
        would pin ~100 bytes per reference for the rest of the sweep and
        flip :attr:`plain` off, losing the compact-array fast path for
        every later consumer. Callers that need the list repeatedly
        should keep their own reference to it.
        """
        if self._references is not None:
            return self._references
        return [Reference(page=page) for page in self._pages]


#: Cache key: (workload identity, reference count, seed).
_TraceKey = Tuple[int, int, int]


class TraceCache:
    """Materialize each (workload, seed, total) reference string once.

    The cache is keyed by workload *identity* — two distinct workload
    objects never share an entry, so differently-parameterized instances
    of the same class cannot collide. The workload is pinned for the
    cache's lifetime to keep its ``id()`` unique.

    A cache is typically scoped to one sweep/experiment; sharing it
    across the policies, capacities, and equi-effective probes of a
    table collapses ``P × B`` trace materializations into one per seed.
    """

    def __init__(self) -> None:
        self._traces: Dict[_TraceKey, CachedTrace] = {}
        self._pinned: Dict[int, Workload] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._traces)

    def get(self, workload: Workload, total: int, seed: int) -> CachedTrace:
        """The materialized trace for (workload, total, seed), cached."""
        key = (id(workload), total, seed)
        trace = self._traces.get(key)
        if trace is not None:
            self.hits += 1
            return trace
        self.misses += 1
        trace = CachedTrace.materialize(workload, total, seed)
        self._pinned[id(workload)] = workload
        self._traces[key] = trace
        return trace

    def clear(self) -> None:
        """Drop every cached trace (frees the arrays/lists)."""
        self._traces.clear()
        self._pinned.clear()


#: What the measurement loop accepts as a reference stream.
TraceLike = Union[CachedTrace, Sequence[Reference]]
