"""Fault-tolerant sweep execution: retries, checkpoints, interrupts.

The paper's evaluation grid (Section 4.1) is a set of independent pure
cells — exactly the shape that should be restartable. This module gives
the sweep engine (:mod:`repro.sim.parallel`) the pieces it needs to
survive the ways long multi-policy sweeps actually die:

- :class:`RetryPolicy` — how many attempts a cell gets, the exponential
  backoff between them, an optional per-cell wall-clock timeout, and
  whether a cell that exhausts its attempts is re-run in-process
  serially as graceful degradation;
- :func:`classify` — transient-vs-poisoned triage of a cell failure
  (a crashed worker or a flaky factory is worth retrying; a
  :class:`~repro.errors.ConfigurationError` is deterministic and not);
- :class:`SweepCheckpoint` — a JSONL record of completed
  ``(capacity, label) → ProtocolResult`` cells, written as cells finish
  and keyed by a grid fingerprint so one file can serve several sweeps
  (``--resume`` skips cells already recorded);
- :class:`SweepInterrupted` / :class:`CellExecutionError` — structured
  exits that carry the salvaged partial :data:`GridResults` instead of
  discarding completed work;
- :func:`chaos_hook` — opt-in, env-driven failure injection
  (``REPRO_CHAOS=kill|raise|hang:N``) used by the failure-injection
  tests and the CI chaos-smoke job.

Cells are pure functions of their inputs, so a retried or resumed cell
is bit-identical to a serial run: results round-trip through the
checkpoint exactly (JSON floats serialize via ``repr``, the shortest
round-trip form), property-tested in ``tests/sim/test_recovery.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigurationError, ReproError, SimulationError
from ..stats import ConfidenceInterval
from ..workloads.base import Workload
from .runner import PolicySpec, ProtocolResult, RunResult

# -- retry policy --------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the sweep engine reacts to a failing grid cell.

    A cell gets ``max_attempts`` tries in the worker pool; transient
    failures (crashed workers, timeouts, flaky exceptions) sleep
    ``backoff_base * backoff_factor**attempt`` seconds between tries.
    A cell that exhausts its attempts is re-run in-process serially when
    ``fallback_serial`` is set — graceful degradation for cells that
    only fail under parallel memory pressure (the OOM case) and a clean
    in-process traceback for cells that are genuinely broken.

    ``timeout`` bounds one attempt's wall-clock seconds; exceeding it
    cancels the cell by reaping the worker pool (a process-pool task
    cannot be cancelled any other way) and counts as one attempt.

    ``sleep`` is injectable so tests retry instantly.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    timeout: Optional[float] = None
    fallback_serial: bool = True
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("a cell needs at least one attempt")
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ConfigurationError("backoff parameters must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("cell timeout must be positive seconds")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), in seconds."""
        return self.backoff_base * self.backoff_factor ** attempt

    def backoff(self, attempt: int) -> None:
        """Sleep the exponential-backoff delay for this attempt."""
        delay = self.delay(attempt)
        if delay > 0:
            self.sleep(delay)


#: Failure kinds attached to events and :class:`CellFailure` records.
CRASH = "crash"          # the worker process died (SIGKILL, OOM, ...)
TIMEOUT = "timeout"      # the cell exceeded the per-cell wall clock
ERROR = "error"          # the cell raised; possibly transient
POISONED = "poisoned"    # deterministic misconfiguration; never retried


def classify(exc: BaseException) -> Tuple[str, bool]:
    """Triage a cell failure into ``(kind, transient)``.

    Transient failures are worth retrying: a dead worker may have been
    OOM-killed by a neighbour, a flaky factory may build on the second
    try. :class:`~repro.errors.ConfigurationError` is deterministic —
    the same inputs will raise the same way — so it is poisoned and
    fails immediately instead of burning retries.
    """
    try:  # BrokenProcessPool only exists where process pools do
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - every supported platform has it
        BrokenProcessPool = ()  # type: ignore[assignment]
    if isinstance(exc, BrokenProcessPool):
        return CRASH, True
    if isinstance(exc, ConfigurationError):
        return POISONED, False
    return ERROR, True


@dataclass(frozen=True)
class CellFailure:
    """One grid cell's permanent failure record."""

    capacity: int
    label: str
    attempts: int
    kind: str
    error: str


class SweepInterrupted(ReproError):
    """A sweep was interrupted; completed cells were salvaged.

    Raised in place of a bare :class:`KeyboardInterrupt` escape so the
    completed cells survive: ``results`` holds every finished
    ``(capacity, label) → ProtocolResult`` cell, and any checkpoint was
    flushed before this was raised — re-running with ``--resume`` skips
    the salvaged cells.
    """

    def __init__(self, results: Dict[Tuple[int, str], ProtocolResult]
                 ) -> None:
        self.results = dict(results)
        super().__init__(
            f"sweep interrupted; {len(self.results)} completed cell(s) "
            "salvaged (re-run with --resume to skip them)")


class CellExecutionError(SimulationError):
    """One or more cells failed every attempt (and the serial fallback).

    Every *other* cell completed and was checkpointed before this was
    raised, so a ``--resume`` re-run retries only the failed cells.
    """

    def __init__(self, failures: Sequence[CellFailure],
                 results: Dict[Tuple[int, str], ProtocolResult]) -> None:
        self.failures = list(failures)
        self.results = dict(results)
        detail = "; ".join(
            f"(B={f.capacity}, {f.label}) {f.kind} after "
            f"{f.attempts} attempt(s): {f.error}"
            for f in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed permanently: "
            f"{detail}")


# -- checkpointing -------------------------------------------------------------


def grid_fingerprint(workload: Workload,
                     specs: Sequence[PolicySpec],
                     capacities: Sequence[int],
                     warmup: int,
                     measured: int,
                     seed: int,
                     repetitions: int) -> str:
    """A stable identity for one grid's inputs.

    Checkpoint records carry this fingerprint so one JSONL file can hold
    several grids (an ablation runs many internal sweeps) and a resume
    against different protocol parameters matches nothing instead of
    silently reusing stale cells. The workload contributes its type name
    only — its parameters are assumed fixed across a resume of the same
    command line (the protocol fields already cover ``--scale``).
    """
    payload = {
        "workload": type(workload).__name__,
        "labels": [spec.label for spec in specs],
        "capacities": [int(capacity) for capacity in capacities],
        "warmup": int(warmup),
        "measured": int(measured),
        "seed": int(seed),
        "repetitions": int(repetitions),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def serialize_result(result: ProtocolResult) -> Dict[str, object]:
    """Flatten a :class:`ProtocolResult` to a JSON-safe record."""
    return {
        "label": result.label,
        "capacity": result.capacity,
        "interval": {"mean": result.interval.mean,
                     "half_width": result.interval.half_width,
                     "count": result.interval.count},
        "runs": [{"label": run.label, "capacity": run.capacity,
                  "seed": run.seed, "hit_ratio": run.hit_ratio,
                  "hits": run.hits, "misses": run.misses,
                  "warmup_hit_ratio": run.warmup_hit_ratio,
                  "evictions": run.evictions,
                  "writebacks": run.writebacks}
                 for run in result.runs],
    }


def deserialize_result(record: Dict[str, object]) -> ProtocolResult:
    """Rebuild a :class:`ProtocolResult` bit-identically from its record.

    JSON floats serialize via ``repr`` (shortest round-trip form), so a
    resumed cell compares equal to the run that produced it.
    """
    interval = record["interval"]
    return ProtocolResult(
        label=record["label"],
        capacity=record["capacity"],
        interval=ConfidenceInterval(mean=interval["mean"],
                                    half_width=interval["half_width"],
                                    count=interval["count"]),
        runs=[RunResult(**run) for run in record["runs"]])


class SweepCheckpoint:
    """A JSONL ledger of completed grid cells, written as cells finish.

    Each line is ``{"grid": fingerprint, "capacity": B, "label": L,
    "result": {...}}``; the file is flushed after every record so a
    SIGKILLed parent loses at most the cell being written. Loading
    tolerates a truncated final line (the crash-mid-write case) by
    ignoring everything from the first unparseable record on.

    Open with ``resume=True`` to load existing cells and append;
    otherwise an existing file is truncated and the sweep starts fresh.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        self.resumed_cells = 0
        self._cells: Dict[str, Dict[Tuple[int, str], Dict[str, object]]] = {}
        if resume and os.path.exists(path):
            self._load()
        self._handle = open(path, "a" if resume else "w", encoding="utf-8")

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (int(record["capacity"]), str(record["label"]))
                    grid = str(record["grid"])
                    result = record["result"]
                except (ValueError, KeyError, TypeError):
                    break  # truncated tail from a crash mid-write
                self._cells.setdefault(grid, {})[key] = result
        self.resumed_cells = sum(len(cells)
                                 for cells in self._cells.values())

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._cells.values())

    def completed(self, fingerprint: str
                  ) -> Dict[Tuple[int, str], ProtocolResult]:
        """Every checkpointed cell of the given grid, deserialized."""
        return {key: deserialize_result(record)
                for key, record in self._cells.get(fingerprint, {}).items()}

    def record(self, fingerprint: str, result: ProtocolResult) -> None:
        """Append one completed cell and flush it to disk."""
        payload = serialize_result(result)
        key = (result.capacity, result.label)
        self._cells.setdefault(fingerprint, {})[key] = payload
        json.dump({"grid": fingerprint, "capacity": result.capacity,
                   "label": result.label, "result": payload},
                  self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()

    def flush(self) -> None:
        """Push buffered records to disk."""
        if not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the ledger; idempotent."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- ambient defaults ----------------------------------------------------------
#
# Mirrors repro.sim.parallel.default_jobs: ablation functions build their
# sweeps many layers below the CLI, so the resilience configuration can
# be activated for a dynamic extent instead of threading parameters.

_default_retry = RetryPolicy()
_default_checkpoint: Optional[SweepCheckpoint] = None


def resolve_retry(retry: Optional[RetryPolicy]) -> RetryPolicy:
    """An explicit retry policy if given, else the ambient default."""
    return retry if retry is not None else _default_retry


def resolve_checkpoint(checkpoint: Optional[SweepCheckpoint]
                       ) -> Optional[SweepCheckpoint]:
    """An explicit checkpoint if given, else the ambient one (may be None)."""
    return checkpoint if checkpoint is not None else _default_checkpoint


@contextmanager
def default_retry(retry: RetryPolicy) -> Iterator[RetryPolicy]:
    """Ambiently set the sweep retry policy for a dynamic extent."""
    global _default_retry
    previous = _default_retry
    _default_retry = retry
    try:
        yield retry
    finally:
        _default_retry = previous


@contextmanager
def default_checkpoint(checkpoint: SweepCheckpoint
                       ) -> Iterator[SweepCheckpoint]:
    """Ambiently checkpoint every sweep grid in a dynamic extent.

    Grids are distinguished inside the one file by their fingerprints,
    so an ablation that runs several internal sweeps resumes each
    independently.
    """
    global _default_checkpoint
    previous = _default_checkpoint
    _default_checkpoint = checkpoint
    try:
        yield checkpoint
    finally:
        _default_checkpoint = previous


# -- failure injection ---------------------------------------------------------

#: ``REPRO_CHAOS=kill:N`` SIGKILLs the worker, ``raise:N`` raises, and
#: ``hang:N`` sleeps past any timeout — each on the *first* attempt of
#: every cell whose ``(spec index + capacity) % N == 0``. Deterministic,
#: so a chaos run must still converge to the serial answer; used by the
#: failure-injection tests and the CI chaos-smoke job. Testing only.
CHAOS_ENV = "REPRO_CHAOS"


class ChaosError(RuntimeError):
    """The injected failure raised by ``REPRO_CHAOS=raise:N``."""


def chaos_hook(spec_index: int, capacity: int, attempt: int) -> None:
    """Inject a failure into a worker cell when ``REPRO_CHAOS`` selects it.

    Only first attempts are sabotaged, so every retry succeeds and the
    recovered grid stays comparable to a serial run.
    """
    spec = os.environ.get(CHAOS_ENV)
    if not spec or attempt > 0:
        return
    mode, _, every = spec.partition(":")
    try:
        modulus = int(every)
    except ValueError:
        return  # malformed spec: inject nothing rather than poison cells
    if modulus <= 0 or (spec_index + capacity) % modulus != 0:
        return
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "raise":
        raise ChaosError(
            f"injected failure for cell (spec={spec_index}, B={capacity})")
    elif mode == "hang":
        time.sleep(3600)
