"""Dynamic frame / history-block memory exchange (paper Section 5).

The paper closes with an open design question:

    "It is an open issue how much space we should set aside for history
    control blocks of non-resident pages. While estimates for an upper
    bound can be derived from workload properties and the specified
    Retained Information Period, a better approach would be to turn
    buffer frames into history control blocks dynamically, and vice
    versa."

:class:`AdaptiveCacheSimulator` implements that better approach: a single
memory budget ``M`` (denominated in frames) is shared between buffer
frames and HIST control blocks. A block costs ``block_cost`` frames
(default 0.01 — tens of bytes against a 4 KB frame). As the LRU-K policy
accretes history, frames are released to pay for it; when the Retained
Information Period purges blocks, the freed memory turns back into
frames. A ``max_history_fraction`` guardrail stops history from eating
the whole buffer, and shrinking evicts through the policy's own victim
selection so the displaced pages are the least valuable ones.

Benchmark A11 (``benchmarks/bench_adaptive_memory.py``) compares this
against static splits of the same budget.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.lruk import LRUKPolicy
from ..errors import ConfigurationError
from ..types import AccessOutcome, PageId, Reference
from .cache import CacheSimulator


class AdaptiveCacheSimulator(CacheSimulator):
    """Cache simulator whose frame count floats against history memory."""

    def __init__(self, policy: LRUKPolicy,
                 memory_budget: float,
                 block_cost: float = 0.01,
                 max_history_fraction: float = 0.5,
                 adjust_interval: int = 64,
                 min_frames: int = 1,
                 record_evictions: bool = False) -> None:
        if not isinstance(policy, LRUKPolicy):
            raise ConfigurationError(
                "the frame/history exchange only applies to LRU-K "
                "(other policies keep no retained information)")
        if memory_budget < min_frames + 1:
            raise ConfigurationError(
                "memory budget must cover at least min_frames + 1 frames")
        if not 0.0 < block_cost < 1.0:
            raise ConfigurationError("block_cost must lie in (0, 1) frames")
        if not 0.0 <= max_history_fraction < 1.0:
            raise ConfigurationError(
                "max_history_fraction must lie in [0, 1)")
        if adjust_interval <= 0:
            raise ConfigurationError("adjust_interval must be positive")
        if min_frames <= 0:
            raise ConfigurationError("min_frames must be positive")

        self.memory_budget = float(memory_budget)
        self.block_cost = block_cost
        self.max_history_fraction = max_history_fraction
        self.adjust_interval = adjust_interval
        self.min_frames = min_frames

        # Guardrail: bound the history footprint through the policy's own
        # block-bound machinery, then let frames float under it.
        max_blocks = int(memory_budget * max_history_fraction / block_cost)
        policy.max_history_blocks = max(1, max_blocks)

        super().__init__(policy, capacity=int(memory_budget),
                         record_evictions=record_evictions)
        self._accesses_since_adjust = 0
        self.adjustments = 0
        self.min_capacity_seen = self.capacity
        self.max_capacity_seen = self.capacity

    # -- the exchange ------------------------------------------------------------

    def history_blocks(self) -> int:
        """Current HIST-block count of the wrapped policy."""
        policy = self.policy
        assert isinstance(policy, LRUKPolicy)
        return policy.retained_blocks

    def frames_affordable(self) -> int:
        """Frames the budget can pay for at the current history footprint."""
        frames = math.floor(self.memory_budget
                            - self.block_cost * self.history_blocks())
        return max(self.min_frames, frames)

    def rebalance(self) -> None:
        """Re-split the budget between frames and history, now."""
        target = self.frames_affordable()
        if target != self.capacity:
            self.set_capacity(target)
            self.adjustments += 1
            self.min_capacity_seen = min(self.min_capacity_seen, target)
            self.max_capacity_seen = max(self.max_capacity_seen, target)

    def access(self, item: "Reference | PageId") -> AccessOutcome:
        self._accesses_since_adjust += 1
        if self._accesses_since_adjust >= self.adjust_interval:
            self._accesses_since_adjust = 0
            self.rebalance()
        return super().access(item)

    # -- accounting ----------------------------------------------------------------

    @property
    def memory_in_use(self) -> float:
        """Frames plus history memory currently charged to the budget."""
        return self.capacity + self.block_cost * self.history_blocks()

    def assert_within_budget(self, slack: Optional[float] = None) -> None:
        """Raise when the split exceeds the budget (test support).

        Between rebalances the history side may transiently overshoot by
        up to ``adjust_interval`` newly created blocks; the default slack
        covers exactly that.
        """
        allowed = self.memory_budget + (
            slack if slack is not None
            else self.block_cost * self.adjust_interval)
        if self.memory_in_use > allowed + 1e-9:
            raise ConfigurationError(
                f"memory in use {self.memory_in_use:.2f} exceeds "
                f"budget {self.memory_budget:.2f} (+slack)")
