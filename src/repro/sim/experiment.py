"""Experiment specifications: one object per paper table.

An :class:`ExperimentSpec` bundles a workload, the policy columns, the
buffer-size rows, the warm-up/measure protocol, and (optionally) the
equi-effective baseline/improved pair whose B(1)/B(2) ratio forms the last
column of the paper's tables. :func:`run_experiment` executes the spec and
returns an :class:`ExperimentResult` that renders as an ASCII table in the
paper's layout. The concrete Table 4.1/4.2/4.3 specs live in
:mod:`repro.experiments` so benchmarks, examples, and the CLI share them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SimulationError
from ..obs.dispatcher import EventDispatcher
from ..workloads.base import Workload
from . import recovery
from .equi_effective import equi_effective_buffer_size
from .runner import PolicySpec, run_paper_protocol
from .sweep import SweepCell, sweep_buffer_sizes
from .tables import Table
from .trace_cache import TraceCache


@dataclass
class ExperimentSpec:
    """A full table-generating experiment."""

    name: str
    workload: Workload
    policies: Sequence[PolicySpec]
    capacities: Sequence[int]
    warmup: int
    measured: int
    seed: int = 0
    repetitions: int = 3
    #: (baseline_label, improved_label) for the B(1)/B(2) column, or None.
    equi_effective: Optional[Tuple[str, str]] = None
    #: Cap for the B(1) search (defaults to 64x the largest table capacity).
    equi_effective_high: Optional[int] = None
    caption: str = ""

    def __post_init__(self) -> None:
        labels = {spec.label for spec in self.policies}
        if self.equi_effective is not None:
            baseline, improved = self.equi_effective
            if baseline not in labels or improved not in labels:
                raise ConfigurationError(
                    "equi-effective labels must be policy columns")

    def spec_by_label(self, label: str) -> PolicySpec:
        """Look a policy column up by its label."""
        for spec in self.policies:
            if spec.label == label:
                return spec
        raise ConfigurationError(f"no policy labelled {label!r}")


@dataclass
class ExperimentResult:
    """The sweep cells plus derived columns, renderable as a paper table."""

    spec: ExperimentSpec
    cells: List[SweepCell]
    equi_effective_ratios: Dict[int, Optional[float]] = field(
        default_factory=dict)

    def to_table(self) -> Table:
        """Render in the paper's layout: B, one column per policy, B(1)/B(2)."""
        columns = ["B"] + [spec.label for spec in self.spec.policies]
        if self.spec.equi_effective is not None:
            baseline, improved = self.spec.equi_effective
            columns.append(f"B({baseline})/B({improved})")
        table = Table(title=self.spec.name, columns=columns,
                      caption=self.spec.caption)
        for cell in self.cells:
            row: List = [cell.capacity]
            row.extend(cell.hit_ratio(spec.label)
                       for spec in self.spec.policies)
            if self.spec.equi_effective is not None:
                row.append(self.equi_effective_ratios.get(cell.capacity))
            table.add_row(*row)
        return table

    def hit_ratios(self, label: str) -> List[float]:
        """The hit-ratio column for one policy, ordered by capacity."""
        return [cell.hit_ratio(label) for cell in self.cells]

    @property
    def capacities(self) -> List[int]:
        """The buffer sizes (table rows), in order."""
        return [cell.capacity for cell in self.cells]


def run_experiment(spec: ExperimentSpec,
                   progress: Optional[Callable[[str], None]] = None,
                   observability: Optional[EventDispatcher] = None,
                   jobs: Optional[int] = None,
                   retry: Optional[recovery.RetryPolicy] = None,
                   checkpoint: Optional[recovery.SweepCheckpoint] = None
                   ) -> ExperimentResult:
    """Execute a spec: sweep all cells, then derive B(1)/B(2) per row.

    One trace cache backs the whole experiment: the sweep grid and every
    equi-effective probe replay the same materialized reference strings.
    The cache is scoped to this call — cleared on the way out, success or
    failure, so a long-lived process running many experiments does not
    pin every workload's traces forever.
    ``jobs`` (or the ambient :func:`repro.sim.parallel.default_jobs`)
    fans the sweep grid out over worker processes; ``retry`` and
    ``checkpoint`` configure fault tolerance and ``--resume`` support
    (see :mod:`repro.sim.recovery`).
    """
    trace_cache = TraceCache()
    try:
        return _run_experiment(spec, progress, observability, jobs,
                               retry, checkpoint, trace_cache)
    finally:
        trace_cache.clear()


def _run_experiment(spec: ExperimentSpec,
                    progress: Optional[Callable[[str], None]],
                    observability: Optional[EventDispatcher],
                    jobs: Optional[int],
                    retry: Optional[recovery.RetryPolicy],
                    checkpoint: Optional[recovery.SweepCheckpoint],
                    trace_cache: TraceCache) -> ExperimentResult:
    cells = sweep_buffer_sizes(
        spec.workload, spec.policies, spec.capacities,
        warmup=spec.warmup, measured=spec.measured,
        seed=spec.seed, repetitions=spec.repetitions, progress=progress,
        observability=observability, jobs=jobs, trace_cache=trace_cache,
        retry=retry, checkpoint=checkpoint)
    result = ExperimentResult(spec=spec, cells=cells)
    if spec.equi_effective is not None:
        baseline_label, improved_label = spec.equi_effective
        baseline_spec = spec.spec_by_label(baseline_label)
        high = (spec.equi_effective_high
                if spec.equi_effective_high is not None
                else 64 * max(spec.capacities))
        # Baseline hit ratios are reusable across rows: cache by capacity.
        cache: Dict[int, float] = {
            cell.capacity: cell.hit_ratio(baseline_label) for cell in cells}

        def evaluate(capacity: int) -> float:
            if capacity not in cache:
                run = run_paper_protocol(
                    spec.workload, baseline_spec, capacity,
                    spec.warmup, spec.measured,
                    seed=spec.seed, repetitions=spec.repetitions,
                    observability=observability, trace_cache=trace_cache)
                cache[capacity] = run.hit_ratio
            return cache[capacity]

        for cell in cells:
            target = cell.hit_ratio(improved_label)
            try:
                b_baseline = equi_effective_buffer_size(
                    evaluate, target, low=1, high=high)
                ratio = b_baseline / cell.capacity
            except SimulationError:
                ratio = None  # target beyond the baseline's reach
            result.equi_effective_ratios[cell.capacity] = ratio
            if progress is not None and ratio is not None:
                progress(f"B={cell.capacity:<6d} "
                         f"B({baseline_label})/B({improved_label})={ratio:.2f}")
    return result
