"""Fitting the paper's self-similar skew law to observed traces.

Section 4.2 defines skew through the self-similar CDF
``F(f) = f^theta`` over page-popularity rank fractions, with
``theta = log(alpha)/log(beta)`` ("a fraction alpha of the references
accesses a fraction beta of the pages"). Given any reference trace we can
*fit* theta by regressing ``log(mass of top f)`` on ``log f`` across rank
fractions, and then express the result as an (alpha, beta) pair for any
chosen beta.

This makes two of the paper's prose claims checkable:

- the Table 4.2 workload should fit theta = log(0.8)/log(0.2) exactly;
- "The two pool workload of Section 4.1 roughly corresponds to
  alpha = 0.5 and beta = 0.01" — i.e. the mass of the top 1% of pages is
  about one half (the fit module's per-point mass confirms it, and the
  test suite asserts it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .trace_stats import SkewProfile, skew_profile

#: Default rank fractions probed by the fit (log-spaced).
DEFAULT_FRACTIONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7)


@dataclass(frozen=True)
class SelfSimilarFit:
    """A fitted self-similar skew law."""

    theta: float
    #: Root-mean-square residual of log(mass) around the fit.
    residual: float
    points: int

    def alpha_for_beta(self, beta: float) -> float:
        """The alpha such that (alpha, beta) encodes the fitted theta.

        From theta = log(alpha)/log(beta): alpha = beta ** theta.
        """
        if not 0.0 < beta < 1.0:
            raise ConfigurationError("beta must lie strictly in (0, 1)")
        return beta ** self.theta

    def mass_of_top_fraction(self, fraction: float) -> float:
        """The law's prediction F(f) = f^theta."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must lie in (0, 1]")
        return fraction ** self.theta

    @property
    def is_uniform(self) -> bool:
        """theta ~ 1 means no skew at all."""
        return abs(self.theta - 1.0) < 0.05


def fit_self_similar(profile_or_trace,
                     fractions: Sequence[float] = DEFAULT_FRACTIONS
                     ) -> SelfSimilarFit:
    """Least-squares fit of theta over log-log (fraction, mass) points.

    Accepts a :class:`~repro.analysis.trace_stats.SkewProfile` or any
    reference/page iterable. The regression is through the origin in
    log-log space (F(1) = 1 is exact by construction), which is the
    maximum-likelihood line for the self-similar family.
    """
    if isinstance(profile_or_trace, SkewProfile):
        profile = profile_or_trace
    else:
        profile = skew_profile(profile_or_trace)
    if not fractions:
        raise ConfigurationError("need at least one probe fraction")

    xs = []
    ys = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError("probe fractions must lie in (0, 1)")
        mass = profile.mass_of_top_fraction(fraction)
        if mass <= 0.0:
            continue  # empty head at this granularity; skip the point
        xs.append(math.log(fraction))
        ys.append(math.log(min(1.0, mass)))
    if not xs:
        raise ConfigurationError("no usable probe points for the fit")

    # Through-origin least squares: theta = sum(x*y) / sum(x*x).
    theta = sum(x * y for x, y in zip(xs, ys)) / sum(x * x for x in xs)
    theta = max(1e-6, theta)
    residual = math.sqrt(sum((y - theta * x) ** 2
                             for x, y in zip(xs, ys)) / len(xs))
    return SelfSimilarFit(theta=theta, residual=residual, points=len(xs))


def describe_skew(trace: Iterable, beta: float = 0.2) -> str:
    """One-line human description: 'alpha/beta' rule plus the fit quality."""
    fit = fit_self_similar(trace)
    alpha = fit.alpha_for_beta(beta)
    return (f"{alpha:.0%} of references hit {beta:.0%} of pages "
            f"(theta={fit.theta:.3f}, rms residual {fit.residual:.3f})")
