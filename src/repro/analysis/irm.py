"""Independent Reference Model machinery (paper Sections 2 and 3).

Under the IRM the reference string is i.i.d. with stationary distribution
``{beta_p}``; the forward distance to the next occurrence of page p is
geometric (eq. 3.1) with mean I_p = 1/beta_p, and the expected cost of a
buffer state S is ``1 - sum_{i in S} beta_i`` (Definition 3.7). The A0
optimum simply keeps the B most probable pages (Definition 3.1 /
Theorem 3.2), giving a closed-form optimal hit ratio against which the
simulated policies are checked.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import PageId, Reference


def geometric_interarrival_pmf(beta: float, k: int) -> float:
    """Eq. (3.1): Pr(d_t(p) = k) = beta (1-beta)^(k-1)."""
    if not 0.0 < beta <= 1.0:
        raise ConfigurationError("beta must lie in (0, 1]")
    if k < 1:
        raise ConfigurationError("forward distances start at 1")
    return beta * (1.0 - beta) ** (k - 1)


def interarrival_mean(beta: float) -> float:
    """I_p = 1/beta_p, the expected reference interarrival time."""
    if not 0.0 < beta <= 1.0:
        raise ConfigurationError("beta must lie in (0, 1]")
    return 1.0 / beta


def expected_cost(probabilities: Mapping[PageId, float],
                  resident: Iterable[PageId]) -> float:
    """Definition 3.7 / eq. (3.8): expected I/Os on the next reference.

    ``C(A, S_t, omega) = 1 - sum_{i in S_t} beta_i`` — the probability the
    next referenced page is not in buffer.
    """
    resident_set = set(resident)
    unknown = resident_set - probabilities.keys()
    if unknown:
        raise ConfigurationError(
            f"resident pages missing from the probability vector: "
            f"{sorted(unknown)[:5]}")
    cost = 1.0 - sum(probabilities[page] for page in resident_set)
    # Guard floating noise: cost is a probability.
    return min(1.0, max(0.0, cost))


def a0_resident_set(probabilities: Mapping[PageId, float],
                    capacity: int) -> List[PageId]:
    """The pages A0 keeps resident: the ``capacity`` most probable."""
    if capacity < 0:
        raise ConfigurationError("capacity cannot be negative")
    ranked = sorted(probabilities, key=lambda p: (-probabilities[p], p))
    return ranked[:capacity]


def a0_hit_ratio(probabilities: Mapping[PageId, float],
                 capacity: int) -> float:
    """Closed-form steady-state hit ratio of A0 under the IRM.

    The expected hit probability of the stationary A0 buffer state: the
    total mass of the ``capacity`` most probable pages. (The simulated A0
    tracks this closely but not exactly, because the most recently faulted
    page transiently occupies a slot — the Theorem 3.8 "m-1 of m buffers"
    effect.)
    """
    return sum(probabilities[page]
               for page in a0_resident_set(probabilities, capacity))


def sample_irm_string(probabilities: Mapping[PageId, float], count: int,
                      seed: int = 0) -> Iterator[Reference]:
    """Draw an i.i.d. reference string from an explicit IRM vector."""
    if count < 0:
        raise ConfigurationError("count cannot be negative")
    import bisect
    pages = sorted(probabilities)
    if not pages:
        raise ConfigurationError("probability vector must be non-empty")
    cdf: List[float] = []
    acc = 0.0
    total = sum(probabilities[page] for page in pages)
    if total <= 0:
        raise ConfigurationError("probabilities must have positive mass")
    for page in pages:
        acc += probabilities[page] / total
        cdf.append(acc)
    cdf[-1] = 1.0
    rng = SeededRng(seed)
    for _ in range(count):
        yield Reference(page=pages[bisect.bisect_left(cdf, rng.random())])


def uniform_probabilities(n: int) -> Dict[PageId, float]:
    """The no-information vector: every page equally likely."""
    if n <= 0:
        raise ConfigurationError("need at least one page")
    return {page: 1.0 / n for page in range(n)}


def normalized(probabilities: Mapping[PageId, float]) -> Dict[PageId, float]:
    """A copy rescaled to sum to exactly 1."""
    total = sum(probabilities.values())
    if total <= 0:
        raise ConfigurationError("probabilities must have positive mass")
    return {page: mass / total for page, mass in probabilities.items()}
