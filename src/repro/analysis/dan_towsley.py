"""Analytic LRU and FIFO hit-ratio approximations under the IRM.

The paper cites Dan & Towsley's "An Approximate Analysis of the LRU and
FIFO Buffer Replacement Schemes" [DANTOWS]; this module implements the
characteristic-time style of that analysis family so the simulator can be
cross-validated without running it (bench A7):

- **LRU**: a page is resident iff it was referenced within the cache's
  characteristic time ``tau``. Solve

      sum_i (1 - (1 - beta_i)^tau) = B        (occupancy fixed point)

  for tau, then  ``hit = sum_i beta_i (1 - (1 - beta_i)^tau)``.

- **FIFO** (= RANDOM in steady state under the IRM): residency probability
  ``beta_i tau / (1 + beta_i tau)`` with the analogous occupancy
  constraint.

Both occupancy functions are strictly increasing in ``tau``, so the fixed
point is found by bisection to machine-level tolerance. Accuracy is within
a percent or two of simulation for the workloads in this repository —
exactly the regime the approximation literature reports.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Tuple

from ..errors import ConfigurationError
from ..types import PageId


def _solve_characteristic_time(occupancy: Callable[[float], float],
                               capacity: int,
                               n_pages: int) -> float:
    """Bisection for occupancy(tau) = capacity; occupancy is increasing."""
    low, high = 0.0, 1.0
    while occupancy(high) < capacity and high < 1e15:
        high *= 2.0
    for _ in range(200):
        middle = 0.5 * (low + high)
        if occupancy(middle) < capacity:
            low = middle
        else:
            high = middle
        if high - low <= 1e-9 * max(1.0, high):
            break
    return 0.5 * (low + high)


def _validate(probabilities: Mapping[PageId, float], capacity: int) -> None:
    if capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    if not probabilities:
        raise ConfigurationError("probability vector must be non-empty")
    if any(b < 0 for b in probabilities.values()):
        raise ConfigurationError("probabilities cannot be negative")


def lru_hit_ratio_approximation(probabilities: Mapping[PageId, float],
                                capacity: int) -> float:
    """Characteristic-time approximation of LRU's steady-state hit ratio."""
    _validate(probabilities, capacity)
    betas = [b for b in probabilities.values() if b > 0]
    if capacity >= len(betas):
        return 1.0  # everything fits; only compulsory misses, which the
        #             steady-state approximation ignores

    def occupancy(tau: float) -> float:
        return sum(1.0 - (1.0 - b) ** tau if b < 1.0 else 1.0
                   for b in betas)

    tau = _solve_characteristic_time(occupancy, capacity, len(betas))
    return sum(b * (1.0 - (1.0 - b) ** tau) if b < 1.0 else b
               for b in betas)


def fifo_hit_ratio_approximation(probabilities: Mapping[PageId, float],
                                 capacity: int) -> float:
    """Characteristic-time approximation of FIFO (= RANDOM) hit ratio."""
    _validate(probabilities, capacity)
    betas = [b for b in probabilities.values() if b > 0]
    if capacity >= len(betas):
        return 1.0

    def occupancy(tau: float) -> float:
        return sum((b * tau) / (1.0 + b * tau) for b in betas)

    tau = _solve_characteristic_time(occupancy, capacity, len(betas))
    return sum(b * (b * tau) / (1.0 + b * tau) for b in betas)


def lru_fifo_gap(probabilities: Mapping[PageId, float],
                 capacity: int) -> Tuple[float, float, float]:
    """(LRU, FIFO, LRU-FIFO) analytic hit ratios — LRU >= FIFO under IRM."""
    lru = lru_hit_ratio_approximation(probabilities, capacity)
    fifo = fifo_hit_ratio_approximation(probabilities, capacity)
    return lru, fifo, lru - fifo
