"""Empirical verification of Theorem 3.8.

The paper's optimality statement: "at any time t, the LRU-K algorithm
will have in buffer: (1) the most recent page p to be brought in from
disk, and (2) aside from p, the m-1 pages with minimum values for
b_t(i,K)" — and therefore, by Lemma 3.6, the m-1 pages with maximum
a-posteriori reference probability E_t(P(i)), which minimizes the
expected cost (eq. 3.9)

    C(A, S_t, omega) = 1 - sum_{i in S_t} E_t(P(i)).

This module turns that proof into a runtime check: given a live
:class:`~repro.core.LRUKPolicy` (driven with CRP=0, matching the
Section 3 assumptions) and the workload's true probability vector, it
recomputes every page's backward K-distance, the E_t estimates, and both
costs, and reports whether the resident set is the optimal one. The test
suite runs it along simulated reference strings; a failure would mean
the implementation's victim choices are not the ones the theorem
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.history import INFINITE_DISTANCE
from ..core.lruk import LRUKPolicy
from ..errors import ConfigurationError
from ..types import PageId
from .bayes import expected_reference_probability


@dataclass
class Theorem38Report:
    """Outcome of one Theorem 3.8 check at a fixed time t."""

    time: int
    capacity: int
    holds: bool
    lruk_cost: float
    optimal_cost: float
    #: Pages the theorem says should be resident but are not (beyond the
    #: allowed most-recently-admitted slot).
    missing: List[PageId] = field(default_factory=list)
    #: Resident pages with strictly larger b_t than some absent page.
    surplus: List[PageId] = field(default_factory=list)

    @property
    def cost_gap(self) -> float:
        """How far the policy's expected cost is from the optimum."""
        return self.lruk_cost - self.optimal_cost


def _estimate(beta_values: List[float], distance: float, k: int,
              uniform_estimate: float) -> float:
    """E_t(P(i)) for a backward distance; infinity -> the no-info prior."""
    if distance == INFINITE_DISTANCE:
        # A page never seen K times carries (at most) the a-priori mean;
        # for cost ordering purposes the limit k->inf of eq. 3.7 is the
        # right stand-in and is below every finite-distance estimate.
        return min(uniform_estimate,
                   expected_reference_probability(
                       beta_values, k=10 ** 6, K=k))
    return expected_reference_probability(
        beta_values, k=max(k, int(distance)), K=k)


def check_theorem_3_8(policy: LRUKPolicy,
                      probabilities: Mapping[PageId, float],
                      now: int,
                      last_admitted: Optional[PageId] = None
                      ) -> Theorem38Report:
    """Check the Theorem 3.8 buffer-content characterization at time t.

    ``last_admitted`` is the page most recently brought in from disk,
    which the theorem exempts from the minimum-distance requirement.
    Requires the policy to run with CRP=0 (the Section 3 setting).
    """
    if policy.crp != 0:
        raise ConfigurationError(
            "Theorem 3.8 assumes a zero Correlated Reference Period")
    beta_values = sorted(probabilities.values())
    total = sum(beta_values)
    if total <= 0:
        raise ConfigurationError("probabilities must have positive mass")
    beta_values = [b / total for b in beta_values]
    n = len(beta_values)
    uniform_estimate = 1.0 / n

    resident = set(policy.resident_pages)
    capacity = len(resident)
    distances: Dict[PageId, float] = {}
    for page in probabilities:
        distances[page] = policy.backward_k_distance(page, now)

    # -- structural check: resident \ {last} == argmin-(m-1) distances -----
    # The most recently admitted page is exempt on BOTH sides: it sits in
    # a buffer slot by fiat (it was just fetched) and therefore also does
    # not compete in the distance ranking.
    comparison = resident - ({last_admitted} if last_admitted else set())
    required = capacity - (1 if last_admitted in resident else 0)
    ranked: List[Tuple[float, PageId]] = sorted(
        (distance, page) for page, distance in distances.items()
        if page != last_admitted)
    threshold = ranked[required - 1][0] if required > 0 else -1.0

    missing = [page for distance, page in ranked[:required]
               if page not in comparison and distance < threshold]
    surplus = [page for page in comparison
               if distances[page] > threshold]
    # Ties at the threshold distance (notably b = infinity) make several
    # optimal sets; any choice among tied pages satisfies the theorem.
    holds = not missing and not surplus

    # -- cost check (eq. 3.9) ------------------------------------------------
    estimates = {page: _estimate(beta_values, distance, policy.k,
                                 uniform_estimate)
                 for page, distance in distances.items()}
    lruk_cost = 1.0 - sum(estimates[page] for page in resident)
    best_pages = sorted(estimates, key=lambda p: -estimates[p])[:capacity]
    optimal_cost = 1.0 - sum(estimates[page] for page in best_pages)

    return Theorem38Report(
        time=now, capacity=capacity, holds=holds,
        lruk_cost=min(1.0, max(0.0, lruk_cost)),
        optimal_cost=min(1.0, max(0.0, optimal_cost)),
        missing=missing, surplus=surplus)
