"""Trace locality profiling — the Section 4.3 trace characterization.

The paper characterizes its OLTP trace with three kinds of statistics,
all recomputed here for any reference string:

- **Skew profile**: "40% of the references access only 3% of the database
  pages that were accessed in the trace ... 90% of the references access
  65% of the pages" — the cumulative mass of the most-referenced x% of
  touched pages (:func:`skew_profile`).
- **Five Minute Rule census**: "only about 1400 pages satisfy the
  criterion of the Five Minute Rule to be kept in memory (i.e., are
  re-referenced within 100 seconds)" — pages whose *mean* reference
  interarrival time estimates I_p at or under the window
  (:func:`five_minute_census`). The mean is the natural I_p estimator
  (the rule is a statement about interarrival time, eq. 3.1's mean
  1/beta_p); EXPERIMENTS.md reports this census for the synthetic trace.
- **Footprint**: touched pages, reference count, references per page.

All functions accept iterables of :class:`~repro.types.Reference` or bare
page ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import PageId, Reference, as_reference


def _page_sequence(references: Iterable) -> List[PageId]:
    return [as_reference(item).page for item in references]


@dataclass
class SkewProfile:
    """Cumulative reference mass by most-referenced page fraction."""

    total_references: int
    touched_pages: int
    #: Sorted descending per-page reference counts.
    counts: List[int] = field(repr=False, default_factory=list)

    def mass_of_top_fraction(self, fraction: float) -> float:
        """Fraction of references hitting the top ``fraction`` of pages."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must lie in [0, 1]")
        if self.touched_pages == 0:
            return 0.0
        top = max(1, int(round(self.touched_pages * fraction)))
        return sum(self.counts[:top]) / self.total_references

    def fraction_for_mass(self, mass: float) -> float:
        """Smallest page fraction carrying at least ``mass`` of references."""
        if not 0.0 <= mass <= 1.0:
            raise ConfigurationError("mass must lie in [0, 1]")
        target = mass * self.total_references
        acc = 0
        for index, count in enumerate(self.counts):
            acc += count
            if acc >= target:
                return (index + 1) / self.touched_pages
        return 1.0

    def paper_style_rows(self) -> List[Tuple[float, float]]:
        """(page fraction, reference mass) rows like the paper's prose."""
        return [(fraction, self.mass_of_top_fraction(fraction))
                for fraction in (0.01, 0.03, 0.10, 0.25, 0.65, 1.00)]


def skew_profile(references: Iterable) -> SkewProfile:
    """Build the skew profile of a reference string."""
    counts: Dict[PageId, int] = {}
    total = 0
    for page in _page_sequence(references):
        counts[page] = counts.get(page, 0) + 1
        total += 1
    if total == 0:
        raise ConfigurationError("cannot profile an empty trace")
    ranked = sorted(counts.values(), reverse=True)
    return SkewProfile(total_references=total, touched_pages=len(counts),
                       counts=ranked)


@dataclass
class FiveMinuteCensus:
    """Result of the Five Minute Rule census over a trace."""

    window_references: int
    qualifying_pages: int
    re_referenced_pages: int
    touched_pages: int

    @property
    def qualifying_fraction(self) -> float:
        """Qualifying pages over touched pages."""
        if self.touched_pages == 0:
            return 0.0
        return self.qualifying_pages / self.touched_pages


def five_minute_census(references: Iterable,
                       window_references: int) -> FiveMinuteCensus:
    """Count pages whose mean interarrival is within the window.

    A page needs at least one re-reference to have an interarrival sample;
    single-reference pages never qualify (their I_p estimate is unbounded).
    """
    if window_references <= 0:
        raise ConfigurationError("window must be positive")
    first_seen: Dict[PageId, int] = {}
    last_seen: Dict[PageId, int] = {}
    gap_count: Dict[PageId, int] = {}
    for t, page in enumerate(_page_sequence(references)):
        if page in last_seen:
            gap_count[page] = gap_count.get(page, 0) + 1
        else:
            first_seen[page] = t
        last_seen[page] = t
    qualifying = 0
    for page, gaps in gap_count.items():
        span = last_seen[page] - first_seen[page]
        mean_gap = span / gaps
        if mean_gap <= window_references:
            qualifying += 1
    return FiveMinuteCensus(window_references=window_references,
                            qualifying_pages=qualifying,
                            re_referenced_pages=len(gap_count),
                            touched_pages=len(last_seen))


@dataclass
class TraceProfile:
    """Combined trace characterization (what EXPERIMENTS.md reports)."""

    references: int
    touched_pages: int
    skew: SkewProfile
    census: FiveMinuteCensus

    def summary_lines(self) -> List[str]:
        """Human-readable lines in the paper's phrasing."""
        lines = [
            f"{self.references} references over "
            f"{self.touched_pages} touched pages",
        ]
        for fraction in (0.03, 0.65):
            mass = self.skew.mass_of_top_fraction(fraction)
            lines.append(
                f"{mass * 100:.0f}% of the references access "
                f"{fraction * 100:.0f}% of the touched pages")
        lines.append(
            f"{self.census.qualifying_pages} pages satisfy the Five Minute "
            f"Rule criterion (mean re-reference interval <= "
            f"{self.census.window_references} references)")
        return lines


def profile_trace(references: Sequence,
                  five_minute_window: int) -> TraceProfile:
    """One-pass-friendly full profile (materializes the page sequence once)."""
    pages = _page_sequence(references)
    skew = skew_profile(pages)
    census = five_minute_census(pages, five_minute_window)
    return TraceProfile(references=skew.total_references,
                        touched_pages=skew.touched_pages,
                        skew=skew, census=census)
