"""Section 3.1: Bayesian estimation of page reference probabilities.

The paper's statistical core: an unknown permutation ``x`` maps pages onto
a known reference-probability vector ``beta``; observing that a page's
K-th most recent reference lies ``k`` steps back updates our belief about
which ``beta`` component the page carries.

- Lemma 3.4 (eq. 3.6):

      Pr(x(i)=v | b_t(i,K)=k)
          = beta_v^K (1-beta_v)^(k-K+1) / sum_j beta_j^K (1-beta_j)^(k-K+1)

  (Lemma 3.3 is the K=2 case.)

- Lemma 3.5 (eq. 3.7): the a-posteriori estimate

      E_t(P(i)) = sum_j beta_j^(K+1) (1-beta_j)^(k-K+1)
                  / sum_j beta_j^K (1-beta_j)^(k-K+1)

- Lemma 3.6: E_t(P(i)) is strictly decreasing in k whenever beta has at
  least two distinct values — the fact that makes "evict the maximum
  backward K-distance" the optimal decision rule.

Exponentials underflow for large k, so all computations run in log space.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..errors import ConfigurationError


def _validate_beta(beta: Sequence[float]) -> None:
    if not beta:
        raise ConfigurationError("beta vector must be non-empty")
    if any(not 0.0 < b < 1.0 for b in beta):
        raise ConfigurationError(
            "beta components must lie strictly in (0, 1) for the "
            "Bayesian formulas (a page with beta=1 is always referenced)")
    total = sum(beta)
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise ConfigurationError(
            f"beta must sum to 1 (got {total:.6f}); normalize first")


def _log_weights(beta: Sequence[float], k: int, K: int,
                 extra_beta_power: int) -> List[float]:
    """log of beta_j^(K+extra) (1-beta_j)^(k-K+1) per component."""
    exponent = k - K + 1
    return [(K + extra_beta_power) * math.log(b)
            + exponent * math.log1p(-b) for b in beta]


def _log_sum_exp(values: Sequence[float]) -> float:
    peak = max(values)
    return peak + math.log(sum(math.exp(v - peak) for v in values))


def backward_distance_posterior(beta: Sequence[float], k: int,
                                K: int = 2) -> List[float]:
    """Eq. (3.6): posterior that page i carries beta_v, given b_t(i,K)=k.

    Returns a probability vector aligned with ``beta``.
    """
    _validate_beta(beta)
    if K <= 0:
        raise ConfigurationError("K must be positive")
    if k < K:
        raise ConfigurationError(
            f"b_t(i,K)={k} is impossible: K references need distance >= K")
    logs = _log_weights(beta, k, K, extra_beta_power=0)
    normalizer = _log_sum_exp(logs)
    return [math.exp(v - normalizer) for v in logs]


def expected_reference_probability(beta: Sequence[float], k: int,
                                   K: int = 2) -> float:
    """Eq. (3.7): E_t(P(i)) given b_t(i,K) = k."""
    _validate_beta(beta)
    if K <= 0:
        raise ConfigurationError("K must be positive")
    if k < K:
        raise ConfigurationError(
            f"b_t(i,K)={k} is impossible: K references need distance >= K")
    numerator = _log_sum_exp(_log_weights(beta, k, K, extra_beta_power=1))
    denominator = _log_sum_exp(_log_weights(beta, k, K, extra_beta_power=0))
    return math.exp(numerator - denominator)


def is_monotone_in_distance(beta: Sequence[float], distances: Sequence[int],
                            K: int = 2) -> bool:
    """Check Lemma 3.6 numerically over a set of backward distances.

    True when E_t(P(i)) is non-increasing along the sorted distances
    (strictly decreasing whenever beta has two distinct values; equality
    is tolerated within floating slack for the degenerate uniform vector).
    """
    estimates = [expected_reference_probability(beta, k, K)
                 for k in sorted(distances)]
    slack = 1e-12
    return all(later <= earlier + slack
               for earlier, later in zip(estimates, estimates[1:]))


def posterior_summary(beta: Sequence[float], k: int,
                      K: int = 2) -> Dict[str, float]:
    """Convenience bundle: posterior mode component and E_t(P(i))."""
    posterior = backward_distance_posterior(beta, k, K)
    mode_index = max(range(len(posterior)), key=posterior.__getitem__)
    return {
        "expected_probability": expected_reference_probability(beta, k, K),
        "mode_component": float(mode_index),
        "mode_mass": posterior[mode_index],
    }
