"""Mathematical analysis: the paper's Section 3 plus analytic cross-checks.

- :mod:`~repro.analysis.bayes` — Lemmas 3.3-3.6: Bayesian posteriors over
  the permutation mapping, the a-posteriori estimate E_t(P(i)), and its
  monotonicity in the backward K-distance.
- :mod:`~repro.analysis.irm` — Independent Reference Model machinery:
  geometric interarrival distribution (eq. 3.1), expected cost
  (Definition 3.7), and the A0 optimum in closed form.
- :mod:`~repro.analysis.dan_towsley` — characteristic-time approximations
  of LRU and FIFO hit ratios under the IRM, after the approximate-analysis
  lineage the paper cites as [DANTOWS]; used to cross-validate the
  simulator (bench A7).
- :mod:`~repro.analysis.trace_stats` — trace locality profiling: skew
  curves, footprint, interarrival statistics, and the Five Minute Rule
  census the paper applies to its OLTP trace in Section 4.3.
"""

from .bayes import (
    backward_distance_posterior,
    expected_reference_probability,
    is_monotone_in_distance,
)
from .irm import (
    a0_hit_ratio,
    expected_cost,
    geometric_interarrival_pmf,
    interarrival_mean,
    sample_irm_string,
)
from .dan_towsley import fifo_hit_ratio_approximation, lru_hit_ratio_approximation
from .optimality import Theorem38Report, check_theorem_3_8
from .skew_fit import SelfSimilarFit, describe_skew, fit_self_similar
from .trace_stats import (
    FiveMinuteCensus,
    SkewProfile,
    TraceProfile,
    five_minute_census,
    profile_trace,
    skew_profile,
)

__all__ = [
    "backward_distance_posterior",
    "expected_reference_probability",
    "is_monotone_in_distance",
    "a0_hit_ratio",
    "expected_cost",
    "geometric_interarrival_pmf",
    "interarrival_mean",
    "sample_irm_string",
    "fifo_hit_ratio_approximation",
    "lru_hit_ratio_approximation",
    "Theorem38Report",
    "check_theorem_3_8",
    "SelfSimilarFit",
    "describe_skew",
    "fit_self_similar",
    "FiveMinuteCensus",
    "SkewProfile",
    "TraceProfile",
    "five_minute_census",
    "profile_trace",
    "skew_profile",
]
