"""Sessions: the per-caller handle onto the sharded buffer service.

A :class:`Session` carries the tenant identity (for quota and fairness
accounting) and a session id (threaded into references as the
``process_id``, the paper's Section 2.1.1 metadata) so the manager can
attribute every request. Sessions are cheap, thread-confined objects:
one thread drives one session, many sessions drive one manager
concurrently. The session-local :class:`SessionStats` therefore needs no
lock, and summing per-session counts must reproduce the manager's
aggregate totals exactly (property-tested under contention in
``tests/service/test_concurrency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional
from contextlib import contextmanager

from ..buffer.frame import Frame
from ..types import AccessKind, PageId
from .quotas import TenantId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .sharded import ShardedBufferManager


@dataclass
class SessionStats:
    """Thread-confined request counters for one session."""

    requests: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of this session's requests served from the buffer."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class Session:
    """One caller's fetch/unpin surface over the sharded manager.

    Obtain via :meth:`ShardedBufferManager.session`. Use from exactly
    one thread; the manager does all cross-thread synchronization.
    """

    def __init__(self, manager: "ShardedBufferManager", tenant: TenantId,
                 session_id: int) -> None:
        self._manager = manager
        self.tenant = tenant
        self.session_id = session_id
        self.stats = SessionStats()
        self._closed = False

    # -- the request protocol ------------------------------------------------

    def fetch(self, page_id: PageId,
              kind: AccessKind = AccessKind.READ,
              pin: bool = True) -> Frame:
        """Request a page (pinned unless ``pin=False``); the frame."""
        frame, hit = self._manager.fetch(page_id, self.tenant,
                                         session_id=self.session_id,
                                         kind=kind, pin=pin)
        self.stats.requests += 1
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return frame

    def unpin(self, page_id: PageId, dirty: bool = False) -> None:
        """Release one pin taken by :meth:`fetch`."""
        self._manager.unpin(page_id, dirty)

    @contextmanager
    def pinned(self, page_id: PageId,
               kind: AccessKind = AccessKind.READ) -> Iterator[Frame]:
        """Exception-safe fetch/use/unpin, the service-side
        :class:`~repro.buffer.pool.PinnedPage`."""
        frame = self.fetch(page_id, kind=kind, pin=True)
        try:
            yield frame
        finally:
            self.unpin(page_id)

    def access(self, page_id: PageId,
               kind: AccessKind = AccessKind.READ) -> bool:
        """One complete request (fetch + immediate unpin); whether it hit.

        The load generator's operation: the pin is held only for the
        duration of the fetch, modelling a reference rather than a
        long-held working page.
        """
        before = self.stats.hits
        self.fetch(page_id, kind=kind, pin=True)
        self.unpin(page_id)
        return self.stats.hits > before

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Mark the session finished (idempotent); updates the gauge."""
        if not self._closed:
            self._closed = True
            self._manager._session_closed()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(tenant={self.tenant!r}, id={self.session_id}, "
                f"requests={self.stats.requests})")
