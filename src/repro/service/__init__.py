"""``repro.service`` — the concurrent, multi-tenant buffer service.

The offline stack simulates one caller; this package *serves* the
buffer manager to many. It is the "heavy traffic" layer of the
reproduction: a sharded :class:`ShardedBufferManager` (hash page id →
shard, each shard a private :class:`~repro.buffer.BufferPool` + policy
behind one lock), tenant-scoped :class:`Session` handles, per-tenant
admission quotas with fairness accounting (:class:`TenantLedger`), a
threaded load generator (:func:`run_load`), and a serial-equivalence
harness (:func:`served_equivalence`) proving the served path changes no
replacement decision. See ``docs/service.md``.
"""

from .equivalence import (
    EquivalenceReport,
    SideTrace,
    replay_offline,
    replay_served,
    served_equivalence,
)
from .loadgen import LoadReport, SessionResult, run_load
from .quotas import TenantAccount, TenantLedger
from .session import Session, SessionStats
from .sharded import (
    AutoAllocatingDisk,
    BufferShard,
    ShardedBufferManager,
)

__all__ = [
    "AutoAllocatingDisk",
    "BufferShard",
    "EquivalenceReport",
    "LoadReport",
    "Session",
    "SessionResult",
    "SessionStats",
    "ShardedBufferManager",
    "SideTrace",
    "TenantAccount",
    "TenantLedger",
    "replay_offline",
    "replay_served",
    "run_load",
    "served_equivalence",
]
