"""Threaded load generator: mixed tenant workloads at high concurrency.

The paper's Section 5 argument for LRU-K is multi-user OLTP traffic;
this module is the harness that produces it. Each *session* is one
thread replaying a pre-materialized page-id stream through
:meth:`~repro.service.session.Session.access` (fetch + unpin per
reference); sessions are assigned to tenants round-robin, tenants map to
workload generators, and every session gets its own seed so no two
threads replay the same stream. Page streams are generated *before* the
threads start, so the measured window contains only service time — lock
waits included, which is the point: the latency histogram's p99/p999 is
the contention signal offline hit-ratio sweeps cannot see.

The result object aggregates three planes: per-session counters
(thread-confined, summed), the manager's per-tenant fairness ledger, and
the latency percentiles read back from the ``service.*`` metrics
registry — the same instruments ``/metrics`` exposes live, so the
printed report and a mid-run scrape agree.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from ..workloads.base import Workload
from .quotas import TenantAccount, TenantId
from .session import SessionStats
from .sharded import ShardedBufferManager

#: Latency quantiles the report prints (label, q).
LATENCY_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


@dataclass
class SessionResult:
    """One session thread's outcome."""

    session_id: int
    tenant: TenantId
    stats: SessionStats
    elapsed: float


@dataclass
class LoadReport:
    """Everything one load-generation run measured."""

    sessions: List[SessionResult]
    per_tenant: Dict[TenantId, TenantAccount]
    latency_ms: Dict[str, Dict[str, float]]
    elapsed: float
    shards: int
    capacity: int

    @property
    def total_requests(self) -> int:
        """Sum of per-session request counts."""
        return sum(result.stats.requests for result in self.sessions)

    @property
    def total_hits(self) -> int:
        """Sum of per-session hit counts."""
        return sum(result.stats.hits for result in self.sessions)

    @property
    def hit_ratio(self) -> float:
        """Aggregate hit ratio across every session."""
        requests = self.total_requests
        return self.total_hits / requests if requests else 0.0

    @property
    def throughput(self) -> float:
        """Requests per wall-clock second across all sessions."""
        return self.total_requests / self.elapsed if self.elapsed else 0.0

    def render(self) -> str:
        """The human-readable serve-bench report."""
        lines: List[str] = []
        lines.append(
            f"serve-bench: {len(self.sessions)} session(s), "
            f"{self.shards} shard(s), capacity {self.capacity}")
        lines.append(
            f"  aggregate  requests {self.total_requests:>10,}  "
            f"hit ratio {self.hit_ratio:.4f}  "
            f"throughput {self.throughput:,.0f} req/s  "
            f"elapsed {self.elapsed:.2f}s")
        overall = self.latency_ms.get("", {})
        if overall:
            lines.append("  latency ms " + "  ".join(
                f"{label} {overall[label]:.3f}"
                for label, _ in LATENCY_QUANTILES if label in overall))
        for tenant in sorted(self.per_tenant):
            account = self.per_tenant[tenant]
            quantiles = self.latency_ms.get(tenant, {})
            latency = "  ".join(
                f"{label} {quantiles[label]:.3f}"
                for label, _ in LATENCY_QUANTILES if label in quantiles)
            quota = (f"  quota {account.quota}"
                     if account.quota is not None else "")
            lines.append(
                f"  tenant {tenant:<10} requests {account.requests:>9,}  "
                f"hit ratio {account.hit_ratio:.4f}  "
                f"resident {account.resident:>5}  "
                f"quota-evictions {account.quota_evictions}{quota}")
            if latency:
                lines.append(f"    latency ms {latency}")
        return "\n".join(lines)


def _materialize(workload: Workload, count: int,
                 seed: int) -> Sequence[int]:
    """A session's page-id stream (compact when the workload allows)."""
    pages = workload.page_ids(count, seed=seed)
    if pages is not None:
        return pages
    return [ref.page for ref in workload.references(count, seed=seed)]


def run_load(manager: ShardedBufferManager,
             tenants: Mapping[TenantId, Workload],
             sessions: int = 8,
             references: int = 10_000,
             seed: int = 0) -> LoadReport:
    """Replay mixed tenant workloads through concurrent sessions.

    ``sessions`` threads are assigned to the (sorted) tenants
    round-robin; session ``i`` replays ``references`` page ids drawn
    from its tenant's workload with seed ``seed + i``. Raises the first
    worker exception after every thread has been joined, so a failing
    run never leaks threads.
    """
    if sessions <= 0:
        raise ConfigurationError("session count must be positive")
    if references <= 0:
        raise ConfigurationError("references per session must be positive")
    if not tenants:
        raise ConfigurationError("load generation needs at least one tenant")
    tenant_order = sorted(tenants)
    plans = []
    for index in range(sessions):
        tenant = tenant_order[index % len(tenant_order)]
        stream = _materialize(tenants[tenant], references,
                              seed=seed + index)
        plans.append((manager.session(tenant), stream))

    barrier = threading.Barrier(sessions)
    failures: List[BaseException] = []
    results: List[Optional[SessionResult]] = [None] * sessions

    def drive(index: int) -> None:
        session, stream = plans[index]
        try:
            barrier.wait()
            started = time.perf_counter()
            access = session.access
            for page in stream:
                access(page)
            elapsed = time.perf_counter() - started
            results[index] = SessionResult(
                session_id=session.session_id, tenant=session.tenant,
                stats=session.stats, elapsed=elapsed)
        except BaseException as exc:  # re-raised by the caller
            barrier.abort()
            failures.append(exc)
        finally:
            session.close()

    threads = [threading.Thread(target=drive, args=(index,),
                                name=f"repro-loadgen-{index}")
               for index in range(sessions)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        # Prefer a root cause over the BrokenBarrierError it induced in
        # the sibling threads.
        raise next((exc for exc in failures
                    if not isinstance(exc, threading.BrokenBarrierError)),
                   failures[0])

    latency: Dict[str, Dict[str, float]] = {}
    registry = manager.registry
    overall = {label: value for label, q in LATENCY_QUANTILES
               if (value := registry.percentile("service.request_ms", q))
               is not None}
    if overall:
        latency[""] = overall
    for tenant in tenant_order:
        name = f"service.tenant.{tenant}.request_ms"
        quantiles = {label: value for label, q in LATENCY_QUANTILES
                     if (value := registry.percentile(name, q)) is not None}
        if quantiles:
            latency[tenant] = quantiles
    completed = [result for result in results if result is not None]
    return LoadReport(sessions=completed,
                      per_tenant=manager.tenant_accounts(),
                      latency_ms=latency, elapsed=elapsed,
                      shards=len(manager.shards),
                      capacity=manager.capacity)
