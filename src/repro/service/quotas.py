"""Per-tenant admission quotas and fairness accounting.

The paper's multi-user OLTP setting (Section 5) mixes tenants with very
different footprints in one buffer pool; the multi-pool baseline
(:class:`repro.policies.multi_pool.MultiPoolPolicy`) showed the quota
idiom for page *domains* — a domain at or over its quota pays for its
own growth. The served buffer manager applies the same rule per
*tenant*: when an over-quota tenant faults a new page in, the victim is
preferentially one of that tenant's own resident pages, so a scan-heavy
tenant cannot flush a well-behaved tenant's working set.

:class:`TenantLedger` is the bookkeeping half: thread-safe per-tenant
counters (requests, hits, admissions, quota evictions, resident pages)
that the :class:`~repro.service.sharded.ShardedBufferManager` updates
from many session threads. All mutation happens under one internal
lock; snapshots are consistent copies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError

#: Tenants are named by opaque strings ("t0", "analytics", ...).
TenantId = str


@dataclass
class TenantAccount:
    """Fairness counters for one tenant."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0
    quota_evictions: int = 0
    resident: int = 0
    peak_resident: int = 0
    quota: Optional[int] = None

    @property
    def hit_ratio(self) -> float:
        """Fraction of this tenant's requests served from the buffer."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def over_quota(self) -> bool:
        """True when the tenant occupies at least its quota of frames."""
        return self.quota is not None and self.resident >= self.quota


class TenantLedger:
    """Thread-safe per-tenant usage accounting with optional quotas.

    ``quotas`` maps tenant id to the maximum number of resident frames
    the tenant may occupy before admission control makes it pay for its
    own growth; tenants absent from the mapping (or a ``None`` mapping)
    are unconstrained. The ledger never *enforces* anything itself — it
    answers :meth:`over_quota` and counts what the manager did.
    """

    def __init__(self, quotas: Optional[Mapping[TenantId, int]] = None
                 ) -> None:
        if quotas:
            for tenant, quota in quotas.items():
                if quota <= 0:
                    raise ConfigurationError(
                        f"tenant {tenant!r} quota must be positive")
        self._quotas: Dict[TenantId, int] = dict(quotas or {})
        self._accounts: Dict[TenantId, TenantAccount] = {}
        self._lock = threading.Lock()

    def ensure(self, tenant: TenantId) -> None:
        """Create the tenant's account if it does not exist yet."""
        with self._lock:
            self._account(tenant)

    def _account(self, tenant: TenantId) -> TenantAccount:
        account = self._accounts.get(tenant)
        if account is None:
            account = self._accounts[tenant] = TenantAccount(
                quota=self._quotas.get(tenant))
        return account

    # -- recording (called by the manager, any thread) -----------------------

    def record_request(self, tenant: TenantId, hit: bool) -> None:
        """Count one fetch by the tenant."""
        with self._lock:
            account = self._account(tenant)
            account.requests += 1
            if hit:
                account.hits += 1
            else:
                account.misses += 1

    def record_admission(self, tenant: TenantId) -> None:
        """The tenant faulted a page in; it now owns one more frame."""
        with self._lock:
            account = self._account(tenant)
            account.admissions += 1
            account.resident += 1
            if account.resident > account.peak_resident:
                account.peak_resident = account.resident

    def record_eviction(self, tenant: TenantId,
                        quota_enforced: bool = False) -> None:
        """A page owned by the tenant left the buffer."""
        with self._lock:
            account = self._account(tenant)
            account.evictions += 1
            account.resident -= 1
            if quota_enforced:
                account.quota_evictions += 1

    # -- queries -------------------------------------------------------------

    def over_quota(self, tenant: TenantId) -> bool:
        """True when admitting one more page would exceed the quota."""
        with self._lock:
            return self._account(tenant).over_quota

    def quota_of(self, tenant: TenantId) -> Optional[int]:
        """The tenant's configured quota, if any."""
        return self._quotas.get(tenant)

    def snapshot(self) -> Dict[TenantId, TenantAccount]:
        """A consistent copy of every tenant's account."""
        with self._lock:
            return {tenant: replace(account)
                    for tenant, account in self._accounts.items()}

    def tenants(self) -> "list[TenantId]":
        """Known tenant ids, sorted."""
        with self._lock:
            return sorted(self._accounts)
