"""The sharded concurrent buffer manager.

:class:`repro.buffer.BufferPool` is strictly single-caller: one logical
clock, one policy, no locks. This module serves it to many concurrent
sessions the way production buffer managers do — by *sharding*:

- page ids hash onto ``shards`` independent :class:`BufferShard`\\ s
  (multiplicative hashing, so consecutive page ids spread);
- each shard owns a private :class:`~repro.buffer.BufferPool` (and with
  it a private replacement policy, clock, and stats block) behind one
  :class:`threading.Lock`;
- every pool/policy interaction for a page happens while holding that
  page's shard lock, which is exactly the thread-confinement contract
  the policies document (see :mod:`repro.policies.base`).

Cross-shard state is limited to thread-safe accounting: the per-tenant
:class:`~repro.service.quotas.TenantLedger` and an optional
:class:`~repro.obs.registry.MetricsRegistry` updated under a dedicated
metrics lock (``service.*`` counters, gauges, and the request-latency
histogram scraped by ``/metrics`` and rendered by ``repro top``).

Tenant admission control reuses the multi-pool quota idiom per tenant
(the buffer-management survey's per-tenant segmentation): when an
over-quota tenant misses into a *full* shard, the manager first evicts
that tenant's own least-recently-used page in the shard, so the growth
is charged to the tenant that caused it rather than to whoever the
global policy would have victimized. Under-quota tenants and non-full
shards are untouched — with no quotas configured the manager's decision
sequence is *identical* to the underlying pools' (the serial-equivalence
property in :mod:`repro.service.equivalence` proves this for the
1-shard, 1-session case).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..buffer.frame import Frame
from ..buffer.pool import BufferPool
from ..buffer.stats import BufferStats
from ..core.lruk import LRUKPolicy
from ..errors import ConfigurationError, NoEvictableFrameError
from ..obs import runtime as obs_runtime
from ..obs.dispatcher import EventDispatcher
from ..obs.registry import MetricsRegistry
from ..policies.base import ReplacementPolicy
from ..storage.disk import SimulatedDisk
from ..types import AccessKind, PageId
from .quotas import TenantId, TenantLedger
from .session import Session

#: Knuth's multiplicative hash constant (golden ratio of 2^32): spreads
#: the dense page-id ranges workload generators produce across shards.
_HASH_MULTIPLIER = 2654435761

#: Request-latency histogram binning: [0, 5) milliseconds over 500 bins
#: gives 10 microsecond resolution, enough to separate p50 from p999 for
#: in-memory requests while still capturing lock-contention tails.
LATENCY_LOW_MS = 0.0
LATENCY_HIGH_MS = 5.0
LATENCY_BINS = 500


class AutoAllocatingDisk(SimulatedDisk):
    """A simulated disk that materializes pages on first read.

    Served workloads address pages by name (``N = {1, ..., n}``) without
    an allocation step; this disk backs each shard and zero-fills any
    page the first time a fault reads it, via
    :meth:`~repro.storage.disk.SimulatedDisk.allocate_at`.
    """

    def read(self, page_id: PageId, arrival_ms: Optional[float] = None):
        self.allocate_at(page_id)
        return super().read(page_id, arrival_ms)


class BufferShard:
    """One shard: a private pool and policy behind one lock.

    All attribute access except :attr:`index` must happen while holding
    :attr:`lock`; the manager is the only caller.
    """

    __slots__ = ("index", "pool", "lock", "owner", "tenant_lru")

    def __init__(self, index: int, pool: BufferPool) -> None:
        self.index = index
        self.pool = pool
        self.lock = threading.Lock()
        #: Which tenant's fault admitted each resident page (first touch
        #: owns; a hit by another tenant does not transfer ownership).
        self.owner: Dict[PageId, TenantId] = {}
        #: Per-tenant recency order over owned resident pages — the
        #: victim order for quota enforcement (least recently used
        #: first, refreshed on every hit by the owning tenant).
        self.tenant_lru: Dict[TenantId, "OrderedDict[PageId, None]"] = {}


#: Builds one replacement policy per shard. Each shard must get a fresh
#: instance: policies are stateful and thread-confined to their shard.
PolicyFactory = Callable[[], ReplacementPolicy]


def _default_policy_factory() -> ReplacementPolicy:
    return LRUKPolicy(k=2)


class ShardedBufferManager:
    """A concurrent, multi-tenant buffer service over sharded pools.

    Parameters
    ----------
    capacity:
        Total frames across all shards (split as evenly as possible;
        must be at least ``shards`` so every shard can hold a page).
    shards:
        Number of independent pool shards (and locks).
    policy_factory:
        Zero-argument callable building one replacement policy per
        shard (default: a fresh ``LRUKPolicy(k=2)`` each).
    quotas:
        Optional per-tenant frame quotas (see
        :class:`~repro.service.quotas.TenantLedger`).
    registry:
        Optional metrics registry to publish ``service.*`` instruments
        into. When omitted a private registry is created, so latency
        percentiles and tenant counters are always available via
        :attr:`registry`.
    observability:
        Optional event dispatcher for the shard pools. Leave ``None``
        (the default) for concurrent use: sinks are single-threaded by
        contract, so the shard pools are deliberately built *unobserved*
        even when an ambient dispatcher is active (see
        :func:`repro.obs.runtime.suppress`); telemetry flows through the
        lock-protected registry instead. Pass a dispatcher only for
        single-threaded harnesses (the serial-equivalence property).
    """

    def __init__(self, capacity: int, shards: int = 4,
                 policy_factory: Optional[PolicyFactory] = None,
                 quotas: Optional[Mapping[TenantId, int]] = None,
                 registry: Optional[MetricsRegistry] = None,
                 observability: Optional[EventDispatcher] = None) -> None:
        if shards <= 0:
            raise ConfigurationError("shard count must be positive")
        if capacity < shards:
            raise ConfigurationError(
                f"capacity {capacity} cannot give each of {shards} "
                "shard(s) at least one frame")
        factory = policy_factory or _default_policy_factory
        self.capacity = capacity
        self.ledger = TenantLedger(quotas)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._session_lock = threading.Lock()
        self._next_session_id = 0
        self._open_sessions = 0
        base, extra = divmod(capacity, shards)
        shard_list: List[BufferShard] = []
        for index in range(shards):
            shard_capacity = base + (1 if index < extra else 0)
            if observability is not None:
                pool = BufferPool(AutoAllocatingDisk(), factory(),
                                  shard_capacity,
                                  observability=observability)
            else:
                # Concurrent shards must not inherit an ambient
                # dispatcher: sinks are single-threaded by contract.
                with obs_runtime.suppress():
                    pool = BufferPool(AutoAllocatingDisk(), factory(),
                                      shard_capacity)
            shard_list.append(BufferShard(index, pool))
        self._shards: Tuple[BufferShard, ...] = tuple(shard_list)
        self._tenant_instruments: Dict[TenantId, tuple] = {}
        self._register_instruments()

    # -- metrics surface -----------------------------------------------------

    def _register_instruments(self) -> None:
        registry = self.registry
        self._requests = registry.counter("service.requests")
        self._hits = registry.counter("service.hits")
        self._misses = registry.counter("service.misses")
        self._quota_evictions = registry.counter("service.quota_evictions")
        self._latency = registry.histogram(
            "service.request_ms", LATENCY_LOW_MS, LATENCY_HIGH_MS,
            LATENCY_BINS)
        registry.gauge("service.shards", lambda: float(len(self._shards)))
        registry.gauge("service.sessions",
                       lambda: float(self._open_sessions))
        for shard in self._shards:
            prefix = f"service.shard.{shard.index}"
            pool = shard.pool
            registry.gauge(f"{prefix}.resident",
                           lambda pool=pool: float(
                               len(pool.resident_pages)))
            registry.gauge(f"{prefix}.hits",
                           lambda pool=pool: float(pool.stats.hits))
            registry.gauge(f"{prefix}.misses",
                           lambda pool=pool: float(pool.stats.misses))
            registry.gauge(f"{prefix}.evictions",
                           lambda pool=pool: float(pool.stats.evictions))

    def register_tenant(self, tenant: TenantId) -> None:
        """Pre-create the tenant's ledger account and metric instruments.

        Sessions call this on construction so the request hot path never
        creates instruments (registry creation mutates shared dicts).
        """
        self.ledger.ensure(tenant)
        with self._metrics_lock:
            if tenant in self._tenant_instruments:
                return
            registry = self.registry
            prefix = f"service.tenant.{tenant}"
            self._tenant_instruments[tenant] = (
                registry.counter(f"{prefix}.requests"),
                registry.counter(f"{prefix}.hits"),
                registry.counter(f"{prefix}.misses"),
                registry.counter(f"{prefix}.quota_evictions"),
                registry.histogram(f"{prefix}.request_ms",
                                   LATENCY_LOW_MS, LATENCY_HIGH_MS,
                                   LATENCY_BINS),
            )

    # -- sessions ------------------------------------------------------------

    def session(self, tenant: TenantId,
                session_id: Optional[int] = None) -> Session:
        """Open a session for ``tenant`` (ids assigned when omitted)."""
        with self._session_lock:
            if session_id is None:
                session_id = self._next_session_id
            self._next_session_id = max(self._next_session_id,
                                        session_id + 1)
            self._open_sessions += 1
        self.register_tenant(tenant)
        return Session(self, tenant, session_id)

    def _session_closed(self) -> None:
        with self._session_lock:
            self._open_sessions -= 1

    # -- sharding ------------------------------------------------------------

    def shard_of(self, page_id: PageId) -> int:
        """The shard index serving a page id (stable for a manager)."""
        return ((page_id * _HASH_MULTIPLIER) & 0xFFFFFFFF) % len(
            self._shards)

    @property
    def shards(self) -> Tuple[BufferShard, ...]:
        """The shard tuple (for inspection and tests)."""
        return self._shards

    # -- the request path ----------------------------------------------------

    def fetch(self, page_id: PageId, tenant: TenantId,
              session_id: Optional[int] = None,
              kind: AccessKind = AccessKind.READ,
              pin: bool = True) -> Tuple[Frame, bool]:
        """Serve one page request for a tenant; ``(frame, hit)``.

        The returned frame is pinned when ``pin`` (callers must
        :meth:`unpin`). The elapsed time of the whole request — lock
        wait included, which is the contention signal the latency
        histogram exists to expose — is recorded per tenant and
        aggregate.
        """
        shard = self._shards[self.shard_of(page_id)]
        start = time.perf_counter()
        quota_enforced = False
        with shard.lock:
            pool = shard.pool
            hit = pool.is_resident(page_id)
            if not hit:
                quota_enforced = self._enforce_quota(shard, tenant,
                                                     page_id)
                resident_before = pool.resident_pages
                frame = pool.fetch(page_id, pin=pin, kind=kind,
                                   process_id=session_id)
                for victim in resident_before - pool.resident_pages:
                    self._note_eviction(shard, victim)
                self._note_admission(shard, tenant, page_id)
            else:
                frame = pool.fetch(page_id, pin=pin, kind=kind,
                                   process_id=session_id)
                owner = shard.owner.get(page_id)
                if owner is not None:
                    shard.tenant_lru[owner].move_to_end(page_id)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.ledger.record_request(tenant, hit)
        self._record_request_metrics(tenant, hit, elapsed_ms,
                                     quota_enforced)
        return frame, hit

    def unpin(self, page_id: PageId, dirty: bool = False) -> None:
        """Release one pin taken by :meth:`fetch`."""
        shard = self._shards[self.shard_of(page_id)]
        with shard.lock:
            shard.pool.unpin(page_id, dirty)

    # -- quota enforcement and ownership (shard lock held) -------------------

    def _enforce_quota(self, shard: BufferShard, tenant: TenantId,
                       incoming: PageId) -> bool:
        """Make an over-quota tenant pay for its own growth.

        Only acts when the shard is full (a free frame harms nobody) and
        the tenant owns an unpinned page in this shard; returns whether
        a quota eviction happened.
        """
        if not self.ledger.over_quota(tenant):
            return False
        pool = shard.pool
        if len(pool.resident_pages) < pool.capacity:
            return False
        owned = shard.tenant_lru.get(tenant)
        if not owned:
            return False
        for victim in owned:  # least recently used first
            if victim != incoming and pool.pin_count(victim) == 0:
                pool.evict_page(victim)
                self._note_eviction(shard, victim, quota_enforced=True)
                return True
        return False

    def _note_admission(self, shard: BufferShard, tenant: TenantId,
                        page_id: PageId) -> None:
        shard.owner[page_id] = tenant
        shard.tenant_lru.setdefault(tenant, OrderedDict())[page_id] = None
        self.ledger.record_admission(tenant)

    def _note_eviction(self, shard: BufferShard, victim: PageId,
                       quota_enforced: bool = False) -> None:
        owner = shard.owner.pop(victim, None)
        if owner is None:
            return
        shard.tenant_lru[owner].pop(victim, None)
        self.ledger.record_eviction(owner, quota_enforced=quota_enforced)

    # -- metrics recording ---------------------------------------------------

    def _record_request_metrics(self, tenant: TenantId, hit: bool,
                                elapsed_ms: float,
                                quota_enforced: bool) -> None:
        instruments = self._tenant_instruments.get(tenant)
        if instruments is None:
            self.register_tenant(tenant)
            instruments = self._tenant_instruments[tenant]
        requests, hits, misses, quota_evictions, latency = instruments
        with self._metrics_lock:
            self._requests.inc()
            requests.inc()
            if hit:
                self._hits.inc()
                hits.inc()
            else:
                self._misses.inc()
                misses.inc()
            if quota_enforced:
                self._quota_evictions.inc()
                quota_evictions.inc()
            self._latency.observe(elapsed_ms)
            latency.observe(elapsed_ms)

    # -- aggregate views -----------------------------------------------------

    def stats(self) -> BufferStats:
        """Sum of every shard pool's :class:`BufferStats`."""
        total = BufferStats()
        for shard in self._shards:
            with shard.lock:
                stats = shard.pool.stats
                total.logical_reads += stats.logical_reads
                total.logical_writes += stats.logical_writes
                total.hits += stats.hits
                total.misses += stats.misses
                total.evictions += stats.evictions
                total.dirty_evictions += stats.dirty_evictions
                total.flushes += stats.flushes
        return total

    def tenant_accounts(self):
        """Consistent per-tenant fairness snapshot (see the ledger)."""
        return self.ledger.snapshot()

    def flush_all(self) -> int:
        """Write back every dirty frame in every shard."""
        flushed = 0
        for shard in self._shards:
            with shard.lock:
                flushed += shard.pool.flush_all()
        return flushed

    def resident_pages(self) -> frozenset:
        """Union of every shard's resident set."""
        pages: set = set()
        for shard in self._shards:
            with shard.lock:
                pages |= shard.pool.resident_pages
        return frozenset(pages)
