"""Serial-equivalence harness: the served path must not change decisions.

The service layer adds sharding, locks, sessions, and accounting around
:class:`~repro.buffer.BufferPool` — none of which may alter a single
replacement decision when the concurrency collapses to the trivial case.
This module proves the property the tests rely on: a **1-shard,
1-session** :class:`~repro.service.sharded.ShardedBufferManager` run
(no quotas) is *decision-identical* to driving the offline pool directly
with the same fetch/unpin protocol — same hit sequence, same eviction
sequence (time, victim, dirty), same :class:`~repro.buffer.stats
.BufferStats`.

Both sides are observed through the ordinary event stream (a recording
sink on a private dispatcher), so the comparison also covers the
telemetry the service emits, not just the counters it keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..buffer.pool import BufferPool
from ..buffer.stats import BufferStats
from ..obs.dispatcher import CallbackSink, EventDispatcher
from ..obs.events import AccessEvent, EvictionEvent
from ..policies.base import ReplacementPolicy
from ..types import PageId
from .sharded import AutoAllocatingDisk, ShardedBufferManager

#: One recorded access: (time, page, hit).
AccessRecord = Tuple[int, PageId, bool]
#: One recorded eviction: (time, victim, dirty).
EvictionRecord = Tuple[int, PageId, bool]


@dataclass
class SideTrace:
    """Everything one replay side produced."""

    accesses: List[AccessRecord] = field(default_factory=list)
    evictions: List[EvictionRecord] = field(default_factory=list)
    stats: Optional[BufferStats] = None

    @property
    def hit_sequence(self) -> List[bool]:
        """The per-reference hit/miss outcomes, in order."""
        return [hit for _, _, hit in self.accesses]


@dataclass
class EquivalenceReport:
    """The two sides plus a verdict and human-readable mismatches."""

    offline: SideTrace
    served: SideTrace

    @property
    def identical(self) -> bool:
        """True when every compared aspect matches exactly."""
        return not self.mismatches()

    def mismatches(self) -> List[str]:
        """Descriptions of every way the served run diverged."""
        problems: List[str] = []
        if self.offline.hit_sequence != self.served.hit_sequence:
            index = next(i for i, (a, b)
                         in enumerate(zip(self.offline.hit_sequence,
                                          self.served.hit_sequence))
                         if a != b) if (len(self.offline.hit_sequence)
                                        == len(self.served.hit_sequence)
                                        ) else -1
            problems.append(f"hit sequences diverge (first at ref "
                            f"{index})")
        if self.offline.accesses != self.served.accesses:
            problems.append("access event streams differ")
        if self.offline.evictions != self.served.evictions:
            problems.append(
                f"eviction sequences differ: offline "
                f"{self.offline.evictions[:3]}... vs served "
                f"{self.served.evictions[:3]}...")
        if self.offline.stats != self.served.stats:
            problems.append(f"stats differ: offline {self.offline.stats} "
                            f"vs served {self.served.stats}")
        return problems


def _recording_dispatcher(trace: SideTrace) -> EventDispatcher:
    dispatcher = EventDispatcher()

    def record(event, context) -> None:
        if isinstance(event, AccessEvent):
            trace.accesses.append((event.time, event.page, event.hit))
        elif isinstance(event, EvictionEvent):
            trace.evictions.append((event.time, event.victim,
                                    event.dirty))

    dispatcher.attach(CallbackSink(record))
    return dispatcher


def replay_offline(pages: Sequence[PageId], capacity: int,
                   policy: ReplacementPolicy,
                   session_id: int = 0) -> SideTrace:
    """Drive a bare :class:`BufferPool` with the fetch/unpin protocol."""
    trace = SideTrace()
    pool = BufferPool(AutoAllocatingDisk(), policy, capacity,
                      observability=_recording_dispatcher(trace))
    for page in pages:
        pool.fetch(page, pin=True, process_id=session_id)
        pool.unpin(page)
    trace.stats = pool.stats
    return trace


def replay_served(pages: Sequence[PageId], capacity: int,
                  policy_factory: Callable[[], ReplacementPolicy],
                  shards: int = 1) -> SideTrace:
    """Drive a served manager with one session over the same trace."""
    trace = SideTrace()
    manager = ShardedBufferManager(
        capacity, shards=shards, policy_factory=policy_factory,
        observability=_recording_dispatcher(trace))
    with manager.session("equivalence") as session:
        for page in pages:
            session.fetch(page, pin=True)
            session.unpin(page)
    trace.stats = manager.stats()
    return trace


def served_equivalence(pages: Sequence[PageId], capacity: int,
                       policy_factory: Callable[[], ReplacementPolicy]
                       ) -> EquivalenceReport:
    """Compare offline vs 1-shard/1-session served runs of one trace.

    ``policy_factory`` is called once per side — policies are stateful,
    so the two replays must not share an instance.
    """
    offline = replay_offline(pages, capacity, policy_factory(),
                             session_id=0)
    served = replay_served(pages, capacity, policy_factory, shards=1)
    return EquivalenceReport(offline=offline, served=served)
