"""Core value types shared across the library.

The central type is :class:`Reference`: one element of a *page reference
string* :math:`r_1, r_2, \\ldots, r_t` in the sense of Section 2 of the
paper. A reference identifies the page touched and, optionally, which
process/transaction touched it and whether the access dirtied the page —
metadata the Correlated Reference Period machinery (Section 2.1.1) and the
buffer manager can exploit.

Time is measured in *logical* units: the subscript ``t`` of the reference
string, i.e. a count of page accesses. :mod:`repro.clock` maps logical time
to simulated seconds when wall-clock-denominated parameters (the paper's
"5 seconds" CRP, "200 seconds" RIP) are needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

#: A page identifier. Pages are named by non-negative integers, exactly as
#: the paper's set ``N = {1, 2, ..., n}`` of disk pages.
PageId = int


class AccessKind(enum.Enum):
    """How a page was accessed.

    ``READ`` leaves the frame clean (if it was clean); ``WRITE`` marks it
    dirty so that eviction must write it back to disk.
    """

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class Reference:
    """One element of a page reference string.

    Parameters
    ----------
    page:
        The page touched.
    kind:
        Read or write access. Defaults to READ; replacement decisions in the
        paper are read/write agnostic, but the buffer manager uses this to
        count write-backs.
    process_id:
        Identifier of the process issuing the reference. Used by workload
        generators that model the paper's reference-pair taxonomy
        (Section 2.1.1); the default LRU-K configuration follows the paper
        in *not* distinguishing processes.
    txn_id:
        Identifier of the enclosing transaction, if any.
    """

    page: PageId
    kind: AccessKind = AccessKind.READ
    process_id: Optional[int] = None
    txn_id: Optional[int] = None

    @property
    def is_write(self) -> bool:
        """True when the access dirties the page."""
        return self.kind is AccessKind.WRITE


def as_reference(item: "Reference | PageId") -> Reference:
    """Coerce a bare page id into a read :class:`Reference`.

    Workload code and tests may supply plain integers; the simulator
    normalizes through this helper so every code path sees `Reference`.
    """
    if isinstance(item, Reference):
        return item
    return Reference(page=item)


def reference_stream(items: Iterable["Reference | PageId"]) -> Iterator[Reference]:
    """Normalize an iterable of page ids / references into references."""
    for item in items:
        yield as_reference(item)


@dataclass(slots=True)
class AccessOutcome:
    """The simulator's verdict for a single reference.

    Attributes
    ----------
    reference:
        The reference that was processed.
    time:
        Logical time (1-based reference-string subscript) at which it
        was processed.
    hit:
        True when the page was already resident.
    evicted:
        The page evicted to make room, or None when no eviction happened
        (hit, or free frame available).
    evicted_dirty:
        True when the evicted page required a write-back.
    """

    reference: Reference
    time: int
    hit: bool
    evicted: Optional[PageId] = None
    evicted_dirty: bool = False


@dataclass
class HitRatioCounter:
    """Streaming hit/miss counter yielding the paper's cache hit ratio C = h/T."""

    hits: int = 0
    misses: int = 0

    def record(self, hit: bool) -> None:
        """Account one reference."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def total(self) -> int:
        """Number of references accounted so far."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """C = h / T; zero when nothing was recorded."""
        if self.total == 0:
            return 0.0
        return self.hits / self.total

    def reset(self) -> None:
        """Forget all recorded references (used at the warm-up boundary)."""
        self.hits = 0
        self.misses = 0

    def merge(self, other: "HitRatioCounter") -> "HitRatioCounter":
        """Return a new counter combining two measurement windows."""
        return HitRatioCounter(hits=self.hits + other.hits,
                               misses=self.misses + other.misses)


@dataclass
class EvictionRecord:
    """A single eviction event, for post-hoc analysis of policy behaviour."""

    time: int
    page: PageId
    resident_for: int = field(default=0)
    dirty: bool = False
