"""repro.obs — zero-dependency observability for the buffer stack.

Four layers, all strictly pay-for-what-you-use:

- **events** (:mod:`repro.obs.events`): the structured record of what the
  drivers did — accesses, evictions (with backward K-distance), flushes,
  history purges, run snapshots, windowed hit-ratio samples, progress.
- **dispatch** (:mod:`repro.obs.dispatcher`, :mod:`repro.obs.runtime`):
  an :class:`EventDispatcher` fans events out to sinks; drivers resolve
  it explicitly (``observability=``) or ambiently (:func:`activate`).
  With no sinks attached the instrumented hot paths cost one attribute
  load and one truth test per reference.
- **metrics** (:mod:`repro.obs.registry`, :mod:`repro.obs.window`):
  named counters/gauges/histograms plus the sliding-window hit-ratio
  recorder that makes adaptivity quantitative.
- **sinks & profiling** (:mod:`repro.obs.sinks`,
  :mod:`repro.obs.profiler`): JSONL files, bounded ring buffers, the
  terminal timeline, and the per-hook latency profiler behind the
  distributional numbers in ``benchmarks/bench_overhead.py``.

See ``docs/observability.md`` for the JSONL schema.
"""

from .events import (
    AccessEvent,
    EvictionEvent,
    FlushEvent,
    ObsEvent,
    ProgressEvent,
    PurgeEvent,
    SnapshotEvent,
    WindowEvent,
    victim_telemetry,
)
from .dispatcher import CallbackSink, EventDispatcher, Sink
from .runtime import activate, current, resolve
from .registry import Counter, Gauge, HistogramMetric, MetricsRegistry
from .window import HitRatioWindowRecorder, SlidingHitRatioWindow
from .profiler import PROFILED_HOOKS, HookProfile, ProfiledPolicy
from .sinks import (
    ConsoleProgressSink,
    JsonlSink,
    RingBufferSink,
    TimelineSink,
)

__all__ = [
    "ObsEvent",
    "AccessEvent",
    "EvictionEvent",
    "FlushEvent",
    "PurgeEvent",
    "SnapshotEvent",
    "WindowEvent",
    "ProgressEvent",
    "victim_telemetry",
    "EventDispatcher",
    "Sink",
    "CallbackSink",
    "activate",
    "current",
    "resolve",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "SlidingHitRatioWindow",
    "HitRatioWindowRecorder",
    "ProfiledPolicy",
    "HookProfile",
    "PROFILED_HOOKS",
    "JsonlSink",
    "RingBufferSink",
    "ConsoleProgressSink",
    "TimelineSink",
]
