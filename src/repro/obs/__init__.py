"""repro.obs — zero-dependency observability for the buffer stack.

Four layers, all strictly pay-for-what-you-use:

- **events** (:mod:`repro.obs.events`): the structured record of what the
  drivers did — accesses, evictions (with backward K-distance), flushes,
  history purges, run snapshots, windowed hit-ratio samples, progress.
- **dispatch** (:mod:`repro.obs.dispatcher`, :mod:`repro.obs.runtime`):
  an :class:`EventDispatcher` fans events out to sinks; drivers resolve
  it explicitly (``observability=``) or ambiently (:func:`activate`).
  With no sinks attached the instrumented hot paths cost one attribute
  load and one truth test per reference.
- **metrics** (:mod:`repro.obs.registry`, :mod:`repro.obs.window`):
  named counters/gauges/histograms plus the sliding-window hit-ratio
  recorder that makes adaptivity quantitative.
- **sinks & profiling** (:mod:`repro.obs.sinks`,
  :mod:`repro.obs.profiler`): JSONL files, bounded ring buffers, the
  terminal timeline, and the per-hook latency profiler behind the
  distributional numbers in ``benchmarks/bench_overhead.py``.
- **live telemetry** (:mod:`repro.obs.telemetry`, :mod:`repro.obs.top`,
  :mod:`repro.obs.perf`): the Prometheus text exposition renderer and
  the stdlib ``/metrics`` + ``/healthz`` endpoint behind
  ``--serve-metrics``, the periodic :class:`ResourceSampler`, the
  ``repro top`` terminal dashboard, and the ``BENCH_history.jsonl``
  perf-trajectory ledger behind ``repro perf``.
- **tracing & provenance** (:mod:`repro.obs.trace`,
  :mod:`repro.obs.provenance`): hierarchical wall/CPU-time spans
  (``sweep → cell → simulate → policy-hook``) with cross-process relay
  from forked sweep workers and Chrome trace-event export, plus
  per-eviction decision provenance — the candidate set, CRP exclusions,
  retained-history influence, and optional Belady-regret annotation
  behind ``repro explain``.

See ``docs/observability.md`` for the JSONL schema and the tracing /
provenance guide.
"""

from .events import (
    AccessEvent,
    CellFailureEvent,
    EvictionDecisionEvent,
    EvictionEvent,
    FlushEvent,
    ObsEvent,
    ProgressEvent,
    PurgeEvent,
    SnapshotEvent,
    WindowEvent,
    victim_telemetry,
)
from .dispatcher import CallbackSink, EventDispatcher, Sink
from .runtime import activate, current, resolve
from .registry import Counter, Gauge, HistogramMetric, MetricsRegistry
from .window import HitRatioWindowRecorder, SlidingHitRatioWindow
from .profiler import PROFILED_HOOKS, HookProfile, ProfiledPolicy
from .provenance import (
    CandidateInfo,
    EvictionDecision,
    NextUseOracle,
    ProvenanceRecorder,
)
from .telemetry import (
    Exposition,
    HistogramSeries,
    MetricsServer,
    ResourceSampler,
    parse_exposition,
    render_exposition,
)
from .perf import (
    PerfVerdict,
    append_record,
    check_regression,
    load_history,
    render_report,
)
from .trace import Span, Tracer, write_chrome_trace
from .sinks import (
    ConsoleProgressSink,
    JsonlSink,
    RingBufferSink,
    TimelineSink,
)

__all__ = [
    "ObsEvent",
    "AccessEvent",
    "EvictionEvent",
    "FlushEvent",
    "PurgeEvent",
    "SnapshotEvent",
    "WindowEvent",
    "ProgressEvent",
    "CellFailureEvent",
    "victim_telemetry",
    "EventDispatcher",
    "Sink",
    "CallbackSink",
    "activate",
    "current",
    "resolve",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "SlidingHitRatioWindow",
    "HitRatioWindowRecorder",
    "ProfiledPolicy",
    "HookProfile",
    "PROFILED_HOOKS",
    "EvictionDecisionEvent",
    "CandidateInfo",
    "EvictionDecision",
    "NextUseOracle",
    "ProvenanceRecorder",
    "Exposition",
    "HistogramSeries",
    "MetricsServer",
    "ResourceSampler",
    "parse_exposition",
    "render_exposition",
    "PerfVerdict",
    "append_record",
    "check_regression",
    "load_history",
    "render_report",
    "Span",
    "Tracer",
    "write_chrome_trace",
    "JsonlSink",
    "RingBufferSink",
    "ConsoleProgressSink",
    "TimelineSink",
]
