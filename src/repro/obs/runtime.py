"""Ambient dispatcher: opt-in observability without parameter threading.

The experiment stack creates simulators many layers below the CLI
(``run_experiment -> sweep -> run_paper_protocol -> measure_hit_ratio ->
CacheSimulator``), and the ablation functions create them directly. So
that ``repro ablation adaptivity --metrics-out ...`` works without
rewriting every call site, a dispatcher can be *activated* for a dynamic
extent::

    with activate(dispatcher):
        table = ablation()      # every driver built inside observes it

Drivers resolve their dispatcher at construction: an explicit
``observability=`` argument wins, otherwise :func:`current` is consulted,
otherwise they run unobserved. There is deliberately no default global
dispatcher — with nothing activated, the hot paths see ``None`` and skip
instrumentation entirely.

The simulators are single-threaded (a ``LogicalClock`` per driver), so a
module-level slot is sufficient; nesting is supported and restores the
previous dispatcher on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .dispatcher import EventDispatcher

_active: Optional[EventDispatcher] = None


def current() -> Optional[EventDispatcher]:
    """The dispatcher activated for the current dynamic extent, if any."""
    return _active


def resolve(explicit: Optional[EventDispatcher]) -> Optional[EventDispatcher]:
    """An explicit dispatcher if given, else the ambient one, else None."""
    return explicit if explicit is not None else _active


def deactivate() -> None:
    """Clear the ambient dispatcher unconditionally.

    Forked worker processes inherit the parent's ambient dispatcher —
    and with it open file sinks that must only be written from the
    parent — so the parallel sweep engine clears it as the first act of
    every worker task. Not for use in normal (single-process) flow;
    there, :func:`activate`'s scoped restore is the right tool.
    """
    global _active
    _active = None


@contextmanager
def activate(dispatcher: EventDispatcher) -> Iterator[EventDispatcher]:
    """Make ``dispatcher`` ambient for the extent of the ``with`` block."""
    global _active
    previous = _active
    _active = dispatcher
    try:
        yield dispatcher
    finally:
        _active = previous


@contextmanager
def suppress() -> Iterator[None]:
    """Make the current dynamic extent *unobserved*, restoring on exit.

    The inverse of :func:`activate`, for components that must not
    inherit an ambient dispatcher even when one is active: sinks are
    single-threaded by contract, so the concurrent buffer service
    (:mod:`repro.service`) builds its shard pools under this — their
    telemetry flows through the thread-safe metrics surface instead of
    the event stream. Nesting composes with :func:`activate` exactly
    like a ``with`` of either form.
    """
    global _active
    previous = _active
    _active = None
    try:
        yield
    finally:
        _active = previous
