"""Event dispatcher: the pay-for-what-you-use fan-out point.

A dispatcher owns an ordered list of *sinks* and a *context* — key/value
annotations (policy label, buffer size, seed) that identify which run the
events belong to. Emitting with no sinks attached is (nearly) free, and
the drivers guard the event *construction* too::

    obs = simulator._obs
    if obs is not None and obs.active:
        obs.emit(AccessEvent(...))

so an un-observed simulator pays one attribute load and one truth test
per reference — the Section 1.2 "little bookkeeping overhead" discipline
applied to the instrumentation itself.

Sinks are objects with a ``handle(event, context)`` method (see
:mod:`repro.obs.sinks`); plain callables of the same shape work through
:class:`CallbackSink`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from .events import ObsEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .registry import MetricsRegistry


class Sink:
    """Base sink: receives every event the dispatcher emits."""

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        """Consume one event. ``context`` is the dispatcher's current
        annotation dict (shared, do not mutate)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (files); idempotent."""

    def flush(self) -> None:
        """Push any buffered output downstream; default no-op."""


class CallbackSink(Sink):
    """Adapt a plain ``fn(event, context)`` callable into a sink."""

    def __init__(self, fn: Callable[[ObsEvent, Dict[str, object]], None]
                 ) -> None:
        self._fn = fn

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        self._fn(event, context)


class EventDispatcher:
    """Fan events out to attached sinks, tagged with the run context."""

    __slots__ = ("_sinks", "context", "metrics")

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self.context: Dict[str, object] = {}
        #: Optional :class:`~repro.obs.registry.MetricsRegistry` riding
        #: along with the dispatcher. Drivers that accumulate counters
        #: (the measurement protocol) resolve it once per run; forked
        #: sweep workers relay their own registries' counter values back
        #: to be merged into this one, so ``--metrics-out`` totals are
        #: identical under ``--jobs N`` and serial execution.
        self.metrics: Optional["MetricsRegistry"] = None

    # -- sink management ---------------------------------------------------------

    @property
    def has_sinks(self) -> bool:
        """True when at least one sink is attached.

        The public form of the hot-path emission guard: drivers ask
        this before *constructing* an event so an unobserved run pays
        one attribute load and one truth test per reference. Code
        outside this module must use this (or :attr:`active`) rather
        than poking ``_sinks``.
        """
        return bool(self._sinks)

    #: Alias kept for the original spelling of the guard.
    active = has_sinks

    __bool__ = has_sinks.fget

    @property
    def sinks(self) -> "tuple[Sink, ...]":
        """Snapshot of the attached sinks, in attachment order.

        For introspection (the resource sampler's per-sink depth
        gauges); attachment management stays with :meth:`attach` /
        :meth:`detach`.
        """
        return tuple(self._sinks)

    def attach(self, sink: Sink) -> Sink:
        """Attach a sink; returns it for fluent use."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        """Detach a previously attached sink (no error if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def close(self) -> None:
        """Close and detach every sink."""
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink.close()

    def flush(self) -> None:
        """Flush every sink that buffers output (file sinks).

        The parallel sweep engine calls this before forking workers so
        no child inherits buffered-but-unwritten output.
        """
        for sink in tuple(self._sinks):
            sink.flush()

    # -- emission ----------------------------------------------------------------

    def emit(self, event: ObsEvent) -> None:
        """Deliver one event to every sink, in attachment order.

        Sinks may themselves emit derived events (the windowed recorder
        does); nested emission is safe because delivery iterates over a
        snapshot of the sink list.
        """
        for sink in tuple(self._sinks):
            sink.handle(event, self.context)

    # -- context -----------------------------------------------------------------

    @contextmanager
    def scoped(self, **annotations: object) -> Iterator["EventDispatcher"]:
        """Temporarily extend the context (run labels, capacities, seeds)."""
        saved = self.context
        self.context = {**saved, **annotations}
        try:
            yield self
        finally:
            self.context = saved
