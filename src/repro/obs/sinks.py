"""Event sinks: JSONL files, bounded ring buffers, terminal rendering.

- :class:`JsonlSink` — one JSON object per line, context merged into
  each record; high-volume :class:`~repro.obs.events.AccessEvent` records
  can be sampled (every N-th) while decision events are always kept.
- :class:`RingBufferSink` — the last N events in memory, for tests,
  notebooks, and post-mortem inspection without unbounded growth.
- :class:`ConsoleProgressSink` — renders
  :class:`~repro.obs.events.ProgressEvent` lines to a stream (the CLI's
  ``--quiet`` simply does not attach one).
- :class:`TimelineSink` — accumulates
  :class:`~repro.obs.events.WindowEvent` samples and renders an ASCII
  hit-ratio-over-time chart via :func:`repro.sim.charts.ascii_chart`.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import Deque, Dict, IO, List, Optional, Tuple

from ..errors import ConfigurationError
from .dispatcher import Sink
from .events import AccessEvent, ObsEvent, ProgressEvent, WindowEvent


class JsonlSink(Sink):
    """Serialize every event as one JSON line.

    Parameters
    ----------
    stream:
        Any writable text stream. Use :meth:`open` for a file path.
    access_every:
        Keep one in every N access events (1 = keep all). Eviction,
        flush, purge, snapshot, and window events are never sampled —
        they are the low-volume decision record.
    """

    def __init__(self, stream: IO[str], access_every: int = 1,
                 close_stream: bool = False) -> None:
        if access_every <= 0:
            raise ConfigurationError("access_every must be positive")
        self._stream = stream
        self._close_stream = close_stream
        self.access_every = access_every
        self._access_seen = 0
        self.written = 0

    @classmethod
    def open(cls, path: str, access_every: int = 1) -> "JsonlSink":
        """Open ``path`` for writing and wrap it."""
        return cls(open(path, "w", encoding="utf-8"),
                   access_every=access_every, close_stream=True)

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        if isinstance(event, AccessEvent):
            self._access_seen += 1
            if self._access_seen % self.access_every != 0:
                return
        record = dict(context)
        record.update(event.to_dict())
        self._stream.write(json.dumps(record, separators=(",", ":")))
        self._stream.write("\n")
        self.written += 1

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        if self._close_stream and not self._stream.closed:
            self._stream.close()


class RingBufferSink(Sink):
    """Keep the last ``maxlen`` events (with their context) in memory."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen <= 0:
            raise ConfigurationError("ring buffer needs positive capacity")
        self._buffer: Deque[Tuple[ObsEvent, Dict[str, object]]] = deque(
            maxlen=maxlen)

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        self._buffer.append((event, dict(context)))

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def maxlen(self) -> int:
        """The bound on retained events."""
        assert self._buffer.maxlen is not None
        return self._buffer.maxlen

    def events(self, kind: Optional[str] = None) -> List[ObsEvent]:
        """Retained events, optionally filtered by kind tag."""
        return [event for event, _ in self._buffer
                if kind is None or event.kind == kind]

    def records(self) -> List[Tuple[ObsEvent, Dict[str, object]]]:
        """Retained (event, context) pairs, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        """Drop everything retained."""
        self._buffer.clear()


class ConsoleProgressSink(Sink):
    """Print :class:`ProgressEvent` lines to a stream (default stderr)."""

    def __init__(self, stream: Optional[IO[str]] = None,
                 prefix: str = "  .. ") -> None:
        self._stream = stream
        self.prefix = prefix

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        if isinstance(event, ProgressEvent):
            stream = self._stream if self._stream is not None else sys.stderr
            print(f"{self.prefix}{event.message}", file=stream)


class TimelineSink(Sink):
    """Collect windowed hit-ratio samples and render a terminal timeline.

    Samples are grouped by the ``(policy, capacity, seed)`` context under
    which they were emitted. :meth:`render` charts one series per policy
    at a single capacity (the largest seen unless given) for the first
    seed, which is the legible slice of a full table sweep.
    """

    def __init__(self) -> None:
        # (label, capacity, seed) -> [(time, ratio), ...]
        self._series: Dict[Tuple[str, int, int], List[Tuple[int, float]]] = {}

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        if not isinstance(event, WindowEvent):
            return
        key = (str(context.get("policy", "run")),
               int(context.get("capacity", 0) or 0),
               int(context.get("seed", 0) or 0))
        self._series.setdefault(key, []).append((event.time, event.hit_ratio))

    @property
    def empty(self) -> bool:
        """True when no window samples were collected."""
        return not self._series

    def capacities(self) -> List[int]:
        """Capacities seen in the collected samples, sorted."""
        return sorted({capacity for _, capacity, _ in self._series})

    def render(self, capacity: Optional[int] = None,
               width: int = 60, height: int = 14) -> str:
        """An ASCII chart of windowed hit ratio vs logical time."""
        if self.empty:
            return "(timeline: no window samples recorded)"
        # Imported lazily: repro.sim imports the instrumented simulator,
        # which imports this package.
        from ..sim.charts import ascii_chart

        if capacity is None:
            # Prefer the capacity carrying the most policy series: the
            # largest capacity alone may come from a single-policy
            # helper sweep (e.g. the equi-effective B(1) search).
            labels_at: Dict[int, set] = {}
            for label, cap, _ in self._series:
                labels_at.setdefault(cap, set()).add(label)
            capacity = max(labels_at,
                           key=lambda cap: (len(labels_at[cap]), cap))
        chosen: Dict[str, List[Tuple[int, float]]] = {}
        for (label, cap, seed), points in sorted(self._series.items()):
            if cap != capacity or label in chosen:
                continue
            chosen[label] = points
        if not chosen:
            return f"(timeline: no samples at capacity {capacity})"
        # Align series on a common sample count (runs share stride).
        length = min(len(points) for points in chosen.values())
        first = next(iter(chosen.values()))
        x_values = [float(t) for t, _ in first[:length]]
        series = {label: [ratio for _, ratio in points[:length]]
                  for label, points in chosen.items()}
        title = f"windowed hit ratio over time (B={capacity})"
        chart = ascii_chart(x_values, series, width=width, height=height,
                            y_min=0.0, y_label="window hit ratio",
                            x_label="t")
        return f"{title}\n{chart}"
