"""The observability event model.

Every interesting moment in the buffer stack is one immutable event:

- :class:`AccessEvent` — a reference was processed (hit or miss);
- :class:`EvictionEvent` — a victim was dropped, carrying the victim's
  backward K-distance and whether the decision was history-informed
  (i.e. the victim had a full K-history, paper Definition 2.1);
- :class:`FlushEvent` — a dirty page was written back outside eviction;
- :class:`PurgeEvent` — the Retained Information demon dropped expired
  HIST blocks (paper Section 2.1.2);
- :class:`SnapshotEvent` — a run-boundary summary (start / measurement
  boundary / end / final) with the counters at that instant;
- :class:`WindowEvent` — one sample of the sliding-window hit ratio
  (emitted by :class:`~repro.obs.window.HitRatioWindowRecorder`);
- :class:`ProgressEvent` — a human-readable progress line (the CLI's
  narration, routed through the dispatcher so sinks decide rendering).

Events are plain dataclasses with a ``kind`` tag and a :meth:`to_dict`
that yields JSON-serializable payloads (infinities are mapped to
``None`` so every line a sink writes parses back with a strict JSON
reader).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..types import PageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .provenance import EvictionDecision


@dataclass(frozen=True)
class ObsEvent:
    """Base class: a tagged, JSON-serializable observability event."""

    #: Event tag written to the ``event`` field of serialized records.
    kind = "event"

    def to_dict(self) -> Dict[str, object]:
        """A flat JSON-serializable record (``event`` tag included)."""
        record: Dict[str, object] = {"event": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, float) and math.isinf(value):
                value = None
            record[spec.name] = value
        return record


@dataclass(frozen=True)
class AccessEvent(ObsEvent):
    """One reference was processed by a driver."""

    kind = "access"

    time: int
    page: PageId
    hit: bool
    write: bool = False


@dataclass(frozen=True)
class EvictionEvent(ObsEvent):
    """A victim page was dropped to make room.

    ``backward_k_distance`` is ``None`` when the victim's distance was
    infinite (fewer than K recorded references) or when the policy does
    not expose the notion at all; ``history_informed`` distinguishes the
    two (``False`` = infinite distance, ``None`` = not an LRU-K-family
    policy).
    """

    kind = "eviction"

    time: int
    victim: PageId
    dirty: bool = False
    backward_k_distance: Optional[float] = None
    history_informed: Optional[bool] = None


@dataclass(frozen=True)
class EvictionDecisionEvent(ObsEvent):
    """Full provenance of one victim choice (see :mod:`repro.obs.provenance`).

    Emitted by LRU-K-family policies only while a
    :class:`~repro.obs.provenance.ProvenanceRecorder` is attached, so the
    candidate enumeration cost is strictly opt-in. ``candidates`` is a
    tuple of plain dicts (page / kth_time / last_uncorrelated /
    backward_k_distance / crp_protected / excluded / chosen) so the
    record serializes to strict JSON as-is.
    """

    kind = "decision"

    time: int
    victim: PageId
    backward_k_distance: Optional[float]
    candidates: Tuple[Dict[str, object], ...]
    considered: int
    crp_excluded: int
    forced: bool
    retained_history: bool
    belady_victim: Optional[PageId] = None
    belady_agrees: Optional[bool] = None
    regret: Optional[int] = None

    @classmethod
    def from_decision(cls, decision: "EvictionDecision"
                      ) -> "EvictionDecisionEvent":
        """Flatten a :class:`~repro.obs.provenance.EvictionDecision`."""
        candidates = tuple(
            {"page": info.page, "kth_time": info.kth_time,
             "last_uncorrelated": info.last_uncorrelated,
             "backward_k_distance": info.backward_k_distance,
             "crp_protected": info.crp_protected,
             "excluded": info.excluded, "chosen": info.chosen}
            for info in decision.candidates)
        return cls(time=decision.time, victim=decision.victim,
                   backward_k_distance=decision.victim_distance,
                   candidates=candidates,
                   considered=decision.considered,
                   crp_excluded=decision.crp_excluded_total,
                   forced=decision.forced,
                   retained_history=decision.retained_history,
                   belady_victim=decision.belady_victim,
                   belady_agrees=decision.belady_agrees,
                   regret=decision.regret)


@dataclass(frozen=True)
class FlushEvent(ObsEvent):
    """A dirty page was written back to disk outside the eviction path."""

    kind = "flush"

    time: int
    page: PageId


@dataclass(frozen=True)
class PurgeEvent(ObsEvent):
    """The Retained Information demon dropped expired history blocks."""

    kind = "purge"

    time: int
    dropped: int
    retained: int


@dataclass(frozen=True)
class SnapshotEvent(ObsEvent):
    """A run-boundary summary of the driver's counters.

    ``phase`` is one of ``"start"`` (fresh run), ``"measurement"``
    (the warm-up boundary of the paper's Section 4.1 protocol),
    ``"end"`` (run finished) or ``"final"`` (whole-command summary).
    """

    kind = "snapshot"

    time: Optional[int]
    phase: str
    counters: Dict[str, float]


@dataclass(frozen=True)
class WindowEvent(ObsEvent):
    """One sliding-window hit-ratio sample."""

    kind = "window"

    time: int
    hit_ratio: float
    window: int
    count: int


@dataclass(frozen=True)
class ProgressEvent(ObsEvent):
    """A human-readable progress line."""

    kind = "progress"

    message: str


@dataclass(frozen=True)
class CellFailureEvent(ObsEvent):
    """One sweep-grid cell attempt failed (see :mod:`repro.sim.recovery`).

    ``failure`` is the classification (``crash`` / ``timeout`` /
    ``error`` / ``poisoned``), ``attempt`` the 1-based number of attempts
    consumed so far, and ``action`` what the engine does next:
    ``retry`` (back into the pool with backoff), ``fallback``
    (in-process serial re-run after the pool drains) or ``failed``
    (recorded permanently; the sweep raises
    :class:`~repro.sim.recovery.CellExecutionError` once it finishes).
    """

    kind = "cell-failure"

    capacity: int
    label: str
    attempt: int
    failure: str
    error: str
    action: str


def victim_telemetry(policy: object, victim: PageId,
                     now: int) -> Tuple[Optional[float], Optional[bool]]:
    """Extract (backward_k_distance, history_informed) for an eviction.

    Works for any policy: LRU-K-family policies expose
    ``backward_k_distance``; everything else yields ``(None, None)``.
    """
    probe = getattr(policy, "backward_k_distance", None)
    if probe is None:
        return None, None
    distance = probe(victim, now)
    if math.isinf(distance):
        return None, False
    return float(distance), True
