"""Live telemetry plane: Prometheus exposition, ``/metrics``, sampling.

The registry (:mod:`repro.obs.registry`) answers "where are we now" —
but until this module, only code *inside* the process could ask. Three
pieces make a running sweep observable from outside, all zero-dependency
and strictly pay-for-what-you-use (nothing here touches the simulation
hot path; no thread or socket exists unless explicitly started):

- :func:`render_exposition` — serialize a :class:`MetricsRegistry` as
  Prometheus text exposition format (version 0.0.4): ``# HELP`` /
  ``# TYPE`` lines, counters, gauges (with a ``worker`` label for
  values relayed from forked sweep workers), and histograms as
  cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
  :func:`parse_exposition` is the matching reader used by ``repro top``
  and the tests.
- :class:`MetricsServer` — a stdlib :mod:`http.server` endpoint serving
  ``/metrics`` (exposition) and ``/healthz`` (liveness JSON) from a
  daemon thread; the CLI starts one under ``--serve-metrics PORT`` so a
  long-running ``--jobs N`` sweep can be scraped mid-flight.
- :class:`ResourceSampler` — a periodic daemon thread publishing
  process-level gauges (RSS and CPU from ``/proc/self``, GC state,
  thread count, sink depths, caller-supplied probes) into the registry
  on a configurable interval, behind ``--sample-resources SECONDS``.

See the "Live telemetry" section of ``docs/observability.md``.
"""

from __future__ import annotations

import gc
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .dispatcher import EventDispatcher
from .registry import MetricsRegistry

__all__ = [
    "render_exposition",
    "parse_exposition",
    "Exposition",
    "HistogramSeries",
    "MetricsServer",
    "ResourceSampler",
]

# -- Prometheus text exposition ------------------------------------------------

#: Characters legal in a Prometheus metric name body.
_NAME_BODY = re.compile(r"[^a-zA-Z0-9_:]")


def exposition_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    ``protocol.run_hit_ratio`` becomes ``protocol_run_hit_ratio``; any
    character outside ``[a-zA-Z0-9_:]`` maps to ``_`` and a leading
    digit gains a ``_`` prefix. The original dotted name is preserved in
    the ``# HELP`` line, so a scrape remains joinable back to
    ``snapshot()`` keys.
    """
    sanitized = _NAME_BODY.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Escape a label value (backslash, quote, newline)."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_exposition(registry: MetricsRegistry) -> str:
    """Serialize every instrument as Prometheus text format 0.0.4.

    - Counters and gauges render one sample each; gauges whose value was
      merged from a forked sweep worker carry a ``worker="<pid>"`` label
      (see :meth:`~repro.obs.registry.MetricsRegistry.merge_gauges`).
    - Histograms render the full cumulative ``_bucket{le="..."}``
      ladder over their fixed binning, a terminal ``le="+Inf"`` bucket,
      and ``_sum`` / ``_count`` samples. Out-of-range observations are
      clamped into the edge bins by :class:`repro.stats.Histogram`, so
      the ladder's totals always match ``_count``. *Empty* histograms
      are omitted entirely — a bucket ladder of zeros advertises a
      distribution that was never observed.
    - Families render in sorted instrument-name order, so successive
      scrapes of a quiescent registry are byte-identical.

    The renderer snapshots the instrument maps up front, so scraping
    from the server thread while the sweep registers new instruments is
    safe (values themselves are read live).
    """
    lines: List[str] = []

    for name, counter in sorted(registry.counters().items()):
        exposed = exposition_name(name)
        lines.append(f"# HELP {exposed} {_escape_help(name)}")
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(float(counter.value))}")

    for name, gauge in sorted(registry.gauges().items()):
        exposed = exposition_name(name)
        lines.append(f"# HELP {exposed} {_escape_help(name)}")
        lines.append(f"# TYPE {exposed} gauge")
        worker = registry.gauge_source(name)
        label = (f'{{worker="{_escape_label(worker)}"}}'
                 if worker is not None else "")
        lines.append(f"{exposed}{label} {_format_value(gauge.read())}")

    for name, histogram in sorted(registry.histograms().items()):
        if histogram.count == 0:
            continue
        exposed = exposition_name(name)
        state = histogram.state()
        counts = list(state["counts"])  # type: ignore[arg-type]
        low, high = histogram.low, histogram.high
        width = (high - low) / histogram.bins
        lines.append(f"# HELP {exposed} {_escape_help(name)}")
        lines.append(f"# TYPE {exposed} histogram")
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            edge = low + (index + 1) * width
            lines.append(f'{exposed}_bucket{{le="{_format_value(edge)}"}} '
                         f"{cumulative}")
        lines.append(f'{exposed}_bucket{{le="+Inf"}} {histogram.count}')
        total = histogram.mean * histogram.count
        lines.append(f"{exposed}_sum {_format_value(total)}")
        lines.append(f"{exposed}_count {histogram.count}")

    return "\n".join(lines) + "\n" if lines else ""


class HistogramSeries:
    """One parsed histogram family: cumulative buckets plus sum/count."""

    __slots__ = ("buckets", "sum", "count")

    def __init__(self) -> None:
        #: ``[(upper_edge, cumulative_count)]`` in exposition order; the
        #: ``+Inf`` bucket appears as ``float("inf")``.
        self.buckets: List[Tuple[float, int]] = []
        self.sum = 0.0
        self.count = 0

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile interpolated within the bucket ladder."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        previous_edge: Optional[float] = None
        previous_cumulative = 0
        for edge, cumulative in self.buckets:
            if cumulative >= target and cumulative > previous_cumulative:
                if previous_edge is None or edge == float("inf"):
                    return edge if edge != float("inf") else previous_edge
                within = ((target - previous_cumulative)
                          / (cumulative - previous_cumulative))
                return previous_edge + within * (edge - previous_edge)
            previous_edge = edge if edge != float("inf") else previous_edge
            previous_cumulative = cumulative
        return previous_edge


class Exposition:
    """A parsed ``/metrics`` payload: flat samples plus histograms."""

    def __init__(self) -> None:
        #: Scalar samples keyed by exposed metric name (labels stripped;
        #: last sample of a name wins — sufficient for this repo's
        #: single-label exposition).
        self.samples: Dict[str, float] = {}
        #: Label sets seen per metric name, e.g. ``{"worker": "123"}``.
        self.labels: Dict[str, Dict[str, str]] = {}
        #: ``# TYPE`` declarations by exposed name.
        self.types: Dict[str, str] = {}
        #: ``# HELP`` text by exposed name (the original dotted name).
        self.help: Dict[str, str] = {}
        #: Histogram families by exposed base name.
        self.histograms: Dict[str, HistogramSeries] = {}

    def value(self, name: str, default: float = 0.0) -> float:
        """A scalar sample by exposed *or* original dotted name."""
        if name in self.samples:
            return self.samples[name]
        return self.samples.get(exposition_name(name), default)

    def has(self, name: str) -> bool:
        """True when a scalar sample exists under either name form."""
        return (name in self.samples
                or exposition_name(name) in self.samples)


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>\S+)\s*$')
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(text: str) -> Exposition:
    """Parse Prometheus text exposition into an :class:`Exposition`.

    Covers the grammar :func:`render_exposition` emits (which is also
    what a stock Prometheus server would accept from it): ``# HELP`` /
    ``# TYPE`` comments, optional ``{label="value"}`` sets, histogram
    ``_bucket`` / ``_sum`` / ``_count`` families. Unparseable lines are
    skipped rather than fatal — a dashboard poll must survive a scrape
    racing a writer.
    """
    exposition = Exposition()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "HELP":
                exposition.help[parts[2]] = parts[3]
            elif len(parts) >= 4 and parts[1] == "TYPE":
                exposition.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        name = match.group("name")
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            continue
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for pair in _LABEL.finditer(match.group("labels")):
                labels[pair.group("key")] = pair.group("value")
        if name.endswith("_bucket") and "le" in labels:
            base = name[:-len("_bucket")]
            family = exposition.histograms.setdefault(base,
                                                      HistogramSeries())
            try:
                edge = _parse_number(labels["le"])
            except ValueError:
                continue
            family.buckets.append((edge, int(value)))
            continue
        if name.endswith("_sum") and name[:-4] in exposition.histograms:
            exposition.histograms[name[:-4]].sum = value
            continue
        if name.endswith("_count") and name[:-6] in exposition.histograms:
            exposition.histograms[name[:-6]].count = int(value)
            continue
        exposition.samples[name] = value
        if labels:
            exposition.labels[name] = labels
    return exposition


# -- the /metrics endpoint -----------------------------------------------------


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Serve ``/metrics`` and ``/healthz`` for one :class:`MetricsServer`."""

    # Set by MetricsServer via the handler class attribute.
    server_ref: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server_ref.scrape().encode("utf-8")
            self._reply(200, "text/plain; version=0.0.4; charset=utf-8",
                        body)
        elif path == "/healthz":
            payload = json.dumps(self.server_ref.health())
            self._reply(200, "application/json", payload.encode("utf-8"))
        else:
            self._reply(404, "text/plain; charset=utf-8",
                        b"not found: try /metrics or /healthz\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are high-frequency; never narrate them to stderr."""


class MetricsServer:
    """A ``/metrics`` + ``/healthz`` HTTP endpoint over one registry.

    Zero-dependency (stdlib :class:`ThreadingHTTPServer`) and inert
    until :meth:`start` — constructing one opens no socket and spawns no
    thread, preserving the pay-for-what-you-use contract. ``port=0``
    binds an ephemeral port (the bound port is returned by ``start`` and
    exposed as :attr:`port`), which is what the tests use.

    Scrapes read the live registry from the server thread. That is safe
    by construction: the renderer snapshots the instrument dicts before
    iterating, counters/gauges are single-slot reads, and histogram bin
    lists are only appended under the GIL — a racing scrape sees a
    slightly stale but well-formed exposition.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        if port < 0 or port > 65535:
            raise ConfigurationError("port must be in [0, 65535]")
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self.scrapes = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        if self._httpd is not None:
            return int(self._httpd.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the endpoint, e.g. ``http://127.0.0.1:9184``."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> int:
        """Bind the socket, spawn the daemon serving thread; the port."""
        if self._httpd is not None:
            return self.port
        handler = type("BoundTelemetryHandler", (_TelemetryHandler,),
                       {"server_ref": self})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name=f"repro-metrics-:{self.port}", daemon=True)
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the endpoint down; idempotent."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- request bodies ----------------------------------------------------

    def scrape(self) -> str:
        """One exposition payload (also counts ``telemetry.scrapes``)."""
        self.scrapes += 1
        self.registry.counter("telemetry.scrapes").inc()
        return render_exposition(self.registry)

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` payload."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {"status": "ok", "pid": os.getpid(),
                "uptime_seconds": round(uptime, 3),
                "scrapes": self.scrapes,
                "metrics": len(self.registry.names())}


# -- periodic resource sampling ------------------------------------------------


def _read_proc_self_status() -> Dict[str, int]:
    """``VmRSS``/``VmHWM`` in bytes from ``/proc/self/status`` (Linux).

    Returns an empty dict on platforms without procfs; the sampler then
    simply publishes no RSS gauges rather than failing.
    """
    fields: Dict[str, int] = {}
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(("VmRSS:", "VmHWM:")):
                    key, value = line.split(":", 1)
                    fields[key] = int(value.split()[0]) * 1024
    except OSError:
        return {}
    return fields


class ResourceSampler:
    """Publish process-health gauges into a registry on an interval.

    Entirely opt-in: nothing samples until :meth:`start` (or an explicit
    :meth:`sample_once`, which is also the synchronous form the tests
    drive). Each sweep publishes:

    - ``process.rss_bytes`` / ``process.rss_peak_bytes`` — resident set
      from ``/proc/self/status`` (absent off-Linux);
    - ``process.cpu_seconds`` — cumulative user+system CPU
      (:func:`os.times`);
    - ``process.gc_gen{0,1,2}_pending`` and ``..._collections`` — live
      allocation pressure and cumulative collector activity;
    - ``process.threads`` — :func:`threading.active_count`;
    - ``obs.sink.<Type>.depth`` — per-sink depth for any dispatcher
      sinks exposing ``__len__`` or ``written`` (ring occupancy, JSONL
      records written): the dispatcher queue-depth view;
    - one gauge per caller-supplied probe (``{name: callable}``), which
      is how the sweep engine's per-cell progress reaches the plane;

    plus a ``telemetry.samples`` counter so a dashboard can tell a live
    sampler from a stale snapshot.
    """

    def __init__(self, registry: MetricsRegistry,
                 interval: float = 1.0,
                 probes: Optional[Dict[str, Callable[[], float]]] = None,
                 dispatcher: Optional[EventDispatcher] = None) -> None:
        if interval <= 0:
            raise ConfigurationError("sampling interval must be positive")
        self.registry = registry
        self.interval = interval
        self.probes: Dict[str, Callable[[], float]] = dict(probes or {})
        self.dispatcher = dispatcher
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        """True while the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register an extra gauge probe (sampled from the next sweep on)."""
        self.probes[name] = fn

    def sample_once(self) -> None:
        """Take one sample synchronously (what the thread loops on)."""
        registry = self.registry
        status = _read_proc_self_status()
        if "VmRSS" in status:
            registry.set_gauge("process.rss_bytes", status["VmRSS"])
        if "VmHWM" in status:
            registry.set_gauge("process.rss_peak_bytes", status["VmHWM"])
        times = os.times()
        registry.set_gauge("process.cpu_seconds", times.user + times.system)
        for generation, pending in enumerate(gc.get_count()):
            registry.set_gauge(f"process.gc_gen{generation}_pending",
                               pending)
        for generation, stats in enumerate(gc.get_stats()):
            registry.set_gauge(f"process.gc_gen{generation}_collections",
                               stats.get("collections", 0))
        registry.set_gauge("process.threads", threading.active_count())
        if self.dispatcher is not None:
            self._sample_sinks()
        for name, fn in list(self.probes.items()):
            try:
                registry.set_gauge(name, float(fn()))
            except Exception:
                # A dead probe (e.g. reading a torn-down sweep) must not
                # kill the sampling thread mid-run.
                continue
        registry.counter("telemetry.samples").inc()

    def _sample_sinks(self) -> None:
        """Publish a depth gauge per introspectable dispatcher sink."""
        assert self.dispatcher is not None
        seen: Dict[str, int] = {}
        for sink in self.dispatcher.sinks:
            depth: Optional[float] = None
            if hasattr(sink, "__len__"):
                depth = float(len(sink))  # type: ignore[arg-type]
            elif hasattr(sink, "written"):
                depth = float(sink.written)
            if depth is None:
                continue
            kind = type(sink).__name__
            index = seen.get(kind, 0)
            seen[kind] = index + 1
            suffix = f".{index}" if index else ""
            self.registry.set_gauge(f"obs.sink.{kind}{suffix}.depth", depth)

    # -- thread lifecycle --------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Spawn the daemon sampling thread (samples immediately)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample; idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        # The final sample closes the ledger: gauges reflect process
        # state at sweep end, not at the last interval tick.
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.sample_once()
            except Exception:
                # Sampling must never take the host process down.
                pass
            self._stop.wait(self.interval)
