"""Metrics registry: named counters, gauges, and histograms.

The event stream (:mod:`repro.obs.events`) answers "what happened, in
order"; the registry answers "where are we now". It is the export surface
for instruments that already exist in the codebase — e.g.
:class:`repro.core.lruk.LRUKStats` is published through gauges — and for
new ones. Histogram instruments reuse the statistics layer
(:class:`repro.stats.Histogram` bins + :class:`repro.stats.StreamingMoments`
for exact moments), so quantiles and means stay O(1)-per-observation.

A registry renders to a flat ``{name: value}`` snapshot suitable for a
:class:`~repro.obs.events.SnapshotEvent` payload or a JSON report.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..stats import Histogram, StreamingMoments


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add to the count (negative increments are rejected)."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value: either set directly or read from a callable.

    Callable-backed gauges make exporting live objects trivial::

        registry.gauge("lruk.evictions", lambda: policy.stats.evictions)
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Pin the gauge to a value (only for non-callable gauges)."""
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callable-backed; cannot set")
        self._value = value

    def read(self) -> float:
        """The current value."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class HistogramMetric:
    """A distribution instrument: binned quantiles + exact moments."""

    __slots__ = ("name", "_histogram", "_moments")

    def __init__(self, name: str, low: float, high: float,
                 bins: int = 64) -> None:
        self.name = name
        self._histogram = Histogram(low, high, bins)
        self._moments = StreamingMoments()

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._histogram.add(value)
        self._moments.add(value)

    @property
    def low(self) -> float:
        """Lower edge of the binning range."""
        return self._histogram.low

    @property
    def high(self) -> float:
        """Upper edge of the binning range."""
        return self._histogram.high

    @property
    def bins(self) -> int:
        """Number of uniform bins."""
        return self._histogram.bins

    def state(self) -> Dict[str, object]:
        """A picklable snapshot: binning, per-bin counts, raw moments.

        The process-boundary relay form (see
        :meth:`MetricsRegistry.histogram_values`): bin counts and
        observation counts merge exactly; the Welford mean merges via
        the Chan parallel formula, which can differ from a sequential
        fold in the last ulp.
        """
        return {"low": self._histogram.low, "high": self._histogram.high,
                "bins": self._histogram.bins,
                "counts": self._histogram.counts,
                "moments": list(self._moments.state())}

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a relayed :meth:`state` snapshot into this instrument."""
        if (state["low"], state["high"], state["bins"]) != (
                self.low, self.high, self.bins):
            raise ConfigurationError(
                f"histogram {self.name!r} binning mismatch: cannot merge "
                f"[{state['low']}, {state['high']})/{state['bins']} into "
                f"[{self.low}, {self.high})/{self.bins}")
        self._histogram.merge_counts(list(state["counts"]))
        self._moments = self._moments.merge(
            StreamingMoments.restore(tuple(state["moments"])))

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._moments.count

    @property
    def mean(self) -> float:
        """Exact mean of all observations."""
        return self._moments.mean

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile (bin-interpolated).

        Total: an empty histogram has no quantiles, so this returns
        ``None`` rather than the binning range's lower bound (which is a
        configuration artifact, not an observation, and silently skewed
        dashboards that averaged percentiles across runs).
        """
        if self._moments.count == 0:
            return None
        return self._histogram.quantile(q)

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99 as a flat dict.

        Percentile keys are omitted while the histogram is empty (they
        have no defined value), so a snapshot never fabricates numbers.
        """
        out = {"count": float(self.count), "mean": self.mean}
        if self.count:
            for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                quantile = self.quantile(q)
                assert quantile is not None
                out[key] = quantile
        return out


class MetricsRegistry:
    """A namespace of uniquely named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, HistogramMetric] = {}
        #: Which relayed worker last wrote each merged gauge (see
        #: :meth:`merge_gauges`); the exposition renderer surfaces it as
        #: a ``worker`` label.
        self._gauge_sources: Dict[str, str] = {}

    def _claim(self, name: str) -> None:
        if (name in self._counters or name in self._gauges
                or name in self._histograms):
            raise ConfigurationError(f"duplicate metric name {name!r}")

    def counter(self, name: str) -> Counter:
        """Create (or fetch) the counter with this name."""
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        self._claim(name)
        counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Create a gauge; re-registering a name raises."""
        self._claim(name)
        gauge = self._gauges[name] = Gauge(name, fn)
        return gauge

    def set_gauge(self, name: str, value: float) -> Gauge:
        """Get-or-create the non-callable gauge ``name`` and set it.

        The instrument form used by periodically *published* values —
        the runner's per-run gauges and the
        :class:`~repro.obs.telemetry.ResourceSampler` — where the
        publisher runs repeatedly and re-registration must not raise.
        Callable-backed gauges (live views) keep their reject-on-set
        semantics: publishing over one raises.
        """
        existing = self._gauges.get(name)
        if existing is None:
            self._claim(name)
            existing = self._gauges[name] = Gauge(name)
        existing.set(float(value))
        return existing

    def histogram(self, name: str, low: float, high: float,
                  bins: int = 64) -> HistogramMetric:
        """Create (or fetch) the histogram instrument over ``[low, high)``.

        Re-registering the same name with the *same* binning returns the
        existing instrument (so per-run drivers and worker-relay merges
        can both use get-or-create); a different binning raises.
        """
        existing = self._histograms.get(name)
        if existing is not None:
            if (existing.low, existing.high, existing.bins) != (
                    low, high, bins):
                raise ConfigurationError(
                    f"histogram {name!r} already registered with binning "
                    f"[{existing.low}, {existing.high})/{existing.bins}")
            return existing
        self._claim(name)
        histogram = self._histograms[name] = HistogramMetric(
            name, low, high, bins)
        return histogram

    def percentile(self, name: str, q: float) -> Optional[float]:
        """The q-quantile of the named histogram, if it has one.

        Total over both failure modes: an unregistered name and an empty
        histogram both yield ``None`` (previously the former raised and
        the latter reported the binning range's lower bound).
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            return None
        return histogram.quantile(q)

    def counter_values(self) -> Dict[str, int]:
        """Every counter's current value (the worker-relay payload)."""
        return {name: counter.value
                for name, counter in self._counters.items()}

    def merge_counters(self, values: Dict[str, int]) -> None:
        """Fold another registry's counter values into this one.

        How forked sweep workers' deltas reach the parent: each worker
        accumulates into a private registry, relays
        :meth:`counter_values` over the result channel, and the parent
        merges — counters are sums, so merging is exact and
        order-independent.
        """
        for name, value in values.items():
            self.counter(name).inc(value)

    def gauge_values(self) -> Dict[str, float]:
        """Every *non-callable* gauge's current value (worker relay form).

        Callable-backed gauges are live views of worker-local objects
        that die with the worker, so they are excluded — relaying their
        final reading would freeze a "live" instrument at a stale value
        without marking it as such.
        """
        return {name: gauge.read() for name, gauge in self._gauges.items()
                if gauge._fn is None}

    def merge_gauges(self, values: Dict[str, float],
                     worker: Optional[str] = None) -> None:
        """Fold relayed gauge snapshots in, last-write-wins.

        The counterpart of :meth:`merge_counters` for point-in-time
        instruments: forked sweep workers snapshot their non-callable
        gauges at cell exit (:meth:`gauge_values`) and the parent merges
        them as cells complete, so ``--serve-metrics`` exposes
        worker-side gauges mid-sweep. Gauges are *not* additive; the
        most recently merged cell wins, and ``worker`` records which
        worker wrote the surviving value (exposed as a ``worker`` label
        in the Prometheus exposition). Names already claimed by a
        callable-backed gauge in this registry are skipped — a live
        parent-side view must not be overwritten by a dead snapshot.
        """
        for name, value in values.items():
            existing = self._gauges.get(name)
            if existing is not None and existing._fn is not None:
                continue
            self.set_gauge(name, value)
            if worker is not None:
                self._gauge_sources[name] = worker

    def gauge_source(self, name: str) -> Optional[str]:
        """The worker that last wrote a merged gauge, if relayed."""
        return self._gauge_sources.get(name)

    def counters(self) -> Dict[str, Counter]:
        """A shallow copy of the counter instruments by name."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        """A shallow copy of the gauge instruments by name."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, HistogramMetric]:
        """A shallow copy of the histogram instruments by name."""
        return dict(self._histograms)

    def histogram_values(self) -> Dict[str, Dict[str, object]]:
        """Every histogram's :meth:`~HistogramMetric.state` (worker relay).

        The counterpart of :meth:`counter_values` for distribution
        instruments, so ``--metrics-out`` histograms agree between
        ``--jobs N`` and serial runs instead of silently dropping worker
        observations. Callable-backed gauges are not relayed (they are
        live views of worker-local objects that die with the worker);
        non-callable gauges travel separately via :meth:`gauge_values`.
        """
        return {name: histogram.state()
                for name, histogram in self._histograms.items()}

    def merge_histograms(self, states: Dict[str, Dict[str, object]]) -> None:
        """Fold relayed histogram states into this registry.

        Bin counts and observation counts merge exactly (sums) and are
        therefore order-independent; means merge via Chan's parallel
        formula, which is order-sensitive only in the last ulp. The
        sweep engine merges each cell's state as it completes so a live
        ``/metrics`` scrape sees histogram buckets mid-sweep.
        """
        for name, state in states.items():
            histogram = self.histogram(
                name, float(state["low"]), float(state["high"]),
                int(state["bins"]))
            histogram.merge_state(state)

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument into ``{name: value}``.

        Histograms expand to ``name.count/.mean/.p50/.p95/.p99``.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = gauge.read()
        for name, histogram in self._histograms.items():
            for key, value in histogram.summary().items():
                out[f"{name}.{key}"] = value
        return dict(sorted(out.items()))
