"""Hierarchical span tracing with Chrome trace-event export.

The event stream (:mod:`repro.obs.events`) records *decisions*; spans
record *where the time went*. A :class:`Span` is one named interval —
``sweep``, ``cell``, ``simulate``, ``warmup``, ``measure``,
``policy-hook`` — carrying wall-clock and CPU duration, a parent link,
and the recording process/thread ids. A :class:`Tracer` owns an open-span
stack (so nesting falls out of ``with`` blocks) plus the list of
completed spans, and exports them in the Chrome trace-event JSON format
loadable in Perfetto / ``chrome://tracing``.

Ambient activation mirrors :mod:`repro.obs.runtime`: drivers many layers
below the CLI call :func:`maybe_span`, which is a no-op (one module
lookup and a ``None`` test) when no tracer is active, so un-traced runs
pay nothing on the per-run paths and exactly nothing on the per-reference
hot path (which is never instrumented with spans).

Cross-process relay
-------------------
Spans use *absolute* wall-clock timestamps (``time.time_ns``), so spans
recorded in a forked sweep worker line up with the parent's timeline
without clock translation. Workers serialize completed spans to plain
dicts (:meth:`Tracer.serialize`) over the existing result channel and the
parent re-parents them with :meth:`Tracer.absorb` — worker root spans
become children of the parent-side ``cell`` span, and every absorbed
span is re-numbered into the parent's id space.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current",
    "deactivate",
    "maybe_span",
    "write_chrome_trace",
]


@dataclass
class Span:
    """One named time interval in the pipeline hierarchy."""

    name: str
    span_id: int
    parent_id: Optional[int]
    #: Absolute wall-clock start, microseconds since the Unix epoch.
    start_us: int
    #: Wall-clock duration in microseconds (0 while still open).
    duration_us: int
    #: CPU (process) time consumed during the span, microseconds.
    cpu_us: int
    pid: int
    tid: int
    category: str = "repro"
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_us(self) -> int:
        """Absolute wall-clock end, microseconds since the epoch."""
        return self.start_us + self.duration_us

    def to_dict(self) -> Dict[str, object]:
        """A picklable/JSON-serializable record (for the worker relay)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "cpu_us": self.cpu_us,
            "pid": self.pid,
            "tid": self.tid,
            "category": self.category,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=str(record["name"]),
            span_id=int(record["span_id"]),  # type: ignore[arg-type]
            parent_id=(None if record["parent_id"] is None
                       else int(record["parent_id"])),  # type: ignore[arg-type]
            start_us=int(record["start_us"]),  # type: ignore[arg-type]
            duration_us=int(record["duration_us"]),  # type: ignore[arg-type]
            cpu_us=int(record["cpu_us"]),  # type: ignore[arg-type]
            pid=int(record["pid"]),  # type: ignore[arg-type]
            tid=int(record["tid"]),  # type: ignore[arg-type]
            category=str(record.get("category", "repro")),
            args=dict(record.get("args", {})),  # type: ignore[arg-type]
        )


class Tracer:
    """Record a tree of spans; export them as a Chrome trace.

    Parameters
    ----------
    profile_hooks:
        When True (default), the measurement protocol wraps traced
        policies in :class:`repro.obs.ProfiledPolicy` and records one
        aggregate ``policy-hook`` span per protocol hook under each
        ``simulate`` span. Decision-transparent, but roughly doubles
        per-reference cost while tracing; pass False for pure pipeline
        timing.
    """

    def __init__(self, profile_hooks: bool = True) -> None:
        self.spans: List[Span] = []
        self.profile_hooks = profile_hooks
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording ---------------------------------------------------------------

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def current_span_id(self) -> Optional[int]:
        """The innermost open span's id, or None at the root."""
        return self._stack[-1].span_id if self._stack else None

    @contextmanager
    def span(self, name: str, category: str = "repro",
             **args: object) -> Iterator[Span]:
        """Open a span for the extent of the ``with`` block.

        The yielded :class:`Span` is live: callers may add ``args``
        entries while it is open. Parentage follows the open-span stack.
        """
        opened = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=self.current_span_id(),
            start_us=time.time_ns() // 1_000,
            duration_us=0,
            cpu_us=0,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
            category=category,
            args=dict(args),
        )
        wall_0 = time.perf_counter_ns()
        cpu_0 = time.process_time_ns()
        self._stack.append(opened)
        try:
            yield opened
        finally:
            opened.duration_us = (time.perf_counter_ns() - wall_0) // 1_000
            opened.cpu_us = (time.process_time_ns() - cpu_0) // 1_000
            self._stack.pop()
            self.spans.append(opened)

    def record(self, name: str, start_us: int, duration_us: int,
               cpu_us: int = 0, parent_id: Optional[int] = None,
               category: str = "repro", pid: Optional[int] = None,
               tid: Optional[int] = None, **args: object) -> Span:
        """Record an already-measured (synthetic) span.

        Used for aggregate ``policy-hook`` spans and for the parent-side
        ``cell`` envelopes synthesized around relayed worker spans. When
        ``parent_id`` is None the span parents under the innermost open
        span, like :meth:`span`.
        """
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=(parent_id if parent_id is not None
                       else self.current_span_id()),
            start_us=start_us,
            duration_us=duration_us,
            cpu_us=cpu_us,
            pid=os.getpid() if pid is None else pid,
            tid=(threading.get_ident() & 0xFFFFFFFF) if tid is None else tid,
            category=category,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    # -- cross-process relay -------------------------------------------------------

    def serialize(self) -> List[Dict[str, object]]:
        """Completed spans as plain dicts (picklable over a result channel)."""
        return [span.to_dict() for span in self.spans]

    def absorb(self, payload: List[Dict[str, object]],
               parent_id: Optional[int] = None) -> List[Span]:
        """Adopt spans serialized by another tracer (a forked worker).

        Every span is re-numbered into this tracer's id space; spans that
        were roots in the worker (``parent_id`` None) are re-parented
        under ``parent_id`` — the parent-side ``cell`` span. Returns the
        adopted spans.
        """
        remap: Dict[int, int] = {}
        adopted: List[Span] = []
        for record in payload:
            span = Span.from_dict(record)
            remap[span.span_id] = self._allocate_id()
            adopted.append(span)
        for span in adopted:
            old_parent = span.parent_id
            span.span_id = remap[span.span_id]
            if old_parent is None:
                span.parent_id = parent_id
            else:
                span.parent_id = remap.get(old_parent, parent_id)
        self.spans.extend(adopted)
        return adopted

    # -- export ---------------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object for the recorded spans.

        Complete (``"ph": "X"``) events, timestamps normalized so the
        earliest span starts at 0, one ``process_name`` metadata record
        per pid. Loadable in Perfetto / ``chrome://tracing``.
        """
        spans = list(self.spans) + list(self._stack)
        origin = min((span.start_us for span in spans), default=0)
        events: List[Dict[str, object]] = []
        parent_pid = os.getpid()
        for pid in sorted({span.pid for span in spans}):
            label = "sweep parent" if pid == parent_pid else f"worker-{pid}"
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": label}})
        for span in spans:
            args = dict(span.args)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_span_id"] = span.parent_id
            args["cpu_us"] = span.cpu_us
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us - origin,
                "dur": span.duration_us,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # -- inspection -------------------------------------------------------------------

    def find(self, name: Optional[str] = None,
             category: Optional[str] = None) -> List[Span]:
        """Completed spans filtered by name and/or category."""
        return [span for span in self.spans
                if (name is None or span.name == name)
                and (category is None or span.category == category)]

    def children_of(self, span_id: int) -> List[Span]:
        """Completed spans whose parent is the given span."""
        return [span for span in self.spans if span.parent_id == span_id]


def write_chrome_trace(path: str, tracer: Tracer) -> None:
    """Write the tracer's spans to ``path`` as Chrome trace-event JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(tracer.to_chrome(), handle, separators=(",", ":"))
        handle.write("\n")


# -- ambient tracer (mirrors repro.obs.runtime) --------------------------------

_active: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The tracer activated for the current dynamic extent, if any."""
    return _active


def deactivate() -> None:
    """Clear the ambient tracer unconditionally.

    Forked sweep workers inherit the parent's tracer object; appending to
    it from a child is invisible to the parent and would pollute the
    worker's own relay payload, so worker tasks clear it first and build
    a fresh tracer when the job asks for one.
    """
    global _active
    _active = None


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` ambient for the extent of the ``with`` block."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


@contextmanager
def maybe_span(name: str, category: str = "repro",
               **args: object) -> Iterator[Optional[Span]]:
    """Open a span on the ambient tracer, or do nothing when none is active."""
    tracer = _active
    if tracer is None:
        yield None
        return
    with tracer.span(name, category=category, **args) as span:
        yield span
