"""``repro top`` — a live ANSI terminal dashboard over ``/metrics``.

A curses-free counterpart of ``top(1)`` for a running sweep: poll the
``--serve-metrics`` endpoint (or read the final ``snapshot`` record of a
``--metrics-out`` JSONL file), derive rates from successive scrapes, and
render one compact frame per interval — windowed hit ratio, references
per second, cell completion, the fault-tolerance counters from the
resilient sweep engine, and the :class:`~repro.obs.telemetry
.ResourceSampler` gauges.

Everything here is plain string assembly over
:func:`~repro.obs.telemetry.parse_exposition`, so the frame builder is
directly testable without a terminal, an HTTP server, or timing.
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.error
import urllib.request
from typing import IO, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .telemetry import Exposition, HistogramSeries, parse_exposition

__all__ = ["fetch_url", "read_snapshot_file", "render_frame", "run_top"]

#: ANSI fragments, keyed so rendering can run colorless for tests/pipes.
_CODES = {"reset": "\x1b[0m", "bold": "\x1b[1m", "dim": "\x1b[2m",
          "red": "\x1b[31m", "green": "\x1b[32m", "yellow": "\x1b[33m",
          "cyan": "\x1b[36m"}
_CLEAR = "\x1b[2J\x1b[H"

_BLOCKS = " ▏▎▍▌▋▊▉█"


def fetch_url(url: str, timeout: float = 2.0) -> Exposition:
    """Scrape one exposition payload from a ``/metrics`` endpoint."""
    if not url.endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8", errors="replace")
    return parse_exposition(text)


def read_snapshot_file(path: str) -> Exposition:
    """Build an exposition view from a ``--metrics-out`` JSONL file.

    Uses the *last* ``snapshot`` event's counters — the flattened
    registry (``protocol.hits``, ``protocol.run_hit_ratio.p50``, ...).
    Dotted names are kept as-is; :meth:`Exposition.value` resolves both
    spellings, so the frame builder is source-agnostic.
    """
    exposition = Exposition()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # tolerate a torn tail while the run writes
            if record.get("event") != "snapshot":
                continue
            counters = record.get("counters")
            if not isinstance(counters, dict):
                continue
            samples = {name: float(value)
                       for name, value in counters.items()
                       if isinstance(value, (int, float))}
            if samples:
                exposition.samples = samples
    return exposition


# -- frame assembly ------------------------------------------------------------

_TENANT_HITS = re.compile(
    r"^service[._]tenant[._](?P<tenant>.+)[._]hits$")


def _tenant_rows(exposition: Exposition
                 ) -> List[Tuple[str, float, float]]:
    """``(tenant, hits, misses)`` rows from either name spelling.

    Tenant counters arrive as ``service_tenant_<t>_hits`` from a
    ``/metrics`` scrape and as ``service.tenant.<t>.hits`` from a
    snapshot file; both reduce to the same rows, sorted by tenant.
    """
    rows: List[Tuple[str, float, float]] = []
    for name in exposition.samples:
        match = _TENANT_HITS.match(name)
        if match is None:
            continue
        tenant = match.group("tenant")
        misses_name = name[:-len("hits")] + "misses"
        rows.append((tenant, exposition.samples[name],
                     exposition.value(misses_name, 0.0)))
    return sorted(rows)


def _bar(fraction: float, width: int = 24) -> str:
    """A unicode block-character progress bar for ``fraction`` in [0,1]."""
    fraction = max(0.0, min(1.0, fraction))
    eighths = round(fraction * width * 8)
    full, rem = divmod(eighths, 8)
    bar = "█" * full + (_BLOCKS[rem] if rem else "")
    return bar.ljust(width)


def _human_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return (f"{value:,.0f} {unit}" if unit == "B"
                    else f"{value:,.1f} {unit}")
        value /= 1024.0
    return f"{value:,.1f} TiB"


def _hist_stats(exposition: Exposition, name: str
                ) -> Optional[Dict[str, float]]:
    """count/mean/p50/p95 for a histogram, from buckets or flat keys."""
    series: Optional[HistogramSeries] = exposition.histograms.get(name)
    if series is not None and series.count:
        stats = {"count": float(series.count), "mean": series.mean}
        for key, q in (("p50", 0.50), ("p95", 0.95)):
            quantile = series.quantile(q)
            if quantile is not None:
                stats[key] = quantile
        return stats
    dotted = name.replace("protocol_", "protocol.")
    count = exposition.value(f"{dotted}.count", 0.0)
    if count:
        return {key: exposition.value(f"{dotted}.{key}", 0.0)
                for key in ("count", "mean", "p50", "p95")}
    return None


def _bucket_sketch(series: HistogramSeries, groups: int = 16) -> str:
    """Collapse the cumulative bucket ladder into a density strip."""
    finite = [(edge, cum) for edge, cum in series.buckets
              if edge != float("inf")]
    if len(finite) < 2:
        return ""
    per_bin: List[int] = []
    previous = 0
    for _, cumulative in finite:
        per_bin.append(max(0, cumulative - previous))
        previous = cumulative
    size = max(1, len(per_bin) // groups)
    grouped = [sum(per_bin[i:i + size])
               for i in range(0, len(per_bin), size)]
    peak = max(grouped)
    if peak == 0:
        return ""
    strip = "".join(_BLOCKS[min(8, round(count / peak * 8))]
                    for count in grouped)
    low = finite[0][0] - (finite[1][0] - finite[0][0])
    return f"{low:.2f} ▕{strip}▏ {finite[-1][0]:.2f}"


def render_frame(current: Exposition,
                 previous: Optional[Exposition] = None,
                 elapsed: Optional[float] = None,
                 source: str = "", color: bool = False) -> str:
    """Build one dashboard frame as a plain string.

    ``previous``/``elapsed`` enable the rate-derived lines (references
    per second, windowed hit ratio over the poll interval); without them
    the frame falls back to cumulative ratios, which is also the
    ``--once`` and snapshot-file behavior.
    """
    def paint(code: str, text: str) -> str:
        if not color:
            return text
        return f"{_CODES[code]}{text}{_CODES['reset']}"

    def delta(name: str) -> Optional[float]:
        if previous is None or not previous.has(name):
            return None
        return current.value(name) - previous.value(name)

    lines: List[str] = []
    stamp = time.strftime("%H:%M:%S")
    header = f"repro top — {source or 'registry'} — {stamp}"
    lines.append(paint("bold", header))

    # -- sweep progress
    total = current.value("sweep.cells_total", 0.0)
    done = current.value("sweep.cells_done", 0.0)
    if total:
        fraction = done / total
        lines.append(
            f"  sweep    {paint('cyan', _bar(fraction))} "
            f"{int(done)}/{int(total)} cells ({fraction:.0%})")

    # -- throughput
    refs = current.value("protocol.references", 0.0)
    d_refs = delta("protocol.references")
    if d_refs is not None and elapsed and elapsed > 0:
        rate = d_refs / elapsed
        lines.append(f"  refs/sec {rate:>14,.0f}"
                     f"   (total {refs:,.0f})")
    elif refs:
        lines.append(f"  refs     {refs:>14,.0f}   (rate needs two polls)")

    hits, misses = (current.value("protocol.hits", 0.0),
                    current.value("protocol.misses", 0.0))
    d_hits, d_misses = delta("protocol.hits"), delta("protocol.misses")
    if (d_hits is not None and d_misses is not None
            and d_hits + d_misses > 0):
        window_ratio = d_hits / (d_hits + d_misses)
        lines.append(f"  hit window {_bar(window_ratio, 20)} "
                     f"{window_ratio:.4f} (this poll)")
    elif hits + misses > 0:
        ratio = hits / (hits + misses)
        lines.append(f"  hit ratio  {_bar(ratio, 20)} {ratio:.4f} "
                     "(cumulative)")

    # -- run hit-ratio distribution
    stats = _hist_stats(current, "protocol_run_hit_ratio")
    if stats:
        parts = [f"runs {int(stats.get('count', 0))}",
                 f"mean {stats.get('mean', 0.0):.4f}"]
        if "p50" in stats:
            parts.append(f"p50 {stats['p50']:.4f}")
        if "p95" in stats:
            parts.append(f"p95 {stats['p95']:.4f}")
        lines.append("  run C    " + "  ".join(parts))
        series = current.histograms.get("protocol_run_hit_ratio")
        if series is not None:
            sketch = _bucket_sketch(series)
            if sketch:
                lines.append(f"           {sketch}")

    # -- served buffer manager (repro serve-bench)
    service_requests = current.value("service.requests", 0.0)
    if service_requests:
        d_requests = delta("service.requests")
        if d_requests is not None and elapsed and elapsed > 0:
            lines.append(f"  service  {d_requests / elapsed:>14,.0f} req/s"
                         f"   (total {service_requests:,.0f})")
        else:
            lines.append(f"  service  requests {service_requests:>12,.0f}")
        s_hits = current.value("service.hits", 0.0)
        s_misses = current.value("service.misses", 0.0)
        if s_hits + s_misses > 0:
            ratio = s_hits / (s_hits + s_misses)
            lines.append(f"  svc hits   {_bar(ratio, 20)} {ratio:.4f} "
                         "(cumulative)")
        latency = current.histograms.get("service_request_ms")
        if latency is not None and latency.count:
            quantiles = [(label, latency.quantile(q))
                         for label, q in (("p50", 0.50), ("p99", 0.99),
                                          ("p999", 0.999))]
            rendered = "  ".join(f"{label} {value:.3f}"
                                 for label, value in quantiles
                                 if value is not None)
            lines.append(f"  svc ms   {rendered}")
        elif current.has("service.request_ms.count"):
            lines.append(
                "  svc ms   " + "  ".join(
                    f"{label} "
                    f"{current.value(f'service.request_ms.{label}'):.3f}"
                    for label in ("p50", "p95", "p99")
                    if current.has(f"service.request_ms.{label}")))
        for tenant, hits, misses in _tenant_rows(current):
            total_requests = hits + misses
            ratio = hits / total_requests if total_requests else 0.0
            lines.append(f"   tenant {tenant:<9} "
                         f"{_bar(ratio, 16)} {ratio:.4f} "
                         f"({int(total_requests):,} reqs)")

    # -- fault tolerance
    fault_names = (("retries", "sweep.cell.retries"),
                   ("timeouts", "sweep.cell.timeouts"),
                   ("fallbacks", "sweep.cell.fallbacks"),
                   ("failures", "sweep.cell.failures"),
                   ("rebuilds", "sweep.pool.rebuilds"))
    faults = [(label, current.value(name, 0.0))
              for label, name in fault_names]
    if any(current.has(name) for _, name in fault_names) or any(
            value for _, value in faults):
        rendered = "  ".join(
            paint("red" if value else "green", f"{label} {int(value)}")
            for label, value in faults)
        lines.append(f"  faults   {rendered}")

    # -- resources
    rss = current.value("process.rss_bytes", 0.0)
    cpu = current.value("process.cpu_seconds", 0.0)
    if rss or cpu:
        threads = current.value("process.threads", 0.0)
        gc2 = current.value("process.gc_gen2_collections", 0.0)
        lines.append(
            f"  process  rss {_human_bytes(rss)}  cpu {cpu:,.1f}s"
            f"  threads {int(threads)}  gc2 {int(gc2)}")

    # -- worker-relayed gauges
    workers = sorted({labels["worker"]
                      for name, labels in current.labels.items()
                      if "worker" in labels})
    if workers:
        lines.append(paint(
            "dim", f"  workers  last gauge writes from: "
                   f"{', '.join(workers)}"))

    if len(lines) == 1:
        lines.append("  (no samples yet — is the sweep serving metrics?)")
    return "\n".join(lines)


# -- the polling loop ----------------------------------------------------------


def run_top(url: Optional[str] = None, file: Optional[str] = None,
            interval: float = 1.0, frames: Optional[int] = None,
            once: bool = False, color: Optional[bool] = None,
            stream: Optional[IO[str]] = None) -> int:
    """Drive the dashboard loop; returns the process exit code.

    Exactly one of ``url``/``file`` selects the source. ``once`` renders
    a single colorless frame without touching the terminal (scriptable);
    otherwise frames repaint in place every ``interval`` seconds until
    ``frames`` runs out, the endpoint disappears (a finished sweep), or
    Ctrl-C.
    """
    if (url is None) == (file is None):
        raise ConfigurationError(
            "repro top needs exactly one of --url/--port or --file")
    if interval <= 0:
        raise ConfigurationError("poll interval must be positive")
    out = stream if stream is not None else sys.stdout
    paint = (out.isatty() if color is None else color) and not once
    source = url or file or ""

    def load() -> Exposition:
        if url is not None:
            return fetch_url(url)
        assert file is not None
        return read_snapshot_file(file)

    previous: Optional[Exposition] = None
    previous_at: Optional[float] = None
    rendered = 0
    try:
        while True:
            try:
                exposition = load()
            except (urllib.error.URLError, OSError) as exc:
                if previous is not None:
                    print("endpoint gone (sweep finished?): "
                          f"{exc}", file=out)
                    return 0
                print(f"cannot read {source}: {exc}", file=out)
                return 1
            now = time.monotonic()
            elapsed = (now - previous_at
                       if previous_at is not None else None)
            frame = render_frame(exposition, previous, elapsed,
                                 source=source, color=paint)
            if once or frames is not None:
                print(frame, file=out)
            else:
                out.write(_CLEAR + frame + "\n")
                out.flush()
            rendered += 1
            if once or (frames is not None and rendered >= frames):
                return 0
            previous, previous_at = exposition, now
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
