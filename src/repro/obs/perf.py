"""Perf-trajectory tracking: BENCH history records and regression checks.

``BENCH_overhead.json`` is a snapshot — it answers "how fast is this
checkout" and is overwritten on every bench run, so the repo had no
memory of whether the fused kernels are getting faster or slower. This
module gives the benches an append-only ledger:

- benches call :func:`append_record` after each run, adding one
  schema-versioned JSON line to ``BENCH_history.jsonl``;
- ``repro perf`` (:func:`check_regression` + :func:`render_report`)
  diffs the latest record against a baseline window of earlier records
  and exits non-zero when a watched metric (default: ``lruk_kernel``
  references/second) regresses beyond a threshold — the trajectory
  counterpart of CI's absolute ``lruk_kernel >= 1.5x lruk_heap`` gate.

Records whose metric is ``null`` (e.g. the A12d speedup on a
single-core machine, which records a ``skipped_reason`` instead of a
measurement) are skipped by both the baseline window and the verdict,
so an unmeasurable environment can never masquerade as a regression.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = [
    "HISTORY_SCHEMA",
    "PerfVerdict",
    "append_record",
    "load_history",
    "check_regression",
    "render_report",
    "default_history_path",
]

#: Schema version stamped into every history record. Bump when record
#: keys change shape, so trend tooling can detect rather than mis-join.
HISTORY_SCHEMA = 1

#: The default ledger file name, living next to ``BENCH_overhead.json``.
HISTORY_FILENAME = "BENCH_history.jsonl"


def default_history_path() -> str:
    """Where the ledger lives: ``$REPRO_BENCH_HISTORY`` or the cwd."""
    return os.environ.get("REPRO_BENCH_HISTORY", HISTORY_FILENAME)


def append_record(path: str, bench: str,
                  metrics: Dict[str, Optional[float]],
                  meta: Optional[Dict[str, object]] = None,
                  timestamp: Optional[str] = None) -> Dict[str, object]:
    """Append one schema-versioned record to the JSONL ledger.

    ``metrics`` maps metric name to a number or ``None`` (= the bench
    ran but could not measure this quantity here; see module docstring).
    ``meta`` carries environment context (core count, commit, scale) —
    anything a future reader needs to judge comparability. The record is
    written with one ``write`` call after the line is fully serialized,
    so a crash mid-append cannot leave a torn line before valid ones.
    """
    if not bench:
        raise ConfigurationError("history records need a bench name")
    record: Dict[str, object] = {
        "schema": HISTORY_SCHEMA,
        "bench": bench,
        "timestamp": timestamp if timestamp is not None else time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": {name: (None if value is None else float(value))
                    for name, value in metrics.items()},
    }
    if meta:
        record["meta"] = dict(meta)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: str, bench: Optional[str] = None
                 ) -> List[Dict[str, object]]:
    """Read the ledger, oldest first, tolerating a truncated tail.

    Lines that fail to parse, lack the record shape, or carry a schema
    *newer* than this reader understands are skipped — an interrupted
    append or a future writer must not brick ``repro perf``.
    """
    records: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if not isinstance(record.get("metrics"), dict):
                continue
            schema = record.get("schema")
            if not isinstance(schema, int) or schema > HISTORY_SCHEMA:
                continue
            if bench is not None and record.get("bench") != bench:
                continue
            records.append(record)
    return records


def _metric_value(record: Dict[str, object],
                  metric: str) -> Optional[float]:
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        return None
    value = metrics.get(metric)
    return float(value) if isinstance(value, (int, float)) else None


@dataclass
class PerfVerdict:
    """The outcome of diffing the latest record against its baseline.

    ``status`` is one of:

    - ``"ok"`` — the latest measurement is within threshold of (or
      better than) the baseline window's median;
    - ``"regression"`` — it fell more than ``threshold`` below it;
    - ``"insufficient"`` — no baseline window exists yet (fewer than
      two measured records), so there is nothing to diff against;
    - ``"skipped"`` — the latest record carries no measurement for this
      metric (a ``null`` row).

    Only ``"regression"`` is non-zero (:attr:`exit_code`): a young or
    unmeasurable ledger must not fail CI.
    """

    status: str
    metric: str
    threshold: float
    latest: Optional[float] = None
    baseline: Optional[float] = None
    window_values: List[float] = field(default_factory=list)
    message: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """latest / baseline, when both exist."""
        if self.latest is None or not self.baseline:
            return None
        return self.latest / self.baseline

    @property
    def exit_code(self) -> int:
        """Process exit code for ``repro perf``."""
        return 1 if self.status == "regression" else 0


def check_regression(records: List[Dict[str, object]], metric: str,
                     threshold: float = 0.10,
                     window: int = 5) -> PerfVerdict:
    """Diff the newest record's ``metric`` against a baseline window.

    The baseline is the *median* of up to ``window`` measured (non-null)
    values preceding the latest record — the median shrugs off a single
    anomalously fast or slow historical run that a mean would chase.
    A regression is ``latest < (1 - threshold) * baseline``. Higher is
    assumed better (the ledger records throughputs and speedups).
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    if window <= 0:
        raise ConfigurationError("baseline window must be positive")
    if not records:
        return PerfVerdict(status="insufficient", metric=metric,
                           threshold=threshold,
                           message="history is empty: nothing to diff")
    latest = _metric_value(records[-1], metric)
    if latest is None:
        return PerfVerdict(
            status="skipped", metric=metric, threshold=threshold,
            message=f"latest record has no measurement for {metric!r} "
                    "(null row); nothing to judge")
    earlier = [value for value in
               (_metric_value(record, metric) for record in records[:-1])
               if value is not None]
    window_values = earlier[-window:]
    if not window_values:
        return PerfVerdict(
            status="insufficient", metric=metric, threshold=threshold,
            latest=latest,
            message=f"no earlier measured records for {metric!r}: "
                    "baseline window is empty")
    baseline = float(median(window_values))
    verdict = PerfVerdict(status="ok", metric=metric, threshold=threshold,
                          latest=latest, baseline=baseline,
                          window_values=window_values)
    if baseline > 0 and latest < (1.0 - threshold) * baseline:
        verdict.status = "regression"
        drop = 1.0 - latest / baseline
        verdict.message = (
            f"{metric} regressed {drop:.1%} vs the {len(window_values)}"
            f"-record baseline median ({latest:,.0f} < "
            f"{(1 - threshold) * baseline:,.0f} allowed)")
    else:
        verdict.message = (
            f"{metric} within threshold: latest {latest:,.0f} vs baseline "
            f"median {baseline:,.0f} over {len(window_values)} record(s)")
    return verdict


_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: List[float]) -> str:
    """A tiny unicode trajectory of the metric, oldest to newest."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (high - low)
    return "".join(_SPARK[int((value - low) * scale)] for value in values)


def render_report(records: List[Dict[str, object]], verdict: PerfVerdict,
                  tail: int = 8) -> str:
    """A terminal report: recent trajectory table plus the verdict."""
    lines = [f"perf trajectory for {verdict.metric!r} "
             f"({len(records)} record(s) in history)"]
    shown = records[-tail:]
    values = []
    for record in shown:
        value = _metric_value(record, verdict.metric)
        stamp = str(record.get("timestamp", "?"))
        rendered = f"{value:>14,.0f}" if value is not None else (
            "       (null)")
        note = ""
        meta = record.get("meta")
        if value is None and isinstance(meta, dict):
            note = f"  [{meta.get('skipped_reason', 'unmeasured')}]"
        lines.append(f"  {stamp}  {rendered}{note}")
        if value is not None:
            values.append(value)
    if len(values) >= 2:
        lines.append(f"  trend: {_sparkline(values)}")
    if verdict.baseline is not None and verdict.latest is not None:
        assert verdict.ratio is not None
        lines.append(
            f"  baseline median {verdict.baseline:,.0f} | latest "
            f"{verdict.latest:,.0f} | ratio {verdict.ratio:.3f} | "
            f"threshold -{verdict.threshold:.0%}")
    lines.append(f"{verdict.status.upper()}: {verdict.message}")
    return "\n".join(lines)
