"""Per-hook latency profiling for replacement policies.

The paper claims LRU-K "is fairly simple and incurs little bookkeeping
overhead" (Sections 1.2, 2.1.3). A single wall-clock mean cannot defend
that claim against tail effects — a lazy heap that is O(log B) amortized
could still hide O(B) spikes in ``choose_victim``. :class:`ProfiledPolicy`
wraps any :class:`~repro.policies.base.ReplacementPolicy` and times every
protocol hook (``observe`` / ``on_hit`` / ``on_admit`` /
``choose_victim`` / ``on_evict``) with ``time.perf_counter``, reporting
p50/p95/p99 per hook. The wrapper is decision-transparent: it delegates
every call and attribute, so a profiled policy makes byte-identical
choices (property: same hit ratio, same evictions on the same stream).
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from ..errors import ConfigurationError
from ..policies.base import NO_EXCLUSIONS, ReplacementPolicy
from ..types import PageId

#: The protocol hooks a profile covers, in driver call order.
PROFILED_HOOKS = ("observe", "on_hit", "on_admit", "choose_victim",
                  "on_evict")


class HookProfile:
    """Latency samples (seconds) for one hook."""

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def add(self, seconds: float) -> None:
        """Record one invocation's duration."""
        self._samples.append(seconds)
        self._sorted = False

    @property
    def count(self) -> int:
        """Invocations recorded."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all durations (seconds)."""
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        """Mean duration (seconds); 0.0 when empty."""
        if not self._samples:
            return 0.0
        return self.total / len(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank q-percentile (seconds); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("percentile must be in [0, 1]")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(q * len(self._samples)))
        return self._samples[rank - 1]

    def summary_us(self) -> Dict[str, float]:
        """count plus p50/p95/p99/mean in microseconds."""
        return {
            "count": float(self.count),
            "mean": self.mean * 1e6,
            "p50": self.percentile(0.50) * 1e6,
            "p95": self.percentile(0.95) * 1e6,
            "p99": self.percentile(0.99) * 1e6,
        }


class ProfiledPolicy(ReplacementPolicy):
    """A decision-transparent, hook-timing wrapper around a policy."""

    def __init__(self, inner: ReplacementPolicy,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        super().__init__()
        self.inner = inner
        self._clock = clock
        self.profiles: Dict[str, HookProfile] = {
            hook: HookProfile(hook) for hook in PROFILED_HOOKS}
        self.name = f"profiled({inner.name})"

    # -- timed protocol delegation ------------------------------------------------

    def observe(self, reference, now: int) -> None:
        started = self._clock()
        self.inner.observe(reference, now)
        self.profiles["observe"].add(self._clock() - started)

    def on_hit(self, page: PageId, now: int) -> None:
        started = self._clock()
        self.inner.on_hit(page, now)
        self.profiles["on_hit"].add(self._clock() - started)

    def on_admit(self, page: PageId, now: int) -> None:
        started = self._clock()
        self.inner.on_admit(page, now)
        self.profiles["on_admit"].add(self._clock() - started)

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        started = self._clock()
        victim = self.inner.choose_victim(now, incoming=incoming,
                                          exclude=exclude)
        self.profiles["choose_victim"].add(self._clock() - started)
        return victim

    def on_evict(self, page: PageId, now: int) -> None:
        started = self._clock()
        self.inner.on_evict(page, now)
        self.profiles["on_evict"].add(self._clock() - started)

    # -- untimed delegation -------------------------------------------------------

    def prepare(self, trace: Sequence[PageId]) -> None:
        self.inner.prepare(trace)

    def make_kernel(self, capacity: int) -> None:
        """Never offer a fused kernel: profiling needs per-hook calls.

        Without this override ``__getattr__`` would hand out the inner
        policy's kernel and the fused loop would silently bypass every
        timed hook.
        """
        return None

    def make_batch_kernel(self, capacity: int) -> None:
        """Same as :meth:`make_kernel`: batch kernels bypass hooks too."""
        return None

    def reset(self) -> None:
        """Reset the wrapped policy; recorded profiles are kept."""
        self.inner.reset()

    def __contains__(self, page: PageId) -> bool:
        return page in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def resident_pages(self) -> FrozenSet[PageId]:
        return self.inner.resident_pages

    def __getattr__(self, name: str) -> Any:
        # Fall through for policy-specific surface (backward_k_distance,
        # stats, history, ...) so telemetry helpers see the real policy.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"ProfiledPolicy({self.inner!r})"

    # -- reporting ----------------------------------------------------------------

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-hook summaries (microseconds) for hooks that were called."""
        return {hook: profile.summary_us()
                for hook, profile in self.profiles.items()
                if profile.count}
