"""Sliding-window hit-ratio time series.

The paper's protocol reports one end-state hit ratio per run; the moving-
hotspot experiments (ablation A4, the Section 4 stability discussion)
need the *trajectory* — how fast a policy adapts when the hot set moves.
:class:`SlidingHitRatioWindow` maintains the hit ratio over the last
``window`` references in O(1) per access;
:class:`HitRatioWindowRecorder` is a dispatcher sink that samples it
every ``stride`` references, appends to an in-memory series, and
re-emits each sample as a :class:`~repro.obs.events.WindowEvent` so file
sinks and the timeline renderer see the series too.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .dispatcher import EventDispatcher, Sink
from .events import AccessEvent, ObsEvent, SnapshotEvent, WindowEvent


class SlidingHitRatioWindow:
    """Hit ratio over the most recent ``window`` references, O(1) updates."""

    __slots__ = ("window", "_outcomes", "_hits", "_count")

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.window = window
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._hits = 0
        self._count = 0

    def record(self, hit: bool) -> None:
        """Fold one access into the window."""
        if len(self._outcomes) == self.window and self._outcomes[0]:
            self._hits -= 1
        self._outcomes.append(hit)
        if hit:
            self._hits += 1
        self._count += 1

    @property
    def count(self) -> int:
        """Total accesses folded in (not capped by the window)."""
        return self._count

    @property
    def occupancy(self) -> int:
        """How many references currently fill the window."""
        return len(self._outcomes)

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over the window contents (0.0 while empty)."""
        if not self._outcomes:
            return 0.0
        return self._hits / len(self._outcomes)

    def reset(self) -> None:
        """Empty the window."""
        self._outcomes.clear()
        self._hits = 0
        self._count = 0


class HitRatioWindowRecorder(Sink):
    """Sink that turns the access stream into a windowed hit-ratio series.

    Attach it to the dispatcher whose access events it should consume::

        recorder = dispatcher.attach(HitRatioWindowRecorder(dispatcher))

    The window resets on every ``phase="start"`` snapshot, so runs stay
    separate; the per-run series is also kept in :attr:`series` keyed by
    the dispatcher context active at sample time.
    """

    def __init__(self, dispatcher: EventDispatcher,
                 window: int = 1000,
                 stride: Optional[int] = None) -> None:
        if stride is not None and stride <= 0:
            raise ConfigurationError("stride must be positive")
        self._dispatcher = dispatcher
        self._window = SlidingHitRatioWindow(window)
        self.stride = stride if stride is not None else max(1, window // 4)
        #: All samples, in emission order: (context copy, time, hit ratio).
        self.series: List[Tuple[Dict[str, object], int, float]] = []

    def handle(self, event: ObsEvent, context: Dict[str, object]) -> None:
        if isinstance(event, AccessEvent):
            self._window.record(event.hit)
            if self._window.count % self.stride == 0:
                sample = WindowEvent(
                    time=event.time,
                    hit_ratio=self._window.hit_ratio,
                    window=self._window.window,
                    count=self._window.occupancy)
                self.series.append(
                    (dict(context), event.time, sample.hit_ratio))
                self._dispatcher.emit(sample)
        elif isinstance(event, SnapshotEvent) and event.phase == "start":
            self._window.reset()
