"""Eviction decision provenance: *why* a page was dropped.

The paper's central claim (Section 2, Figure 2.1) is that LRU-K's
eviction choices are better informed than LRU's because they rank pages
by backward K-distance over retained history. Aggregate hit ratios can
confirm the outcome but cannot show the mechanism; this module records
the mechanism, one :class:`EvictionDecision` per victim choice:

- the victim and the backward K-distance it was chosen at;
- the top candidates considered, each with its HIST(q,K)/HIST(q,1) key
  (Definition 2.2's total order);
- which resident pages were *excluded* from consideration by the
  Correlated Reference Period (Section 2.1 — "the system should not drop
  a page immediately after its first reference");
- whether the victim's residency began from a retained HIST block
  (Section 2.1.2 Retained Information), i.e. whether history that
  survived a previous eviction influenced the choice;
- optionally, what Belady's B0 oracle would have evicted from the same
  resident set, and the per-eviction regret.

Capture is strictly pay-for-what-you-use: a policy carries
``provenance = None`` by default and its victim-selection hot path tests
exactly that one attribute (see :meth:`repro.core.lruk.LRUKPolicy
.choose_victim`). Attaching a :class:`ProvenanceRecorder` — as
``repro explain`` does — switches victim selection to an enumerating
scan that is decision-identical to the production heap selector (the two
share the same total order; uncorrelated reference times are unique, so
ties cannot occur).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
)

from ..errors import ConfigurationError
from ..types import PageId

#: ``next_use(page, now)`` -> the time of the page's next reference
#: strictly after ``now``, or None when it is never referenced again.
NextUseOracle = Callable[[PageId, int], Optional[int]]


@dataclass(frozen=True)
class CandidateInfo:
    """One resident page as the victim selector saw it."""

    page: PageId
    #: HIST(q, K): 0 means fewer than K uncorrelated references recorded.
    kth_time: int
    #: HIST(q, 1): time of the most recent uncorrelated reference.
    last_uncorrelated: int
    #: Backward K-distance b_t(q, K); None encodes infinity.
    backward_k_distance: Optional[float]
    #: Inside its Correlated Reference Period (ineligible).
    crp_protected: bool = False
    #: Excluded by the driver (pinned frame).
    excluded: bool = False
    #: This candidate was the one evicted.
    chosen: bool = False


@dataclass
class EvictionDecision:
    """The full provenance record of one victim choice."""

    time: int
    victim: PageId
    #: The victim's backward K-distance at decision time (None = infinite).
    victim_distance: Optional[float]
    #: The victim's HIST block contents (HIST(p,1) ... HIST(p,K)).
    victim_hist: List[int]
    #: The victim's LAST(p).
    victim_last: int
    #: Top candidates by the (HIST(q,K), HIST(q,1)) order, victim included.
    candidates: List[CandidateInfo]
    #: Eligible pages considered (may exceed ``len(candidates)``).
    considered: int
    #: Pages skipped because they sat inside their CRP (capped sample).
    crp_excluded: List[PageId]
    crp_excluded_total: int
    #: Pages the driver excluded (pinned), total.
    excluded_total: int
    #: No eligible page existed; the stalest correlated burst was evicted.
    forced: bool
    #: The victim's residency began from a retained HIST block
    #: (Section 2.1.2): history from before its last eviction informed
    #: this choice.
    retained_history: bool
    #: The page whose admission triggered the eviction, if known.
    incoming: Optional[PageId] = None
    #: Filled in by the driver after the eviction completes.
    dirty: Optional[bool] = None
    # -- Belady-regret annotation (None until a recorder with an oracle
    #    sees the decision) -----------------------------------------------------
    belady_victim: Optional[PageId] = None
    belady_agrees: Optional[bool] = None
    #: Next reference time of the actual victim (None = never again).
    victim_next_use: Optional[int] = None
    #: Next reference time of B0's pick (None = never again).
    belady_next_use: Optional[int] = None
    #: How many references sooner the actual victim was needed again
    #: compared with B0's pick (0 when the choices are equally good).
    regret: Optional[int] = None

    def summary_lines(self) -> List[str]:
        """A human-readable rendering (the `repro explain` body)."""
        distance = ("inf" if self.victim_distance is None
                    else f"{self.victim_distance:.0f}")
        lines = [
            f"evicted page {self.victim} at t={self.time} "
            f"(backward K-distance {distance})",
            f"  HIST(p) = {self.victim_hist}  LAST(p) = {self.victim_last}",
            f"  retained history influenced the choice: "
            f"{'yes' if self.retained_history else 'no'}",
        ]
        if self.incoming is not None:
            lines.append(f"  incoming page: {self.incoming}")
        if self.dirty is not None:
            lines.append(f"  victim dirty: {'yes' if self.dirty else 'no'}")
        if self.forced:
            lines.append("  FORCED eviction: every resident page sat inside "
                         "its Correlated Reference Period")
        lines.append(f"  candidates considered: {self.considered} eligible, "
                     f"{self.crp_excluded_total} CRP-protected, "
                     f"{self.excluded_total} pinned")
        lines.append("  top candidates by (HIST(q,K), HIST(q,1)):")
        for info in self.candidates:
            distance = ("inf" if info.backward_k_distance is None
                        else f"{info.backward_k_distance:.0f}")
            marks = []
            if info.chosen:
                marks.append("<- evicted")
            if info.crp_protected:
                marks.append("CRP-protected")
            if info.excluded:
                marks.append("pinned")
            suffix = ("  " + " ".join(marks)) if marks else ""
            lines.append(
                f"    page {info.page:<8d} HIST(q,K)={info.kth_time:<8d} "
                f"HIST(q,1)={info.last_uncorrelated:<8d} "
                f"b_t(q,K)={distance}{suffix}")
        if self.crp_excluded_total:
            sample = ", ".join(str(page) for page in self.crp_excluded)
            more = self.crp_excluded_total - len(self.crp_excluded)
            if more > 0:
                sample += f", ... ({more} more)"
            lines.append(f"  CRP-protected pages: {sample}")
        if self.belady_agrees is not None:
            never = "never again"
            victim_next = (never if self.victim_next_use is None
                           else f"t={self.victim_next_use}")
            belady_next = (never if self.belady_next_use is None
                           else f"t={self.belady_next_use}")
            lines.append(
                f"  Belady (B0) would have evicted page {self.belady_victim} "
                f"(next use {belady_next}); actual victim's next use: "
                f"{victim_next}")
            if self.belady_agrees:
                lines.append("  B0 agrees with this eviction (regret 0)")
            else:
                lines.append(f"  B0 disagrees: regret {self.regret} "
                             f"references")
        return lines


class ProvenanceRecorder:
    """Collect :class:`EvictionDecision` records during a replay.

    Parameters
    ----------
    top_candidates:
        How many top-ranked candidates each decision keeps (the victim is
        always included).
    max_decisions:
        Bound on retained decisions (oldest dropped); None keeps all.
    next_use:
        Optional Belady oracle; when given, every decision is annotated
        with B0's pick from the same resident set and the regret tally
        accumulates.
    horizon:
        Trace length; "never referenced again" is scored as
        ``horizon + 1`` when computing regret. Required with ``next_use``.
    """

    def __init__(self, top_candidates: int = 8,
                 max_decisions: Optional[int] = None,
                 next_use: Optional[NextUseOracle] = None,
                 horizon: Optional[int] = None) -> None:
        if top_candidates <= 0:
            raise ConfigurationError("top_candidates must be positive")
        if max_decisions is not None and max_decisions <= 0:
            raise ConfigurationError("max_decisions must be positive or None")
        if next_use is not None and horizon is None:
            raise ConfigurationError(
                "a next_use oracle needs the trace horizon for regret")
        self.top_candidates = top_candidates
        self._decisions: Deque[EvictionDecision] = deque(maxlen=max_decisions)
        self._by_victim: Dict[PageId, List[EvictionDecision]] = {}
        self._next_use = next_use
        self._horizon = horizon
        self.evictions = 0
        self.belady_agreements = 0
        self.total_regret = 0

    # -- capture -------------------------------------------------------------------

    def record(self, decision: EvictionDecision,
               resident: Iterable[PageId],
               exclude: Set[PageId] = frozenset()) -> None:
        """Fold one decision in, annotating Belady regret when possible."""
        self.evictions += 1
        if self._next_use is not None:
            self._annotate_belady(decision, resident, exclude)
        if (self._decisions.maxlen is not None
                and len(self._decisions) == self._decisions.maxlen):
            evicted = self._decisions[0]
            bucket = self._by_victim.get(evicted.victim)
            if bucket and bucket[0] is evicted:
                bucket.pop(0)
        self._decisions.append(decision)
        self._by_victim.setdefault(decision.victim, []).append(decision)

    def _annotate_belady(self, decision: EvictionDecision,
                         resident: Iterable[PageId],
                         exclude: Set[PageId]) -> None:
        assert self._next_use is not None and self._horizon is not None
        sentinel = self._horizon + 1
        now = decision.time

        def score(page: PageId) -> int:
            use = self._next_use(page, now)
            return sentinel if use is None else use

        best_page: Optional[PageId] = None
        best_score = -1
        for page in resident:
            if page in exclude:
                continue
            page_score = score(page)
            # Deterministic tie-break: smallest page id among the ties.
            if (page_score > best_score
                    or (page_score == best_score and best_page is not None
                        and page < best_page)):
                best_score = page_score
                best_page = page
        if best_page is None:
            return
        victim_score = score(decision.victim)
        decision.belady_victim = best_page
        decision.victim_next_use = (None if victim_score == sentinel
                                    else victim_score)
        decision.belady_next_use = (None if best_score == sentinel
                                    else best_score)
        # Equal scores mean the choices are equally optimal even if the
        # page ids differ (e.g. several pages never referenced again).
        decision.belady_agrees = victim_score >= best_score
        decision.regret = max(0, best_score - victim_score)
        if decision.belady_agrees:
            self.belady_agreements += 1
        self.total_regret += decision.regret

    def annotate_eviction(self, victim: PageId, now: int,
                          dirty: bool) -> None:
        """Driver callback: fill in the dirty flag after the eviction."""
        if self._decisions:
            latest = self._decisions[-1]
            if latest.victim == victim and latest.time == now:
                latest.dirty = dirty

    # -- lookup --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._decisions)

    @property
    def decisions(self) -> List[EvictionDecision]:
        """All retained decisions, oldest first."""
        return list(self._decisions)

    def decisions_for(self, page: PageId) -> List[EvictionDecision]:
        """Every retained eviction of the given page, oldest first."""
        return list(self._by_victim.get(page, []))

    def find(self, page: PageId,
             at: Optional[int] = None) -> Optional[EvictionDecision]:
        """The eviction of ``page`` at time ``at`` — or the nearest one.

        With ``at`` None, the page's most recent eviction. With an exact
        time match, that decision; otherwise the eviction of the page
        whose time is closest to ``at`` (ties to the earlier one).
        """
        bucket = self._by_victim.get(page)
        if not bucket:
            return None
        if at is None:
            return bucket[-1]
        return min(bucket, key=lambda decision: (abs(decision.time - at),
                                                 decision.time))

    @property
    def belady_agreement_ratio(self) -> Optional[float]:
        """Fraction of evictions B0 agrees with (None without an oracle)."""
        if self._next_use is None or self.evictions == 0:
            return None
        return self.belady_agreements / self.evictions

    def tally_lines(self) -> List[str]:
        """Run-level summary lines for the `repro explain` footer."""
        lines = [f"evictions recorded: {self.evictions}"]
        ratio = self.belady_agreement_ratio
        if ratio is not None:
            lines.append(
                f"Belady (B0) agreement: {self.belady_agreements}/"
                f"{self.evictions} ({ratio:.1%}); "
                f"total regret {self.total_regret} references "
                f"({self.total_regret / max(1, self.evictions):.1f}/eviction)")
        return lines
