"""Replacement policies: the paper's baselines, oracles, and lineage.

Importing this package registers every policy with the name registry, so
``make_policy("lru")`` etc. work immediately. The paper's own LRU-K lives
in :mod:`repro.core` and registers itself under ``"lru-k"``, ``"lru-2"``,
and ``"lru-3"`` when that package is imported (the top-level ``repro``
package imports both).
"""

from .base import (
    NO_EXCLUSIONS,
    ReplacementPolicy,
    available_policies,
    make_policy,
    register_policy,
    register_policy_factory,
)
from .kernel import KernelResult, SimulationKernel
from .lru import LRUPolicy
from .fifo import FIFOPolicy, MRUPolicy
from .random_policy import RandomPolicy
from .clock import ClockPolicy, GClockPolicy
from .lfu import AgedLFUPolicy, LFUPolicy
from .lrd import LRDV1Policy, LRDV2Policy
from .working_set import WorkingSetPolicy
from .a0 import A0Policy
from .belady import BeladyPolicy
from .two_q import TwoQPolicy
from .arc import ARCPolicy
from .fbr import FBRPolicy
from .lirs import LIRSPolicy
from .slru import SLRUPolicy
from .multi_pool import MultiPoolPolicy

__all__ = [
    "NO_EXCLUSIONS",
    "ReplacementPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
    "register_policy_factory",
    "KernelResult",
    "SimulationKernel",
    "LRUPolicy",
    "FIFOPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "ClockPolicy",
    "GClockPolicy",
    "LFUPolicy",
    "AgedLFUPolicy",
    "LRDV1Policy",
    "LRDV2Policy",
    "WorkingSetPolicy",
    "A0Policy",
    "BeladyPolicy",
    "TwoQPolicy",
    "ARCPolicy",
    "FBRPolicy",
    "LIRSPolicy",
    "SLRUPolicy",
    "MultiPoolPolicy",
]
