"""LFU — Least Frequently Used — and an aged variant.

The paper's Section 4.3 compares LRU-2 against LFU and pinpoints LFU's
"inherent drawback": "it never 'forgets' any previous references when it
compares the priorities of pages". We implement exactly that policy —
reference counts accumulate for the *lifetime of the run*, including while
a page is not resident — as :class:`LFUPolicy`. Ties break by recency
(evict the least recently used among the least frequently used), the
standard convention.

:class:`AgedLFUPolicy` adds the periodic-halving aging scheme of the
GCLOCK/LRD family, whose ``aging_period`` knob is precisely the kind of
"workload-dependent parameter" the paper criticizes; ablation A8 sweeps it.

Victim selection uses a lazy min-heap keyed ``(count, last_access)``: each
access pushes a fresh entry; stale entries are discarded when popped. This
gives O(log B) amortized victim choice even though counts only grow.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import ConfigurationError, NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("lfu")
class LFUPolicy(ReplacementPolicy):
    """Never-forgetting LFU, the paper's Table 4.3 comparator."""

    def __init__(self) -> None:
        super().__init__()
        # Counts survive eviction: the policy "never forgets".
        self._count: Dict[PageId, int] = {}
        self._last_access: Dict[PageId, int] = {}
        self._heap: List[Tuple[int, int, PageId]] = []

    def _bump(self, page: PageId, now: int) -> None:
        self._count[page] = self._count.get(page, 0) + 1
        self._last_access[page] = now
        heapq.heappush(self._heap, (self._count[page], now, page))

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._bump(page, now)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._bump(page, now)

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        skipped: List[Tuple[int, int, PageId]] = []
        victim: Optional[PageId] = None
        while self._heap:
            count, last, page = heapq.heappop(self._heap)
            stale = (page not in self._resident
                     or count != self._count.get(page)
                     or last != self._last_access.get(page))
            if stale:
                continue
            if page in exclude:
                skipped.append((count, last, page))
                continue
            victim = page
            # The popped entry was this page's only live entry; re-add so a
            # subsequent (unconfirmed) choose_victim still sees it.
            skipped.append((count, last, page))
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        if victim is None:
            raise NoEvictableFrameError("all resident pages are excluded")
        return victim

    def reference_count(self, page: PageId) -> int:
        """Lifetime reference count of a page (0 if never seen)."""
        return self._count.get(page, 0)

    def reset(self) -> None:
        super().reset()
        self._count.clear()
        self._last_access.clear()
        self._heap.clear()


@register_policy("lfu-aged")
class AgedLFUPolicy(LFUPolicy):
    """LFU with periodic halving of all counts.

    Every ``aging_period`` references, every count is halved (integer
    division), bounding the memory of ancient references. The heap is
    rebuilt at each aging step, so choose the period large enough to
    amortize (the default halves every 5000 references).
    """

    def __init__(self, aging_period: int = 5000) -> None:
        super().__init__()
        if aging_period <= 0:
            raise ConfigurationError("aging_period must be positive")
        self.aging_period = aging_period
        self._last_aged = 0

    def _maybe_age(self, now: int) -> None:
        if now - self._last_aged < self.aging_period:
            return
        self._last_aged = now
        self._count = {p: c // 2 for p, c in self._count.items() if c // 2 > 0}
        self._heap = [(self._count.get(p, 0), self._last_access[p], p)
                      for p in self._resident]
        heapq.heapify(self._heap)
        # Resident pages must keep a live count entry for staleness checks.
        for page in self._resident:
            self._count.setdefault(page, 0)

    def on_hit(self, page: PageId, now: int) -> None:
        self._maybe_age(now)
        super().on_hit(page, now)

    def on_admit(self, page: PageId, now: int) -> None:
        self._maybe_age(now)
        super().on_admit(page, now)

    def reset(self) -> None:
        super().reset()
        self._last_aged = 0
