"""LRD — Least Reference Density (Effelsberg & Haerder [EFFEHAER]).

Reference density is reference frequency measured over a page's "age".
Two classical variants:

- **LRD-V1**: density = total_references / (now - first_admission). Age
  grows forever, so like LFU the scheme is slow to forget.
- **LRD-V2**: every ``aging_interval`` references, all reference counts
  are multiplied by ``decay`` (0 < decay < 1), giving a sliding exponential
  window. The interval and decay are workload-dependent tuning knobs —
  again the class of parameter the paper's Section 1.2 criticizes, in
  contrast to LRU-K's parameter-free aging.

Victim = resident page with minimum density, ties by recency. Selection is
a linear scan: density of *every* page changes as ``now`` advances (V1) or
at decay boundaries (V2), so no order-preserving index applies; the pools
used in the paper's experiments keep B small enough for this to be fine,
and bench A10 quantifies the cost.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("lrd-v1")
class LRDV1Policy(ReplacementPolicy):
    """Least Reference Density, variant 1 (global age)."""

    def __init__(self) -> None:
        super().__init__()
        self._count: Dict[PageId, float] = {}
        self._first_seen: Dict[PageId, int] = {}
        self._last_access: Dict[PageId, int] = {}

    def _bump(self, page: PageId, now: int) -> None:
        self._count[page] = self._count.get(page, 0.0) + 1.0
        self._first_seen.setdefault(page, now)
        self._last_access[page] = now

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._bump(page, now)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._bump(page, now)

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        # V1 forgets evicted pages entirely (density restarts on return).
        self._count.pop(page, None)
        self._first_seen.pop(page, None)
        self._last_access.pop(page, None)

    def density(self, page: PageId, now: int) -> float:
        """Current reference density of a resident page."""
        age = max(1, now - self._first_seen[page] + 1)
        return self._count[page] / age

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        victim: Optional[PageId] = None
        best = (float("inf"), float("inf"))
        for page in self._resident:
            if page in exclude:
                continue
            key = (self.density(page, now), self._last_access[page])
            if key < best:
                best = key
                victim = page
        if victim is None:
            raise NoEvictableFrameError("all resident pages are excluded")
        return victim

    def reset(self) -> None:
        super().reset()
        self._count.clear()
        self._first_seen.clear()
        self._last_access.clear()


@register_policy("lrd-v2")
class LRDV2Policy(LRDV1Policy):
    """Least Reference Density, variant 2 (periodic multiplicative decay)."""

    def __init__(self, aging_interval: int = 1000, decay: float = 0.5) -> None:
        super().__init__()
        if aging_interval <= 0:
            raise ConfigurationError("aging_interval must be positive")
        if not 0.0 < decay < 1.0:
            raise ConfigurationError("decay must lie strictly in (0, 1)")
        self.aging_interval = aging_interval
        self.decay = decay
        self._last_aged = 0

    def _maybe_age(self, now: int) -> None:
        if now - self._last_aged < self.aging_interval:
            return
        self._last_aged = now
        for page in self._count:
            self._count[page] *= self.decay

    def on_hit(self, page: PageId, now: int) -> None:
        self._maybe_age(now)
        super().on_hit(page, now)

    def on_admit(self, page: PageId, now: int) -> None:
        self._maybe_age(now)
        super().on_admit(page, now)

    def reset(self) -> None:
        super().reset()
        self._last_aged = 0
