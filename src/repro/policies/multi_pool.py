"""The "Page Pool Tuning" baseline (paper Section 1.1, [REITER]).

Reiter's Domain Separation approach: the DBA statically assigns page sets
to separate buffer pools of tuned sizes, so "B-tree node pages would
compete only against other node pages for buffers, data pages ... only
against other data pages". The paper positions LRU-K as approaching this
hand-tuned behaviour *without* the human effort; benchmark A9 makes the
comparison concrete by giving this policy the perfect tuning for the
two-pool workload and measuring how close self-reliant LRU-2 comes.

Each domain runs LRU internally. The victim for an incoming page comes
from the incoming page's own domain when that domain is at or over its
quota; otherwise from the most over-quota domain (which is what frees a
slot for the growing domain); otherwise the global LRU page.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, Mapping, Optional

from ..errors import ConfigurationError, NoEvictableFrameError, PolicyError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy

#: Maps a page to its domain (pool) number.
DomainFunction = Callable[[PageId], int]


class MultiPoolPolicy(ReplacementPolicy):
    """DBA-tuned domain-separated buffering with per-domain LRU."""

    def __init__(self, domain_of: DomainFunction,
                 quotas: Mapping[int, int]) -> None:
        super().__init__()
        if not quotas:
            raise ConfigurationError("multi-pool needs at least one domain")
        if any(q < 0 for q in quotas.values()):
            raise ConfigurationError("domain quotas cannot be negative")
        self.domain_of = domain_of
        self.quotas: Dict[int, int] = dict(quotas)
        self._pools: Dict[int, "OrderedDict[PageId, None]"] = {
            domain: OrderedDict() for domain in self.quotas}
        self._domain_cache: Dict[PageId, int] = {}

    def _domain(self, page: PageId) -> int:
        domain = self._domain_cache.get(page)
        if domain is None:
            domain = self.domain_of(page)
            if domain not in self._pools:
                raise PolicyError(
                    f"page {page} mapped to unknown domain {domain}")
            self._domain_cache[page] = domain
        return domain

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._pools[self._domain(page)].move_to_end(page)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._pools[self._domain(page)][page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._pools[self._domain(page)][page]
        # Drop the memoized domain with the page: entries were only ever
        # added, so a long trace grew the cache with every distinct page
        # it had ever seen. Evicted pages are re-resolved (and re-cached)
        # if they return, keeping the cache bounded by the resident set
        # plus at most the incoming page of an in-flight victim choice.
        del self._domain_cache[page]

    def domain_cache_size(self) -> int:
        """Memoized page→domain entries (bounded by residency + 1)."""
        return len(self._domain_cache)

    def occupancy(self, domain: int) -> int:
        """Resident pages currently charged to a domain."""
        return len(self._pools[domain])

    def _lru_of(self, domain: int,
                exclude: FrozenSet[PageId]) -> Optional[PageId]:
        for page in self._pools[domain]:
            if page not in exclude:
                return page
        return None

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        ordered_domains = self._victim_domain_order(incoming)
        for domain in ordered_domains:
            victim = self._lru_of(domain, exclude)
            if victim is not None:
                return victim
        raise NoEvictableFrameError("all resident pages are excluded")

    def _victim_domain_order(self, incoming: Optional[PageId]) -> list:
        """Domains in preference order for victim selection."""
        overflow = {d: len(pool) - self.quotas[d]
                    for d, pool in self._pools.items()}
        if incoming is not None:
            home = self._domain(incoming)
            if overflow[home] >= 0 and self._pools[home]:
                # Home domain at/over quota: it pays for its own growth.
                rest = sorted((d for d in self._pools if d != home),
                              key=lambda d: -overflow[d])
                return [home] + rest
        # Otherwise charge the most over-quota domain first.
        return sorted(self._pools, key=lambda d: -overflow[d])

    def reset(self) -> None:
        super().reset()
        for pool in self._pools.values():
            pool.clear()
        self._domain_cache.clear()
