"""The A0 oracle — optimal replacement with known probabilities.

Definition 3.1 of the paper (after [COFFDENN] Theorem 6.3): "A0 ... replaces
the buffered page p in memory whose expected value I_p is a maximum, i.e.,
the page for which beta_p is smallest." Under the Independent Reference
Model A0 is the optimal strategy *without* an oracle over the future, and
the paper uses it as the yardstick every LRU-K column is compared against
(Tables 4.1 and 4.2).

A0 requires the true reference-probability vector, which only a synthetic
workload can supply; workload generators expose theirs via a
``reference_probabilities()`` method and the experiment runner wires it in.

Victim selection keeps resident pages in a min-heap keyed by probability.
Probabilities are static, so entries never go stale except through
eviction (lazy deletion).
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..errors import NoEvictableFrameError, OracleError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("a0")
class A0Policy(ReplacementPolicy):
    """Optimal-with-probabilities replacement (paper Definition 3.1)."""

    def __init__(self, probabilities: Mapping[PageId, float]) -> None:
        super().__init__()
        if not probabilities:
            raise OracleError("A0 needs a non-empty probability vector")
        bad = [p for p, b in probabilities.items() if b < 0]
        if bad:
            raise OracleError(f"negative probabilities for pages {bad[:5]}")
        self._beta: Dict[PageId, float] = dict(probabilities)
        self._heap: List[Tuple[float, PageId]] = []
        self._live: Dict[PageId, float] = {}

    def beta(self, page: PageId) -> float:
        """True reference probability of a page (unknown pages get 0)."""
        return self._beta.get(page, 0.0)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        beta = self.beta(page)
        self._live[page] = beta
        heapq.heappush(self._heap, (beta, page))

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._live[page]

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        skipped: List[Tuple[float, PageId]] = []
        victim: Optional[PageId] = None
        while self._heap:
            beta, page = heapq.heappop(self._heap)
            if self._live.get(page) != beta:
                continue  # stale (evicted) entry
            skipped.append((beta, page))
            if page in exclude:
                continue
            victim = page
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        if victim is None:
            raise NoEvictableFrameError("all resident pages are excluded")
        return victim

    def reset(self) -> None:
        super().reset()
        self._heap.clear()
        self._live.clear()
