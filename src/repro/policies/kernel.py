"""Fused per-policy simulation kernels.

The object-path hot loop (:meth:`repro.sim.CacheSimulator.access_page`)
pays per reference for what is, algorithmically, a handful of dict and
heap operations: a clock method call, two or three policy-hook dispatches,
attribute lookups on the policy's bookkeeping structures, and the
observability guards. On a plain page-id stream none of that dispatch
carries information — the reference is a bare integer and the policy's
decision procedure is fixed for the whole run.

A *simulation kernel* removes the dispatch. A policy may override
:meth:`~repro.policies.base.ReplacementPolicy.make_kernel` to return a
closure that processes an **entire compact page-id trace** (the
``array('q')`` form of :class:`repro.sim.trace_cache.CachedTrace`) in one
fused loop with the policy's data structures bound to locals, stat
counters accumulated in plain ints, and no per-reference allocation.

The contract every kernel must honour:

- **Decision-identical.** Driving ``kernel(pages, warmup)`` from a fresh
  simulator produces the same hit/miss sequence, the same evictions, the
  same final policy state (residency, history, heap contents as a
  multiset, stats counters) as calling ``access_page(page)`` once per
  reference with ``start_measurement()`` at the warm-up boundary. This is
  property-tested in ``tests/sim/test_kernels.py``.
- **State-synchronizing.** On return the policy's own bookkeeping is
  exactly what the object path would have left behind, so introspection
  (``resident_pages``, history blocks, stats) and any further object-path
  driving work unchanged.
- **Observability-free.** Kernels never emit events and never record
  provenance. Drivers must bypass them whenever any observation channel
  is attached — event sinks, an ambient tracer, an eviction-decision
  provenance recorder, or the simulator's eviction log.
  :meth:`~repro.sim.cache.CacheSimulator.run_fused` enforces this and
  falls back to the object path.
- **Fresh-state only.** Factories return None when the policy already
  holds resident pages (a kernel cannot reconstruct mid-run driver
  state), or when the configuration has features the fused loop does not
  replicate — then the driver silently falls back.

``make_kernel(capacity)`` returns either ``None`` (no kernel for this
configuration) or a callable ``kernel(pages, warmup) -> KernelResult``.

Batch kernels
-------------

On hot traces even the fused scalar loop spends most of its time
re-discovering that a reference is a hit. A *batch kernel*
(``make_batch_kernel(capacity)``) exploits that: it scans **runs of
references between misses** with a numpy bitmap membership test over the
page universe, books the whole run's hits (and recency/history effects)
in bulk, and drops to scalar kernel logic only around misses and
evictions. Between two misses the resident set cannot change, so the
run/miss decomposition is exact, and each miss re-anchors the scan with
the post-eviction bitmap — no speculative window ever needs unwinding.

Batch kernels honour the same contract as scalar kernels, with one
extension: the *callable itself* may return None after inspecting the
trace (numpy missing, page ids unusable as array indices, or the
:data:`BATCH_PROBE_REFS` hotness probe predicting a miss-dominated run
where batching loses). Nothing is mutated in that case; the driver falls
back to the scalar kernel or the object path.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import NoEvictableFrameError
from ..types import PageId

__all__ = [
    "BATCH_DISTINCT_FACTOR",
    "BATCH_MAX_PAGE",
    "BATCH_PROBE_REFS",
    "KernelResult",
    "SimulationKernel",
    "batch_trace_view",
    "make_clock_kernel",
    "make_fifo_kernel",
    "make_lru_batch_kernel",
    "make_lru_kernel",
]

#: Largest page id batch kernels will index arrays by: the bitmap and
#: recency arrays are dense over the page universe, so pathological ids
#: (sparse 64-bit keys) must fall back to the dict-based kernels.
BATCH_MAX_PAGE = 1 << 24

#: How many leading references the hotness probe inspects, and how many
#: distinct pages (as a multiple of capacity) it tolerates before
#: declining. A prefix referencing far more distinct pages than the
#: buffer holds predicts a miss-dominated run, where per-run numpy
#: overhead loses to the scalar kernels. Tests monkeypatch these to
#: force or suppress the batch path.
BATCH_PROBE_REFS = 8192
BATCH_DISTINCT_FACTOR = 2

#: LRU-K only: decline when more than this fraction of probed hits are
#: *uncorrelated* (inter-reference gap above the CRP). Every
#: uncorrelated hit replays scalar history/heap bookkeeping inside the
#: batch loop, so a trace dominated by them gains nothing from run
#: skipping. Setting :data:`BATCH_PROBE_REFS` to 0 disables this probe
#: too.
BATCH_MAX_UNCORRELATED_FRACTION = 0.35

#: Bounds for the adaptive run-scan window (references per membership
#: gather). The scan doubles while runs fill it and shrinks when misses
#: arrive early, so hot traces amortize numpy call overhead over long
#: runs while miss-y stretches stop over-gathering.
_MIN_SCAN = 128
_MAX_SCAN = 16384


@dataclass
class KernelResult:
    """What a fused kernel hands back to the driving simulator.

    The driver folds these into its own counters and residency maps so
    the simulator object ends in the same externally visible state as an
    object-path run.
    """

    #: Hits/misses of the warm-up window (empty window: both zero).
    warmup_hits: int
    warmup_misses: int
    #: Hits/misses of the measurement window.
    hits: int
    misses: int
    #: Total evictions over both windows.
    evictions: int
    #: Surviving resident pages mapped to their admission times, in
    #: admission order — exactly the simulator's ``_admitted_at`` map.
    resident: Dict[PageId, int]
    #: Final logical time (= number of references processed).
    now: int


#: A fused trace runner: (compact page ids, warm-up length) -> result.
SimulationKernel = Callable[[Sequence[PageId], int], KernelResult]


def batch_trace_view(pages: Sequence[PageId]):
    """``(numpy, int64 ndarray)`` over a compact trace, or None.

    Zero-copy for the two compact forms the simulator hands kernels —
    ``array('q')`` (in-memory :class:`~repro.sim.trace_cache.CachedTrace`)
    and the little-endian ``memoryview`` of an mmap-backed columnar
    trace. Anything else is converted if cheap, declined if not.
    """
    from ..workloads.vectorized import numpy_or_none

    np = numpy_or_none()
    if np is None:
        return None
    try:
        if isinstance(pages, memoryview):
            trace = np.frombuffer(pages, dtype="<i8")
        else:
            trace = np.frombuffer(pages, dtype=np.int64) \
                if isinstance(pages, bytearray) else np.asarray(pages)
        if trace.dtype != np.int64:
            trace = trace.astype(np.int64)
    except (TypeError, ValueError, BufferError):
        return None
    return np, trace


def _batch_guard(np, trace, capacity: int):
    """Shared runtime decline checks: page-id range and hotness probe.

    Returns the page-universe size, or None to decline (ids unusable as
    dense array indices, or the leading-prefix probe predicts a
    miss-dominated trace where per-run numpy overhead loses).
    """
    if len(trace) == 0:
        return 1
    low = int(trace.min())
    high = int(trace.max())
    if low < 0 or high > BATCH_MAX_PAGE:
        return None
    probe = BATCH_PROBE_REFS
    if probe and len(trace) > probe:
        distinct = len(np.unique(trace[:probe]))
        if distinct > BATCH_DISTINCT_FACTOR * capacity:
            return None
    return high + 1


def make_lru_batch_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Run-skipping batch loop for classical LRU (the paper's LRU-1).

    Between two misses the resident set is constant, so membership of a
    whole window of references is one bitmap gather. A window that comes
    back all-resident is a pure hit run: the hit counter advances by the
    run length and the recency effect collapses to "each distinct page's
    recency becomes its *last* occurrence time in the run" — one
    vectorized maximum-scatter instead of ``run_length`` dict moves.
    Scalar logic runs only at misses.

    Recency lives in a dense int64 array during the run; victims come
    from a lazy min-heap of ``(last_use, page)`` entries validated
    against that array on pop (stale entries are re-pushed corrected, so
    every resident page always keeps at least one live entry). The
    policy's ``OrderedDict`` is rebuilt in recency order at the end,
    leaving exactly the object-path state.
    """
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> Optional[KernelResult]:
        if warmup < 0:
            return None  # scalar slicing semantics; not worth replicating
        view = batch_trace_view(pages)
        if view is None:
            return None
        np, trace = view
        universe = _batch_guard(np, trace, capacity)
        if universe is None:
            return None
        n = len(trace)
        resident_map = np.zeros(universe, dtype=bool)
        last_used = np.zeros(universe, dtype=np.int64)
        heap: List[Tuple[int, int]] = []
        admitted: Dict[PageId, int] = {}
        offsets = np.arange(_MAX_SCAN, dtype=np.int64)
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        scan = _MIN_SCAN

        boundary = min(warmup, n)
        for index, (lo, hi) in enumerate(((0, boundary), (boundary, n))):
            pos = lo
            while pos < hi:
                end = min(hi, pos + scan)
                window = trace[pos:end]
                member = resident_map[window]
                first_miss = int(member.argmin())
                if member[first_miss]:
                    first_miss = end - pos  # whole window resident
                if first_miss:
                    # Hit run [pos, pos + first_miss): recency of each
                    # distinct page becomes its last occurrence time.
                    # maximum.at is order-independent, and every time in
                    # this run exceeds every previously stored recency.
                    hits += first_miss
                    run = window[:first_miss]
                    np.maximum.at(last_used, run,
                                  offsets[:first_miss] + (pos + 1))
                if first_miss == end - pos:
                    pos = end
                    if scan < _MAX_SCAN:
                        scan *= 2
                    continue
                if first_miss < scan // 4 and scan > _MIN_SCAN:
                    scan //= 2
                j = pos + first_miss
                t = j + 1
                page = int(trace[j])
                misses += 1
                if len(admitted) >= capacity:
                    while True:
                        pushed_at, victim = heappop(heap)
                        if not resident_map[victim]:
                            continue  # evicted earlier; stale entry
                        actual = int(last_used[victim])
                        if actual != pushed_at:
                            heappush(heap, (actual, victim))
                            continue
                        break
                    resident_map[victim] = False
                    del admitted[victim]
                    evictions += 1
                resident_map[page] = True
                last_used[page] = t
                admitted[page] = t
                heappush(heap, (t, page))
                if len(heap) > 4 * len(admitted) + 64:
                    heap = [(int(last_used[p]), p) for p in admitted]
                    heapify(heap)
                pos = j + 1
            if index == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0

        order = policy._order
        for page in sorted(admitted, key=lambda p: int(last_used[p])):
            order[page] = None
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, n)

    return kernel


def make_lru_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Fused loop for classical LRU (the paper's LRU-1).

    The recency order *is* the policy's ``OrderedDict``: hits move to the
    MRU end, the victim is the first key. Everything runs on locals; the
    policy's structures are mutated in place so the final state matches
    the object path exactly.
    """
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        order = policy._order
        move_to_end = order.move_to_end
        admitted: Dict[PageId, int] = {}
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        t = 0
        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                if page in order:
                    hits += 1
                    move_to_end(page)
                else:
                    misses += 1
                    if len(order) >= capacity:
                        victim = next(iter(order))
                        del order[victim]
                        del admitted[victim]
                        evictions += 1
                    order[page] = None
                    admitted[page] = t
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, t)

    return kernel


def make_fifo_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Fused loop for FIFO: admission order, hits change nothing."""
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        order = policy._order
        admitted: Dict[PageId, int] = {}
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        t = 0
        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                if page in order:
                    hits += 1
                else:
                    misses += 1
                    if len(order) >= capacity:
                        victim = next(iter(order))
                        del order[victim]
                        del admitted[victim]
                        evictions += 1
                    order[page] = None
                    admitted[page] = t
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, t)

    return kernel


def make_clock_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Fused loop for second-chance CLOCK.

    Inlines the ring sweep, tombstoning, and lazy compaction of
    :class:`repro.policies.clock._SweepBuffer`; the hand and the ring
    list live in locals and are flushed back on return.
    """
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        ring = policy._ring
        ring_pages = ring.pages
        slot_of = ring.slot_of
        hand = ring.hand
        referenced = policy._referenced
        admitted: Dict[PageId, int] = {}
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        t = 0
        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                if page in referenced:
                    hits += 1
                    referenced[page] = True
                else:
                    misses += 1
                    if len(referenced) >= capacity:
                        victim = None
                        for _ in range(2 * len(ring_pages) + 1):
                            if not ring_pages:
                                break
                            hand %= len(ring_pages)
                            candidate = ring_pages[hand]
                            hand += 1
                            if candidate is None:
                                continue
                            if referenced[candidate]:
                                referenced[candidate] = False
                                continue
                            victim = candidate
                            break
                        if victim is None:
                            raise NoEvictableFrameError(
                                "CLOCK sweep found no evictable page")
                        ring_pages[slot_of.pop(victim)] = None
                        del referenced[victim]
                        del admitted[victim]
                        evictions += 1
                        # _SweepBuffer.compact_if_needed, inline.
                        if len(slot_of) * 2 < len(ring_pages):
                            ring_pages = [p for p in ring_pages
                                          if p is not None]
                            slot_of.clear()
                            for slot, p in enumerate(ring_pages):
                                slot_of[p] = slot
                            hand %= max(1, len(ring_pages))
                    slot_of[page] = len(ring_pages)
                    ring_pages.append(page)
                    referenced[page] = True
                    admitted[page] = t
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0
        ring.pages = ring_pages
        ring.hand = hand
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, t)

    return kernel
