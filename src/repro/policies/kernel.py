"""Fused per-policy simulation kernels.

The object-path hot loop (:meth:`repro.sim.CacheSimulator.access_page`)
pays per reference for what is, algorithmically, a handful of dict and
heap operations: a clock method call, two or three policy-hook dispatches,
attribute lookups on the policy's bookkeeping structures, and the
observability guards. On a plain page-id stream none of that dispatch
carries information — the reference is a bare integer and the policy's
decision procedure is fixed for the whole run.

A *simulation kernel* removes the dispatch. A policy may override
:meth:`~repro.policies.base.ReplacementPolicy.make_kernel` to return a
closure that processes an **entire compact page-id trace** (the
``array('q')`` form of :class:`repro.sim.trace_cache.CachedTrace`) in one
fused loop with the policy's data structures bound to locals, stat
counters accumulated in plain ints, and no per-reference allocation.

The contract every kernel must honour:

- **Decision-identical.** Driving ``kernel(pages, warmup)`` from a fresh
  simulator produces the same hit/miss sequence, the same evictions, the
  same final policy state (residency, history, heap contents as a
  multiset, stats counters) as calling ``access_page(page)`` once per
  reference with ``start_measurement()`` at the warm-up boundary. This is
  property-tested in ``tests/sim/test_kernels.py``.
- **State-synchronizing.** On return the policy's own bookkeeping is
  exactly what the object path would have left behind, so introspection
  (``resident_pages``, history blocks, stats) and any further object-path
  driving work unchanged.
- **Observability-free.** Kernels never emit events and never record
  provenance. Drivers must bypass them whenever any observation channel
  is attached — event sinks, an ambient tracer, an eviction-decision
  provenance recorder, or the simulator's eviction log.
  :meth:`~repro.sim.cache.CacheSimulator.run_fused` enforces this and
  falls back to the object path.
- **Fresh-state only.** Factories return None when the policy already
  holds resident pages (a kernel cannot reconstruct mid-run driver
  state), or when the configuration has features the fused loop does not
  replicate — then the driver silently falls back.

``make_kernel(capacity)`` returns either ``None`` (no kernel for this
configuration) or a callable ``kernel(pages, warmup) -> KernelResult``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..errors import NoEvictableFrameError
from ..types import PageId

__all__ = [
    "KernelResult",
    "SimulationKernel",
    "make_clock_kernel",
    "make_fifo_kernel",
    "make_lru_kernel",
]


@dataclass
class KernelResult:
    """What a fused kernel hands back to the driving simulator.

    The driver folds these into its own counters and residency maps so
    the simulator object ends in the same externally visible state as an
    object-path run.
    """

    #: Hits/misses of the warm-up window (empty window: both zero).
    warmup_hits: int
    warmup_misses: int
    #: Hits/misses of the measurement window.
    hits: int
    misses: int
    #: Total evictions over both windows.
    evictions: int
    #: Surviving resident pages mapped to their admission times, in
    #: admission order — exactly the simulator's ``_admitted_at`` map.
    resident: Dict[PageId, int]
    #: Final logical time (= number of references processed).
    now: int


#: A fused trace runner: (compact page ids, warm-up length) -> result.
SimulationKernel = Callable[[Sequence[PageId], int], KernelResult]


def make_lru_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Fused loop for classical LRU (the paper's LRU-1).

    The recency order *is* the policy's ``OrderedDict``: hits move to the
    MRU end, the victim is the first key. Everything runs on locals; the
    policy's structures are mutated in place so the final state matches
    the object path exactly.
    """
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        order = policy._order
        move_to_end = order.move_to_end
        admitted: Dict[PageId, int] = {}
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        t = 0
        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                if page in order:
                    hits += 1
                    move_to_end(page)
                else:
                    misses += 1
                    if len(order) >= capacity:
                        victim = next(iter(order))
                        del order[victim]
                        del admitted[victim]
                        evictions += 1
                    order[page] = None
                    admitted[page] = t
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, t)

    return kernel


def make_fifo_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Fused loop for FIFO: admission order, hits change nothing."""
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        order = policy._order
        admitted: Dict[PageId, int] = {}
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        t = 0
        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                if page in order:
                    hits += 1
                else:
                    misses += 1
                    if len(order) >= capacity:
                        victim = next(iter(order))
                        del order[victim]
                        del admitted[victim]
                        evictions += 1
                    order[page] = None
                    admitted[page] = t
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, t)

    return kernel


def make_clock_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Fused loop for second-chance CLOCK.

    Inlines the ring sweep, tombstoning, and lazy compaction of
    :class:`repro.policies.clock._SweepBuffer`; the hand and the ring
    list live in locals and are flushed back on return.
    """
    if policy._resident:
        return None

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        ring = policy._ring
        ring_pages = ring.pages
        slot_of = ring.slot_of
        hand = ring.hand
        referenced = policy._referenced
        admitted: Dict[PageId, int] = {}
        warmup_hits = warmup_misses = hits = misses = evictions = 0
        t = 0
        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                if page in referenced:
                    hits += 1
                    referenced[page] = True
                else:
                    misses += 1
                    if len(referenced) >= capacity:
                        victim = None
                        for _ in range(2 * len(ring_pages) + 1):
                            if not ring_pages:
                                break
                            hand %= len(ring_pages)
                            candidate = ring_pages[hand]
                            hand += 1
                            if candidate is None:
                                continue
                            if referenced[candidate]:
                                referenced[candidate] = False
                                continue
                            victim = candidate
                            break
                        if victim is None:
                            raise NoEvictableFrameError(
                                "CLOCK sweep found no evictable page")
                        ring_pages[slot_of.pop(victim)] = None
                        del referenced[victim]
                        del admitted[victim]
                        evictions += 1
                        # _SweepBuffer.compact_if_needed, inline.
                        if len(slot_of) * 2 < len(ring_pages):
                            ring_pages = [p for p in ring_pages
                                          if p is not None]
                            slot_of.clear()
                            for slot, p in enumerate(ring_pages):
                                slot_of[p] = slot
                            hand %= max(1, len(ring_pages))
                    slot_of[page] = len(ring_pages)
                    ring_pages.append(page)
                    referenced[page] = True
                    admitted[page] = t
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0
        ring.pages = ring_pages
        ring.hand = hand
        policy._resident.update(admitted)
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, admitted, t)

    return kernel
