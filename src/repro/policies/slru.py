"""SLRU — Segmented LRU (Karedla, Love & Wherry, 1994).

A contemporary of LRU-2 with the same goal reached by segmentation
instead of history: the cache is split into a **probationary** segment
(first-time pages) and a **protected** segment (pages hit at least once
while resident). Victims always come from the probationary LRU end, so a
page must prove itself by a re-reference before it can displace proven
pages — a structural version of the backward-2-distance test that, unlike
LRU-2, cannot recognize a page whose re-reference arrives after eviction
(it keeps no retained information). Included in the lineage benchmark to
make precisely that contrast measurable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError, PolicyError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("slru")
class SLRUPolicy(ReplacementPolicy):
    """Segmented LRU with a protected-segment capacity fraction."""

    def __init__(self, capacity: int,
                 protected_fraction: float = 0.8) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigurationError("SLRU needs the buffer capacity")
        if not 0.0 < protected_fraction < 1.0:
            raise ConfigurationError(
                "protected_fraction must lie strictly in (0, 1)")
        self.capacity = capacity
        self.protected_size = max(1, int(capacity * protected_fraction))
        # LRU-ordered segments: first item = LRU end.
        self._probationary: "OrderedDict[PageId, None]" = OrderedDict()
        self._protected: "OrderedDict[PageId, None]" = OrderedDict()

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        if page in self._protected:
            self._protected.move_to_end(page)
            return
        # Promotion: probationary -> protected MRU; protected overflow
        # demotes its LRU back to the probationary MRU end.
        del self._probationary[page]
        self._protected[page] = None
        while len(self._protected) > self.protected_size:
            demoted, _ = self._protected.popitem(last=False)
            self._probationary[demoted] = None

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._probationary[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        if page in self._probationary:
            del self._probationary[page]
        elif page in self._protected:
            del self._protected[page]
        else:
            raise PolicyError(f"page {page} missing from both SLRU segments")

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        for segment in (self._probationary, self._protected):
            for page in segment:
                if page not in exclude:
                    return page
        raise NoEvictableFrameError("all resident pages are excluded")

    # -- diagnostics --------------------------------------------------------------

    @property
    def protected_pages(self) -> FrozenSet[PageId]:
        """Pages currently in the protected segment."""
        return frozenset(self._protected)

    @property
    def probationary_pages(self) -> FrozenSet[PageId]:
        """Pages currently in the probationary segment."""
        return frozenset(self._probationary)

    def reset(self) -> None:
        super().reset()
        self._probationary.clear()
        self._protected.clear()
