"""CLOCK and GCLOCK.

The paper (Section 1.2) groups GCLOCK with the "more sophisticated
LFU-based buffering algorithms that employ aging schemes based on
reference counters" and criticizes its dependence on "a careful choice of
various workload-dependent parameters". Both are implemented here so the
lineage benchmark (A8) can quantify that comparison.

- CLOCK (second chance): a circular sweep clears per-page reference bits;
  the first page found with a clear bit is the victim. A classical O(1)
  LRU approximation.
- GCLOCK (generalized CLOCK): each page carries a counter, incremented on
  hit (by ``hit_increment``) and initialized on admission (to
  ``initial_count``); the sweep decrements counters and evicts the first
  page found at zero. The two knobs are exactly the workload-dependent
  parameters the paper objects to.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..errors import ConfigurationError, NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


class _SweepBuffer:
    """A circular buffer of pages with a sweep hand (shared CLOCK machinery)."""

    def __init__(self) -> None:
        self.pages: List[Optional[PageId]] = []
        self.slot_of: Dict[PageId, int] = {}
        self.hand = 0

    def add(self, page: PageId) -> None:
        self.slot_of[page] = len(self.pages)
        self.pages.append(page)

    def remove(self, page: PageId) -> None:
        slot = self.slot_of.pop(page)
        self.pages[slot] = None  # tombstone; compaction happens lazily

    def compact_if_needed(self) -> None:
        """Drop tombstones when they dominate the ring."""
        live = len(self.slot_of)
        if live * 2 >= len(self.pages):
            return
        self.pages = [p for p in self.pages if p is not None]
        self.slot_of = {p: i for i, p in enumerate(self.pages)}
        self.hand %= max(1, len(self.pages))

    def clear(self) -> None:
        self.pages.clear()
        self.slot_of.clear()
        self.hand = 0


@register_policy("clock")
class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK replacement."""

    def __init__(self) -> None:
        super().__init__()
        self._ring = _SweepBuffer()
        self._referenced: Dict[PageId, bool] = {}

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._referenced[page] = True

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._ring.add(page)
        self._referenced[page] = True

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        self._ring.remove(page)
        del self._referenced[page]
        self._ring.compact_if_needed()

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        ring = self._ring
        # Two full sweeps suffice: the first clears bits, the second must
        # find a victim among unexcluded pages.
        for _ in range(2 * len(ring.pages) + 1):
            if not ring.pages:
                break
            ring.hand %= len(ring.pages)
            page = ring.pages[ring.hand]
            ring.hand += 1
            if page is None or page in exclude:
                continue
            if self._referenced[page]:
                self._referenced[page] = False
                continue
            return page
        raise NoEvictableFrameError("CLOCK sweep found no evictable page")

    def make_kernel(self, capacity: int):
        from .kernel import make_clock_kernel
        return make_clock_kernel(self, capacity)

    def reset(self) -> None:
        super().reset()
        self._ring.clear()
        self._referenced.clear()


@register_policy("gclock")
class GClockPolicy(ReplacementPolicy):
    """Generalized CLOCK with reference counters and aging-by-sweep."""

    def __init__(self, initial_count: int = 1, hit_increment: int = 1,
                 max_count: int = 8) -> None:
        super().__init__()
        if initial_count < 0 or hit_increment <= 0 or max_count <= 0:
            raise ConfigurationError("GCLOCK counters must be positive")
        self.initial_count = initial_count
        self.hit_increment = hit_increment
        self.max_count = max_count
        self._ring = _SweepBuffer()
        self._count: Dict[PageId, int] = {}

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._count[page] = min(self.max_count,
                                self._count[page] + self.hit_increment)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._ring.add(page)
        self._count[page] = self.initial_count

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        self._ring.remove(page)
        del self._count[page]
        self._ring.compact_if_needed()

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        ring = self._ring
        # Bounded sweep: max_count full revolutions guarantee some counter
        # reaches zero among unexcluded pages.
        limit = (self.max_count + 1) * (len(ring.pages) + 1)
        for _ in range(limit):
            if not ring.pages:
                break
            ring.hand %= len(ring.pages)
            page = ring.pages[ring.hand]
            ring.hand += 1
            if page is None or page in exclude:
                continue
            if self._count[page] > 0:
                self._count[page] -= 1
                continue
            return page
        raise NoEvictableFrameError("GCLOCK sweep found no evictable page")

    def reset(self) -> None:
        super().reset()
        self._ring.clear()
        self._count.clear()
