"""Replacement-policy interface and registry.

Every buffering algorithm in the library — the paper's LRU-K, the classical
LRU it generalizes, the LFU/CLOCK/LRD family it argues against, the A0 and
Belady oracles it is measured against, and the 2Q/ARC lineage it spawned —
implements one event-driven interface:

- ``on_hit(page, now)``      — the referenced page was already resident;
- ``on_admit(page, now)``    — the referenced page was just brought in;
- ``choose_victim(now, incoming=..., exclude=...)`` — name the resident
  page to drop so ``incoming`` can be admitted (pure: does not change
  residency);
- ``on_evict(page, now)``    — the simulator confirms the eviction;
- ``prepare(trace)``         — optional oracle hook (Belady's B0 needs the
  whole future; A0 receives its probability vector at construction).

The driver (either :class:`repro.sim.CacheSimulator` or the full
:class:`repro.buffer.BufferPool`) owns the resident set and calls these
hooks; the base class mirrors residency so subclasses can index their
bookkeeping and so invariants are checkable in tests.

``now`` is the 1-based reference-string subscript ``t`` of the access being
processed, exactly the paper's notion of time.

Threading contract
------------------

Policies are **thread-confined, not thread-safe**: a policy instance
carries mutable bookkeeping (the residency mirror here, plus whatever
the subclass keeps) and takes no locks of its own. Exactly one driver
may deliver the event protocol to an instance, and concurrent drivers
must hold an external lock around *every* hook call — the hooks are not
individually atomic (``choose_victim`` followed by ``on_evict`` is one
critical section, not two). The concurrent service layer
(:mod:`repro.service.sharded`) satisfies this by giving each shard a
private policy behind the shard lock and never sharing instances; the
single-threaded simulators satisfy it trivially. Sharing one policy
between pools, or one pool between unlocked threads, is a bug even if
it happens not to crash.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Type

from ..errors import ConfigurationError, NoEvictableFrameError, PolicyError
from ..types import PageId

#: Empty exclusion set reused by default arguments.
NO_EXCLUSIONS: FrozenSet[PageId] = frozenset()


class ReplacementPolicy(abc.ABC):
    """Abstract page replacement policy. See module docstring for protocol."""

    #: Registry name; subclasses override (e.g. "lru", "lru-2", "lfu").
    name: str = "abstract"

    def __init__(self) -> None:
        self._resident: set = set()
        #: Event dispatcher bound by an observing driver, or None. Policies
        #: that emit their own telemetry (LRU-K's purge demon) check this;
        #: everything else can ignore it.
        self.observability = None

    def bind_observability(self, dispatcher) -> None:
        """Attach an :class:`repro.obs.EventDispatcher` for policy events."""
        self.observability = dispatcher

    # -- residency mirror ----------------------------------------------------

    def __contains__(self, page: PageId) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def resident_pages(self) -> FrozenSet[PageId]:
        """Snapshot of the pages the policy believes are resident."""
        return frozenset(self._resident)

    # -- protocol ------------------------------------------------------------

    def observe(self, reference, now: int) -> None:
        """Receive the full :class:`~repro.types.Reference` being processed.

        Drivers call this immediately before the corresponding
        :meth:`on_hit`/:meth:`on_admit`, so policies that exploit
        reference metadata (e.g. LRU-K's process-aware Time-Out
        Correlation, Section 2.1.1) can see process/transaction ids and
        the read/write kind. The default is a no-op; the page-id-only
        hooks remain the decision surface.
        """

    def on_hit(self, page: PageId, now: int) -> None:
        """The referenced page was found resident at time ``now``."""
        if page not in self._resident:
            raise PolicyError(f"hit on non-resident page {page}")

    def on_admit(self, page: PageId, now: int) -> None:
        """The referenced page was fetched and admitted at time ``now``."""
        if page in self._resident:
            raise PolicyError(f"admitting already-resident page {page}")
        self._resident.add(page)

    def on_evict(self, page: PageId, now: int) -> None:
        """The driver evicted ``page`` (normally one we chose)."""
        if page not in self._resident:
            raise PolicyError(f"evicting non-resident page {page}")
        self._resident.discard(page)

    @abc.abstractmethod
    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        """Return the resident page to drop.

        ``incoming`` is the page about to be admitted (policies such as the
        multi-pool baseline choose victims from the incoming page's pool).
        ``exclude`` holds pages that must not be chosen (pinned frames).
        Must raise :class:`NoEvictableFrameError` when every resident page
        is excluded, and must not mutate residency — the driver follows up
        with :meth:`on_evict`.
        """

    def prepare(self, trace: Sequence[PageId]) -> None:
        """Receive the full future reference string (oracles only)."""

    def make_kernel(self, capacity: int):
        """Return a fused simulation kernel for this policy, or None.

        A kernel is a closure ``kernel(pages, warmup) ->
        :class:`repro.policies.kernel.KernelResult`` that runs an entire
        compact page-id trace in one loop, decision-identically to
        driving :meth:`repro.sim.CacheSimulator.access_page` one
        reference at a time (see :mod:`repro.policies.kernel` for the
        full contract). The default — no kernel — keeps every policy on
        the object path; policies with a fused implementation override
        this and may still return None for configurations (or live
        state) the fused loop does not replicate.
        """
        return None

    def make_batch_kernel(self, capacity: int):
        """Return a run-skipping batch kernel for this policy, or None.

        A batch kernel has the scalar kernel's contract plus one
        extension: the returned callable may itself return None after
        inspecting the trace (numpy missing, page ids unusable as dense
        array indices, or a hotness probe predicting batching would
        lose) — nothing is mutated in that case and the driver falls
        back to :meth:`make_kernel` or the object path. See
        :mod:`repro.policies.kernel`.
        """
        return None

    def reset(self) -> None:
        """Forget everything (fresh run). Subclasses extend."""
        self._resident.clear()

    # -- helpers for subclasses ----------------------------------------------

    def _check_candidates(self, exclude: FrozenSet[PageId]) -> None:
        """Raise when no resident page is evictable."""
        if not self._resident:
            raise NoEvictableFrameError("no resident pages to evict")
        if exclude and self._resident <= exclude:
            raise NoEvictableFrameError("all resident pages are excluded")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(resident={len(self._resident)})"


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., ReplacementPolicy]] = {}


def register_policy(name: str) -> Callable[[Type[ReplacementPolicy]],
                                           Type[ReplacementPolicy]]:
    """Class decorator registering a policy constructor under ``name``."""
    def decorator(cls: Type[ReplacementPolicy]) -> Type[ReplacementPolicy]:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate policy name {name!r}")
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return decorator


def register_policy_factory(name: str,
                            factory: Callable[..., ReplacementPolicy]) -> None:
    """Register a callable (e.g. a partial over LRUKPolicy) under ``name``."""
    if name in _REGISTRY:
        raise ConfigurationError(f"duplicate policy name {name!r}")
    _REGISTRY[name] = factory


def available_policies() -> Iterator[str]:
    """Iterate registered policy names in sorted order."""
    return iter(sorted(_REGISTRY))


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a registered policy by name.

    Examples: ``make_policy("lru")``, ``make_policy("lru-k", k=2)``,
    ``make_policy("a0", probabilities={...})``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {known}") from None
    return factory(**kwargs)
