"""FIFO and MRU baselines.

FIFO evicts in admission order regardless of hits; it is the degenerate
"no recency credit at all" end of the spectrum and the policy analysed
alongside LRU by Dan & Towsley [DANTOWS], whose approximation we implement
in :mod:`repro.analysis.dan_towsley`. MRU evicts the *most* recently used
page — the classical answer to sequential flooding (Example 1.2) when the
access pattern is a pure cyclic scan, and a useful foil in the swamping
benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("fifo")
class FIFOPolicy(ReplacementPolicy):
    """First-In First-Out replacement: evict the oldest admission."""

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[PageId, None]" = OrderedDict()

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._order[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._order[page]

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        for page in self._order:
            if page not in exclude:
                return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def make_kernel(self, capacity: int):
        from .kernel import make_fifo_kernel
        return make_fifo_kernel(self, capacity)

    def reset(self) -> None:
        super().reset()
        self._order.clear()


@register_policy("mru")
class MRUPolicy(ReplacementPolicy):
    """Most Recently Used replacement: evict the newest access."""

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[PageId, None]" = OrderedDict()

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._order.move_to_end(page)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._order[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._order[page]

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        for page in reversed(self._order):
            if page not in exclude:
                return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def reset(self) -> None:
        super().reset()
        self._order.clear()
