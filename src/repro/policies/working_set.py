"""Working-Set replacement (Denning [DENNING]).

The working set W(t, tau) is the set of pages referenced in the last
``tau`` references. The policy prefers to evict pages that have dropped
out of the working set (oldest first); if every resident page is inside
the window — the "working set exceeds memory" regime — it degrades to
plain LRU, which is the conventional fixed-allocation adaptation of
Denning's variable-allocation scheme.

Included because the paper's Section 1.1 traces LRU's origin to
instruction-logic paging work ([DENNING], [COFFDENN]); the working-set
policy is the canonical representative of that tradition and a useful
comparison point in the adaptivity benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("working-set")
class WorkingSetPolicy(ReplacementPolicy):
    """Evict outside-working-set pages first, LRU within the window."""

    def __init__(self, window: int = 1000) -> None:
        super().__init__()
        if window <= 0:
            raise ConfigurationError("working-set window must be positive")
        self.window = window
        # LRU-ordered map page -> last access time.
        self._last_access: "OrderedDict[PageId, int]" = OrderedDict()

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._last_access[page] = now
        self._last_access.move_to_end(page)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._last_access[page] = now

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._last_access[page]

    def in_working_set(self, page: PageId, now: int) -> bool:
        """True when the page was referenced within the last ``window`` refs."""
        return now - self._last_access[page] < self.window

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        # The LRU order means the first unexcluded page is simultaneously
        # the best out-of-working-set candidate (oldest) and the LRU
        # fallback when everything is inside the window.
        for page in self._last_access:
            if page not in exclude:
                return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def working_set_size(self, now: int) -> int:
        """|W(t, tau)| over resident pages (diagnostics)."""
        return sum(1 for p in self._last_access if self.in_working_set(p, now))

    def reset(self) -> None:
        super().reset()
        self._last_access.clear()
