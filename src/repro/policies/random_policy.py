"""Uniform-random replacement.

Evicting a uniformly random resident page is the memoryless baseline: under
the Independent Reference Model its steady-state hit ratio equals FIFO's
(a classical result reproduced by benchmark A7). It anchors the bottom of
every comparison table and doubles as a fuzzing driver in the test suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..errors import NoEvictableFrameError
from ..stats import SeededRng
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("random")
class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random unexcluded resident page.

    Maintains an index-addressable list with swap-remove so victim choice
    is O(1) expected even with exclusions.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed
        self._rng = SeededRng(seed)
        self._pages: List[PageId] = []
        self._slot_of: Dict[PageId, int] = {}

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._slot_of[page] = len(self._pages)
        self._pages.append(page)

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        slot = self._slot_of.pop(page)
        last = self._pages.pop()
        if last != page:
            self._pages[slot] = last
            self._slot_of[last] = slot

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        if not exclude:
            return self._pages[self._rng.randrange(len(self._pages))]
        candidates = [p for p in self._pages if p not in exclude]
        if not candidates:
            raise NoEvictableFrameError("all resident pages are excluded")
        return candidates[self._rng.randrange(len(candidates))]

    def reset(self) -> None:
        super().reset()
        self._pages.clear()
        self._slot_of.clear()
        self._rng = SeededRng(self._seed)  # replay identically after reset
