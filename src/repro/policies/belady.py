"""Belady's OPT (B0) — optimal replacement with a future oracle.

[BELADY] "assumes complete knowledge of a specific reference string omega,
and takes the strategy of retaining in memory those pages that will be
re-referenced again the shortest time in the future" (paper Section 3).
The paper argues B0 is "unapproachable in real situations" and uses A0 as
the practical yardstick; we implement B0 anyway because it bounds every
table from above and anchors property tests (no policy may beat OPT).

Usage contract: call :meth:`prepare` with the exact page-id sequence the
simulator will drive, *before* the run. The policy then expects to observe
reference ``trace[t-1]`` at time ``t`` (1-based), which is what
:class:`repro.sim.CacheSimulator` guarantees.

Implementation: a single preprocessing pass builds ``next_use[t]`` = the
subscript of the next occurrence of the page referenced at ``t`` (or
+infinity). At access time the resident page's key in a lazy max-heap is
updated to its next use; the victim is the resident page whose next use is
farthest away. Total cost O(T log B).
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import NoEvictableFrameError, OracleError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy

#: Sentinel "never referenced again".
NEVER = float("inf")


@register_policy("opt")
class BeladyPolicy(ReplacementPolicy):
    """Belady's optimal algorithm (B0), requiring the full future."""

    def __init__(self) -> None:
        super().__init__()
        self._trace: Optional[Sequence[PageId]] = None
        self._next_use_at: List[float] = []
        self._next_use: Dict[PageId, float] = {}
        # Max-heap via negated keys: (-next_use, page).
        self._heap: List[Tuple[float, PageId]] = []

    def prepare(self, trace: Sequence[PageId]) -> None:
        """Precompute next-occurrence links for the given reference string."""
        self._trace = list(trace)
        length = len(self._trace)
        self._next_use_at = [NEVER] * length
        last_seen: Dict[PageId, int] = {}
        for index in range(length - 1, -1, -1):
            page = self._trace[index]
            future = last_seen.get(page)
            self._next_use_at[index] = NEVER if future is None else future + 1
            last_seen[page] = index

    def _observe(self, page: PageId, now: int) -> None:
        if self._trace is None:
            raise OracleError("BeladyPolicy.prepare(trace) was never called")
        index = now - 1
        if index >= len(self._trace) or self._trace[index] != page:
            raise OracleError(
                f"reference at t={now} does not match the prepared trace")
        next_use = self._next_use_at[index]
        self._next_use[page] = next_use
        heapq.heappush(self._heap, (-next_use, page))

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._observe(page, now)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._observe(page, now)

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._next_use[page]

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        skipped: List[Tuple[float, PageId]] = []
        victim: Optional[PageId] = None
        while self._heap:
            neg_next, page = heapq.heappop(self._heap)
            if self._next_use.get(page) != -neg_next:
                continue  # stale: evicted or key advanced by a later access
            skipped.append((neg_next, page))
            if page in exclude:
                continue
            victim = page
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        if victim is None:
            raise NoEvictableFrameError("all resident pages are excluded")
        return victim

    def reset(self) -> None:
        super().reset()
        self._next_use.clear()
        self._heap.clear()
        # The prepared trace survives reset so a fresh identical run works.
