"""FBR — Frequency-Based Replacement (Robinson & Devarakonda [ROBDEV]).

The paper cites this algorithm directly: its "Factoring out Locality"
section is where the Time-Out Correlation idea of Section 2.1.1 "is not
new". FBR is the count-based way of discounting correlated references:

- the LRU stack is divided into a **new** section (top), a **middle**,
  and an **old** section (bottom);
- a hit on a page in the *new* section does **not** increment its
  reference count — bursts of re-references to a just-used page are
  locality, not popularity (the analogue of LRU-K's CRP);
- the victim is the page with the smallest count within the *old*
  section, ties broken by recency;
- counts are periodically halved once the average count exceeds a
  threshold, bounding the past's influence (the aging knob the paper's
  Section 1.2 groups with GCLOCK/LRD).

The stack is materialized as three ordered segments with O(1) promotion
and demotion, so every operation is constant-time (amortized; the aging
sweep is O(B) and bounded by the count growth rate).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError, PolicyError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("fbr")
class FBRPolicy(ReplacementPolicy):
    """Frequency-Based Replacement with new/middle/old sections."""

    def __init__(self, capacity: int,
                 new_fraction: float = 0.25,
                 old_fraction: float = 0.25,
                 average_count_limit: float = 4.0) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigurationError("FBR needs the buffer capacity")
        if not 0.0 < new_fraction < 1.0 or not 0.0 < old_fraction < 1.0:
            raise ConfigurationError("section fractions must lie in (0, 1)")
        if new_fraction + old_fraction >= 1.0:
            raise ConfigurationError(
                "new + old sections must leave room for the middle")
        if average_count_limit <= 1.0:
            raise ConfigurationError("average_count_limit must exceed 1")
        self.capacity = capacity
        self.new_size = max(1, int(capacity * new_fraction))
        self.old_size = max(1, int(capacity * old_fraction))
        # Each segment is LRU-ordered: first item = LRU end.
        self._new: "OrderedDict[PageId, None]" = OrderedDict()
        self._middle: "OrderedDict[PageId, None]" = OrderedDict()
        self._old: "OrderedDict[PageId, None]" = OrderedDict()
        self._count: Dict[PageId, int] = {}
        self._count_total = 0  # running sum, keeps aging checks O(1)
        self.average_count_limit = average_count_limit

    # -- section bookkeeping ------------------------------------------------------

    def section_of(self, page: PageId) -> str:
        """Which section a resident page currently occupies."""
        if page in self._new:
            return "new"
        if page in self._middle:
            return "middle"
        if page in self._old:
            return "old"
        raise ConfigurationError(f"page {page} is not resident")

    def _rebalance(self) -> None:
        """Demote LRU overflow: new -> middle -> old."""
        while len(self._new) > self.new_size:
            page, _ = self._new.popitem(last=False)
            self._middle[page] = None
        middle_cap = max(0, len(self._resident) - self.new_size
                         - self.old_size)
        while len(self._middle) > middle_cap:
            page, _ = self._middle.popitem(last=False)
            self._old[page] = None

    def _remove(self, page: PageId) -> str:
        for name, segment in (("new", self._new), ("middle", self._middle),
                              ("old", self._old)):
            if page in segment:
                del segment[page]
                return name
        raise PolicyError(f"page {page} missing from all FBR sections")

    # -- protocol ---------------------------------------------------------------------

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        section = self._remove(page)
        if section != "new":
            # Only non-new hits count: locality is factored out.
            self._count[page] = self._count.get(page, 1) + 1
            self._count_total += 1
            self._maybe_age()
        self._new[page] = None  # MRU of the new section
        self._rebalance()

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._count[page] = 1
        self._count_total += 1
        self._new[page] = None
        self._rebalance()

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        self._remove(page)
        self._count_total -= self._count.pop(page)
        self._rebalance()

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        # Least-count page in the old section, ties to the LRU end.
        victim: Optional[PageId] = None
        best_count: Optional[int] = None
        for page in self._old:  # LRU end first
            if page in exclude:
                continue
            count = self._count[page]
            if best_count is None or count < best_count:
                best_count = count
                victim = page
        if victim is not None:
            return victim
        # Old section empty/excluded: fall back to LRU order across the
        # remaining sections (middle first, then new).
        for segment in (self._middle, self._new):
            for page in segment:
                if page not in exclude:
                    return page
        raise NoEvictableFrameError("all resident pages are excluded")

    # -- aging ----------------------------------------------------------------------------

    def _maybe_age(self) -> None:
        if not self._count:
            return
        average = self._count_total / len(self._count)
        if average > self.average_count_limit:
            for page in self._count:
                self._count[page] = max(1, self._count[page] // 2)
            self._count_total = sum(self._count.values())

    def reference_count(self, page: PageId) -> int:
        """Current (aged) FBR count of a resident page."""
        return self._count.get(page, 0)

    def reset(self) -> None:
        super().reset()
        self._new.clear()
        self._middle.clear()
        self._old.clear()
        self._count.clear()
        self._count_total = 0
