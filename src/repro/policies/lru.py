"""Classical LRU — the paper's LRU-1 baseline.

"When a new buffer is needed, the LRU policy drops the page from buffer
that has not been accessed for the longest time" (Section 1.1). The
recency order is an :class:`collections.OrderedDict` used as an intrusive
list: hits move the page to the MRU end, the victim is taken from the LRU
end, all O(1).

Note that :class:`repro.core.lruk.LRUKPolicy` with ``k=1`` and a zero
Correlated Reference Period makes identical decisions; a property test
asserts that equivalence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("lru")
class LRUPolicy(ReplacementPolicy):
    """Least Recently Used replacement (the paper's LRU-1)."""

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[PageId, None]" = OrderedDict()

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        self._order.move_to_end(page)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        self._order[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        del self._order[page]

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        for page in self._order:
            if page not in exclude:
                return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def make_kernel(self, capacity: int):
        from .kernel import make_lru_kernel
        return make_lru_kernel(self, capacity)

    def make_batch_kernel(self, capacity: int):
        from .kernel import make_lru_batch_kernel
        return make_lru_batch_kernel(self, capacity)

    def reset(self) -> None:
        super().reset()
        self._order.clear()

    def recency_order(self) -> list:
        """Pages from least- to most-recently used (testing/diagnostics)."""
        return list(self._order)
