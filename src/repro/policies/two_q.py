"""2Q (Johnson & Shasha, VLDB 1994) — the direct descendant of LRU-K.

2Q was proposed one year after this paper explicitly as a constant-time
approximation of LRU-2: a short FIFO queue ``A1in`` absorbs first-time
(possibly correlated) references, a ghost queue ``A1out`` remembers
recently evicted once-referenced pages (playing the role of LRU-K's
Retained Information), and only pages re-referenced while remembered in
``A1out`` are promoted into the main LRU ``Am``. We include it as lineage
for benchmark A8.

This is "full 2Q" with the standard parameters: ``A1in`` sized at 25% of
the buffer, ``A1out`` remembering 50% of the buffer's worth of ghosts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("2q")
class TwoQPolicy(ReplacementPolicy):
    """Full 2Q with A1in (FIFO), A1out (ghost FIFO), and Am (LRU)."""

    def __init__(self, capacity: int,
                 kin_fraction: float = 0.25,
                 kout_fraction: float = 0.50) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigurationError("2Q needs the buffer capacity up front")
        if not 0.0 < kin_fraction < 1.0 or kout_fraction <= 0.0:
            raise ConfigurationError("2Q queue fractions out of range")
        self.capacity = capacity
        self.kin = max(1, int(capacity * kin_fraction))
        self.kout = max(1, int(capacity * kout_fraction))
        self._a1in: "OrderedDict[PageId, None]" = OrderedDict()
        self._a1out: "OrderedDict[PageId, None]" = OrderedDict()
        self._am: "OrderedDict[PageId, None]" = OrderedDict()

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        if page in self._am:
            self._am.move_to_end(page)
        # A hit inside A1in leaves the page in place (2Q's answer to
        # correlated references: bursts do not promote).

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        if page in self._a1out:
            # Re-reference while remembered: promote to the hot queue.
            del self._a1out[page]
            self._am[page] = None
        else:
            self._a1in[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        if page in self._a1in:
            del self._a1in[page]
            # Evicted from A1in -> remembered as a ghost.
            self._a1out[page] = None
            while len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
        elif page in self._am:
            del self._am[page]

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        # Standard 2Q: reclaim from A1in while it exceeds its target size,
        # otherwise from the LRU end of Am; fall through across queues when
        # exclusions or emptiness block the preferred choice.
        queues = ((self._a1in, self._am) if len(self._a1in) > self.kin
                  else (self._am, self._a1in))
        for queue in queues:
            for page in queue:
                if page not in exclude:
                    return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def reset(self) -> None:
        super().reset()
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()

    # -- diagnostics ----------------------------------------------------------

    @property
    def hot_pages(self) -> FrozenSet[PageId]:
        """Pages currently in the Am (hot) queue."""
        return frozenset(self._am)

    @property
    def ghost_pages(self) -> FrozenSet[PageId]:
        """Pages remembered in A1out (non-resident history)."""
        return frozenset(self._a1out)
