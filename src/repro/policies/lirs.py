"""LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS 2002).

The second famous descendant of LRU-K (alongside ARC): where LRU-2 ranks
pages by the *time* of their second-to-last reference, LIRS ranks them by
**Inter-Reference Recency** (IRR) — the number of *distinct* pages seen
between a page's last two references — and partitions residents into a
large LIR (low-IRR, "hot") set and a small HIR (high-IRR) set that takes
all the eviction traffic. Like LRU-K it keeps history for non-resident
pages (ghost entries in its recency stack), which is exactly the Retained
Information idea of the paper's Section 2.1.2.

Structures (classical formulation):

- **stack S** — recency-ordered entries for LIR pages, resident HIR
  pages, and non-resident HIR ghosts; the bottom of S is always LIR
  (enforced by *stack pruning*);
- **queue Q** — the resident HIR pages in FIFO order; the front of Q is
  the eviction victim.

State transitions on access:

- hit on a LIR page: move to the top of S; prune.
- hit on a resident HIR page that is *in S* (its IRR beat some LIR
  page's recency): promote it to LIR; the bottom LIR page demotes to a
  resident HIR page (tail of Q); prune.
- hit on a resident HIR page *not in S*: stays HIR; re-enter S top and
  move to Q's tail.
- miss on a ghost (in S, non-resident): admitted directly as LIR, with
  the same bottom-LIR demotion.
- cold miss: admitted as resident HIR (S top + Q tail) — one reference
  is never enough for LIR status once the LIR set is full.

The eviction victim is always Q's front (residents of the HIR set); when
Q is empty (cold start or pathological exclusions) the bottom-most LIR
page is the fallback. Ghost entries are bounded at ``ghost_factor x
capacity``, oldest first — the same bounded-history compromise as
``LRUKPolicy(max_history_blocks=...)``.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError, PolicyError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


class _State(enum.Enum):
    LIR = "lir"
    HIR_RESIDENT = "hir"
    GHOST = "ghost"


@register_policy("lirs")
class LIRSPolicy(ReplacementPolicy):
    """LIRS over the event-driven policy protocol."""

    def __init__(self, capacity: int, hir_fraction: float = 0.05,
                 ghost_factor: float = 2.0) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigurationError("LIRS needs the buffer capacity")
        if not 0.0 < hir_fraction < 1.0:
            raise ConfigurationError("hir_fraction must lie in (0, 1)")
        if ghost_factor <= 0:
            raise ConfigurationError("ghost_factor must be positive")
        self.capacity = capacity
        self.hir_size = max(1, int(round(capacity * hir_fraction)))
        self.lir_size = max(1, capacity - self.hir_size)
        self.ghost_limit = max(1, int(capacity * ghost_factor))
        # Stack S: page -> state, insertion order = recency (last = top).
        self._stack: "OrderedDict[PageId, _State]" = OrderedDict()
        # Queue Q: resident HIR pages, FIFO (first = eviction victim).
        self._queue: "OrderedDict[PageId, None]" = OrderedDict()
        # Ghosts by age (first = oldest), for the ghost bound.
        self._ghosts: "OrderedDict[PageId, None]" = OrderedDict()
        self._lir_count = 0

    # -- stack machinery --------------------------------------------------------

    def _stack_top(self, page: PageId, state: _State) -> None:
        if page in self._stack:
            del self._stack[page]
        self._stack[page] = state

    def _prune(self) -> None:
        """Pop non-LIR entries off the bottom of S."""
        while self._stack:
            page, state = next(iter(self._stack.items()))
            if state is _State.LIR:
                return
            del self._stack[page]
            if state is _State.GHOST:
                self._ghosts.pop(page, None)

    def _demote_bottom_lir(self) -> None:
        """Bottom LIR page becomes a resident HIR page at Q's tail.

        The demoted page leaves S entirely (classical formulation): its
        recency is the worst in the stack, so keeping the entry would
        carry no information.
        """
        for page, state in self._stack.items():
            if state is _State.LIR:
                del self._stack[page]
                self._queue[page] = None
                self._lir_count -= 1
                self._prune()
                return
        raise PolicyError("no LIR page to demote")

    # -- protocol ------------------------------------------------------------------

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        state = self._stack.get(page)
        if state is _State.LIR:
            self._stack_top(page, _State.LIR)
            self._prune()
        elif state is _State.HIR_RESIDENT:
            # In S: its IRR is lower than the bottom LIR's recency ->
            # promote; demote the bottom LIR to keep |LIR| = lir_size.
            del self._queue[page]
            self._stack_top(page, _State.LIR)
            self._lir_count += 1
            if self._lir_count > self.lir_size:
                self._demote_bottom_lir()
            self._prune()
        else:
            # Resident HIR not in S (aged out): stays HIR.
            self._stack_top(page, _State.HIR_RESIDENT)
            self._queue.move_to_end(page)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        state = self._stack.get(page)
        if state is _State.GHOST:
            # Ghost hit: low IRR proven -> straight to LIR.
            self._ghosts.pop(page, None)
            self._stack_top(page, _State.LIR)
            self._lir_count += 1
            if self._lir_count > self.lir_size:
                self._demote_bottom_lir()
            self._prune()
        elif self._lir_count < self.lir_size:
            # Cold start: fill the LIR set first.
            self._stack_top(page, _State.LIR)
            self._lir_count += 1
        else:
            self._stack_top(page, _State.HIR_RESIDENT)
            self._queue[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        if page in self._queue:
            del self._queue[page]
            if self._stack.get(page) is _State.HIR_RESIDENT:
                # Still in S: keep the history as a ghost.
                self._stack[page] = _State.GHOST
                self._ghosts[page] = None
                while len(self._ghosts) > self.ghost_limit:
                    oldest, _ = self._ghosts.popitem(last=False)
                    self._stack.pop(oldest, None)
        elif self._stack.get(page) is _State.LIR:
            # Fallback eviction of a LIR page (empty Q / exclusions).
            del self._stack[page]
            self._lir_count -= 1
            self._prune()
        else:
            raise PolicyError(f"evicting page {page} in unknown LIRS state")

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        for page in self._queue:          # FIFO front first
            if page not in exclude:
                return page
        for page, state in self._stack.items():   # bottom-most LIR fallback
            if state is _State.LIR and page not in exclude:
                return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def reset(self) -> None:
        super().reset()
        self._stack.clear()
        self._queue.clear()
        self._ghosts.clear()
        self._lir_count = 0

    # -- diagnostics ------------------------------------------------------------------

    @property
    def lir_pages(self) -> FrozenSet[PageId]:
        """Current LIR (hot) pages."""
        return frozenset(page for page, state in self._stack.items()
                         if state is _State.LIR)

    @property
    def resident_hir_pages(self) -> FrozenSet[PageId]:
        """Current resident HIR pages (the eviction pool)."""
        return frozenset(self._queue)

    @property
    def ghost_pages(self) -> FrozenSet[PageId]:
        """Non-resident pages whose history is retained in S."""
        return frozenset(self._ghosts)
