"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

The most prominent member of the LRU-K lineage: like LRU-2 it distinguishes
pages seen once from pages seen at least twice recently, and like LRU-K it
keeps history (ghost lists B1/B2) for non-resident pages; unlike either it
continuously *adapts* the split between its recency list T1 and frequency
list T2. Included as an extension for the lineage benchmark (A8).

Implementation notes
--------------------
ARC is specified as an integrated cache algorithm (its REPLACE step is
interleaved with ghost-list case analysis), while our drivers own
residency. The adaptation of the target size ``p`` happens in
``on_admit`` — where ghost hits are visible — and ``choose_victim``
evaluates the REPLACE rule against the current ``p``. The externally
observable decisions match the canonical formulation; the unit tests
replay the published worked examples.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Optional

from ..errors import ConfigurationError, NoEvictableFrameError
from ..types import PageId
from .base import NO_EXCLUSIONS, ReplacementPolicy, register_policy


@register_policy("arc")
class ARCPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache over the event-driven policy protocol."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigurationError("ARC needs the buffer capacity up front")
        self.capacity = capacity
        self._t1: "OrderedDict[PageId, None]" = OrderedDict()  # seen once
        self._t2: "OrderedDict[PageId, None]" = OrderedDict()  # seen >= twice
        self._b1: "OrderedDict[PageId, None]" = OrderedDict()  # ghosts of T1
        self._b2: "OrderedDict[PageId, None]" = OrderedDict()  # ghosts of T2
        self._p = 0.0  # adaptive target size of T1
        self._last_victim_from_t1: Optional[bool] = None

    # -- protocol --------------------------------------------------------------

    def on_hit(self, page: PageId, now: int) -> None:
        super().on_hit(page, now)
        # Case I: hit in T1 or T2 -> move to MRU of T2.
        if page in self._t1:
            del self._t1[page]
            self._t2[page] = None
        else:
            self._t2.move_to_end(page)

    def on_admit(self, page: PageId, now: int) -> None:
        super().on_admit(page, now)
        c = float(self.capacity)
        if page in self._b1:
            # Case II: ghost hit in B1 -> grow T1's target, admit into T2.
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(c, self._p + delta)
            del self._b1[page]
            self._t2[page] = None
        elif page in self._b2:
            # Case III: ghost hit in B2 -> shrink T1's target, admit into T2.
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
            del self._b2[page]
            self._t2[page] = None
        else:
            # Case IV: brand-new page -> admit into T1; trim ghost lists per
            # the published cases (|L1| = c -> drop B1 LRU; |L1|+|L2| = 2c
            # -> drop B2 LRU).
            l1 = len(self._t1) + len(self._b1)
            total = l1 + len(self._t2) + len(self._b2)
            if l1 >= self.capacity and self._b1:
                self._b1.popitem(last=False)
            elif total >= 2 * self.capacity and self._b2:
                self._b2.popitem(last=False)
            self._t1[page] = None

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        if page in self._t1:
            del self._t1[page]
            self._b1[page] = None
            self._trim_ghosts()
        elif page in self._t2:
            del self._t2[page]
            self._b2[page] = None
            self._trim_ghosts()

    def _trim_ghosts(self) -> None:
        while len(self._b1) > self.capacity:
            self._b1.popitem(last=False)
        while len(self._b1) + len(self._b2) > 2 * self.capacity:
            if self._b2:
                self._b2.popitem(last=False)
            else:
                self._b1.popitem(last=False)

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        # REPLACE(p): evict T1's LRU when |T1| exceeds the target p (or,
        # in the xB2 refinement, when |T1| == p and the miss hit in B2);
        # otherwise evict T2's LRU.
        incoming_in_b2 = incoming is not None and incoming in self._b2
        t1_len = len(self._t1)
        prefer_t1 = t1_len > 0 and (
            t1_len > self._p or (incoming_in_b2 and t1_len == int(self._p)))
        queues = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        for queue in queues:
            for page in queue:
                if page not in exclude:
                    return page
        raise NoEvictableFrameError("all resident pages are excluded")

    def reset(self) -> None:
        super().reset()
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0.0

    # -- diagnostics ------------------------------------------------------------

    @property
    def target_t1(self) -> float:
        """The adaptive target size p of the recency list T1."""
        return self._p

    @property
    def recency_pages(self) -> FrozenSet[PageId]:
        """Resident pages seen exactly once recently (T1)."""
        return frozenset(self._t1)

    @property
    def frequency_pages(self) -> FrozenSet[PageId]:
        """Resident pages seen at least twice recently (T2)."""
        return frozenset(self._t2)
