"""Logical and simulated-wall-clock time.

The paper measures "all time intervals in terms of counts of successive
page accesses in the reference string" (Section 2), but states its tuning
constants in seconds: a Correlated Reference Period of "5 seconds" and a
Retained Information Period of "about 200 seconds" derived from the Five
Minute Rule. :class:`ReferenceClock` reconciles the two views by mapping a
logical reference count to simulated seconds at a configurable reference
rate, so second-denominated knobs translate deterministically into logical
units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError


class LogicalClock:
    """A monotone counter of reference-string subscripts.

    ``tick()`` advances to the next subscript and returns it; subscripts are
    1-based to match the paper's :math:`r_1, r_2, \\ldots` convention.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ConfigurationError("clock cannot start before time 0")
        self._now = start

    @property
    def now(self) -> int:
        """The subscript of the most recent reference (0 before the first)."""
        return self._now

    def tick(self) -> int:
        """Advance by one reference and return the new subscript."""
        self._now += 1
        return self._now

    def advance(self, steps: int) -> int:
        """Advance by ``steps`` references at once (e.g. skipped warm-up)."""
        if steps < 0:
            raise ConfigurationError("cannot advance a clock backwards")
        self._now += steps
        return self._now


@dataclass(frozen=True)
class ReferenceClock:
    """Conversion between logical references and simulated seconds.

    Parameters
    ----------
    references_per_second:
        Throughput of the simulated system. The paper's OLTP trace covers
        one hour with ~470,000 references, i.e. roughly 130 refs/s, which is
        the default here.
    """

    references_per_second: float = 130.0

    def __post_init__(self) -> None:
        if not (self.references_per_second > 0):
            raise ConfigurationError("references_per_second must be positive")

    def seconds_to_references(self, seconds: float) -> int:
        """Convert a duration in seconds to whole logical references.

        Rounds up so that a positive wall-clock period never collapses to
        zero logical time (which would disable CRP/RIP semantics).
        Infinity maps to a sentinel usable as an unbounded period.
        """
        if seconds < 0:
            raise ConfigurationError("durations cannot be negative")
        if math.isinf(seconds):
            return _INFINITE_REFERENCES
        return int(math.ceil(seconds * self.references_per_second))

    def references_to_seconds(self, references: int) -> float:
        """Convert a logical-time interval back into simulated seconds."""
        if references < 0:
            raise ConfigurationError("durations cannot be negative")
        return references / self.references_per_second


#: Logical-duration sentinel that behaves as "longer than any simulation".
_INFINITE_REFERENCES = 2 ** 62


def is_unbounded(references: int) -> bool:
    """True when a logical duration is the unbounded sentinel (or larger)."""
    return references >= _INFINITE_REFERENCES
