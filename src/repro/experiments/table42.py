"""Experiment spec for Table 4.2 — Zipfian random access (Section 4.2).

Workload: N=1000 pages, self-similar Zipfian skew with alpha=0.8,
beta=0.2 (the 80-20 rule). Policies: LRU-1, LRU-2, A0. The paper does not
state this experiment's protocol lengths; we reuse the Section 4.1
convention scaled to the page count (drop 10*N, measure 30*N), which
reaches the same quasi-stable regime.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..sim import ExperimentSpec, PolicySpec
from ..workloads import ZipfianWorkload

#: The paper's buffer-size rows.
TABLE_4_2_CAPACITIES = (40, 60, 80, 100, 120, 140, 160, 180, 200, 300, 500)


def table_4_2_spec(scale: float = 1.0,
                   n: int = 1000,
                   alpha: float = 0.8,
                   beta: float = 0.2,
                   capacities: Optional[Sequence[int]] = None,
                   repetitions: int = 3,
                   seed: int = 0,
                   include_equi_effective: bool = True) -> ExperimentSpec:
    """Build the Table 4.2 experiment."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    workload = ZipfianWorkload(n=n, alpha=alpha, beta=beta)
    if capacities is None:
        capacities = list(TABLE_4_2_CAPACITIES)
    return ExperimentSpec(
        name=f"Table 4.2 — Zipfian random access "
             f"(N={n}, {alpha:.0%}/{beta:.0%} skew, scale={scale:g})",
        workload=workload,
        policies=[PolicySpec.lru(), PolicySpec.lruk(2), PolicySpec.a0()],
        capacities=list(capacities),
        warmup=int(10 * n * scale),
        measured=int(30 * n * scale),
        seed=seed,
        repetitions=repetitions,
        equi_effective=(("LRU-1", "LRU-2") if include_equi_effective
                        else None),
        equi_effective_high=max(max(capacities) * 4, n),
        caption=("Simulation results of random access with Zipfian "
                 "frequencies; compare paper Table 4.2."),
    )
