"""Ready-made experiment specifications for the paper's tables.

Benchmarks, examples, and the CLI all build their runs from this package
so that "Table 4.1" means the same thing everywhere:

- :func:`~repro.experiments.table41.table_4_1_spec` — the two-pool
  experiment (Section 4.1);
- :func:`~repro.experiments.table42.table_4_2_spec` — the Zipfian
  experiment (Section 4.2);
- :func:`~repro.experiments.table43.table_4_3_spec` — the OLTP trace
  experiment (Section 4.3, synthetic trace per DESIGN.md);
- :mod:`~repro.experiments.paper_data` — the published numbers, for
  paper-vs-measured comparison tables;
- :mod:`~repro.experiments.ablations` — the A1-A10 ablation runs from
  DESIGN.md (A11 and A12 live directly in ``benchmarks/`` because they
  measure wall-clock behaviour).

Every spec accepts a ``scale`` knob: 1.0 runs the paper's exact protocol
lengths, larger values lengthen warm-up/measurement windows for tighter
estimates (the benchmarks' default), smaller values give quick smoke runs.
"""

from .paper_data import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    PAPER_TABLE_4_3,
    PaperRow,
)
from .table41 import table_4_1_spec
from .table42 import table_4_2_spec
from .table43 import table_4_3_spec
from .compare import comparison_table, shape_check

__all__ = [
    "PAPER_TABLE_4_1",
    "PAPER_TABLE_4_2",
    "PAPER_TABLE_4_3",
    "PaperRow",
    "table_4_1_spec",
    "table_4_2_spec",
    "table_4_3_spec",
    "comparison_table",
    "shape_check",
]
