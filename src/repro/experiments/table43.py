"""Experiment spec for Table 4.3 — the OLTP trace experiment (Section 4.3).

Workload: the synthetic CODASYL bank trace of
:class:`~repro.workloads.oltp.BankOLTPWorkload`, calibrated to the
statistics the paper reports for its production trace (DESIGN.md §3
documents the substitution). Policies: LRU-1, LRU-2, LFU — the paper's
exact comparison. Protocol: the paper replays its one-hour trace once; we
treat the first ~15% as warm-up and measure the rest, and expose ``scale``
to shrink the trace for quick runs (hit-ratio shapes stabilize well before
full length).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..sim import ExperimentSpec, PolicySpec
from ..workloads import BankOLTPWorkload
from ..workloads.oltp import PAPER_TRACE_LENGTH

#: The paper's buffer-size rows.
TABLE_4_3_CAPACITIES = (100, 200, 300, 400, 500, 600, 800, 1000,
                        1200, 1400, 1600, 2000, 3000, 5000)


def table_4_3_spec(scale: float = 1.0,
                   capacities: Optional[Sequence[int]] = None,
                   repetitions: int = 1,
                   seed: int = 0,
                   include_equi_effective: bool = True) -> ExperimentSpec:
    """Build the Table 4.3 experiment.

    ``scale`` scales the trace length (and the workload's page counts stay
    fixed, so small scales under-visit the cold tail — use scale >= 0.2
    for publishable rows; the paper's length is scale=1).
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    workload = BankOLTPWorkload()
    if capacities is None:
        capacities = list(TABLE_4_3_CAPACITIES)
    total = int(PAPER_TRACE_LENGTH * scale)
    warmup = max(1, int(total * 0.15))
    return ExperimentSpec(
        name=f"Table 4.3 — OLTP trace experiment "
             f"(synthetic bank trace, {total} references)",
        workload=workload,
        policies=[PolicySpec.lru(), PolicySpec.lruk(2), PolicySpec.lfu()],
        capacities=list(capacities),
        warmup=warmup,
        measured=total - warmup,
        seed=seed,
        repetitions=repetitions,
        equi_effective=(("LRU-1", "LRU-2") if include_equi_effective
                        else None),
        equi_effective_high=max(capacities) * 8,
        caption=("Simulation results of the OLTP trace experiment on the "
                 "calibrated synthetic trace; compare paper Table 4.3."),
    )
