"""Experiment spec for Table 4.1 — the two-pool experiment (Section 4.1).

Workload: alternating references to Pool 1 (N1=100 pages) and Pool 2
(N2=10,000 pages), uniform within each pool. Policies: LRU-1, LRU-2,
LRU-3, A0. Protocol: drop 10*N1 references, measure 30*N1. The
equi-effective column is B(LRU-1)/B(LRU-2).

``scale`` stretches the warm-up and measurement windows (the paper's
3,000-reference window is noisy; the benchmark default uses scale=5 and
averages repetitions, which the paper's single-run protocol did not).
``size_factor`` multiplies N1, N2 and every B — the paper's closing remark
that "the same results hold if all page numbers ... are multiplied by
1000" (bench A6 exercises it at 10x).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..sim import ExperimentSpec, PolicySpec
from ..workloads import TwoPoolWorkload

#: The paper's buffer-size rows.
TABLE_4_1_CAPACITIES = (60, 80, 100, 120, 140, 160, 180, 200,
                        250, 300, 350, 400, 450)


def table_4_1_spec(scale: float = 1.0,
                   size_factor: int = 1,
                   capacities: Optional[Sequence[int]] = None,
                   repetitions: int = 3,
                   seed: int = 0,
                   include_lru3: bool = True,
                   include_equi_effective: bool = True) -> ExperimentSpec:
    """Build the Table 4.1 experiment."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    if size_factor <= 0:
        raise ConfigurationError("size_factor must be positive")
    n1 = 100 * size_factor
    n2 = 10_000 * size_factor
    workload = TwoPoolWorkload(n1=n1, n2=n2)
    if capacities is None:
        capacities = [b * size_factor for b in TABLE_4_1_CAPACITIES]
    policies = [PolicySpec.lru(), PolicySpec.lruk(2)]
    if include_lru3:
        policies.append(PolicySpec.lruk(3))
    policies.append(PolicySpec.a0())
    return ExperimentSpec(
        name=f"Table 4.1 — two-pool experiment "
             f"(N1={n1}, N2={n2}, scale={scale:g})",
        workload=workload,
        policies=policies,
        capacities=list(capacities),
        warmup=int(workload.warmup_references * scale),
        measured=int(workload.measured_references * scale),
        seed=seed,
        repetitions=repetitions,
        equi_effective=(("LRU-1", "LRU-2") if include_equi_effective
                        else None),
        equi_effective_high=max(capacities) * 8,
        caption=("Simulation results of the two pool experiment; compare "
                 "paper Table 4.1."),
    )
