"""Ablation experiments A1-A10 (DESIGN.md §2).

Each function runs one ablation and returns a
:class:`~repro.sim.tables.Table`; the ``benchmarks/`` directory wraps them
in pytest-benchmark entry points and the CLI exposes them by name. These
probe the design choices the paper discusses but does not tabulate:
the K sweep, the Correlated Reference Period, the Retained Information
Period, adaptivity to moving hot spots, sequential-scan immunity,
scale-invariance, analytic cross-checks, the post-1993 lineage, manual
pool tuning, and the victim-selection data structure.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..analysis import (
    a0_hit_ratio,
    fifo_hit_ratio_approximation,
    lru_hit_ratio_approximation,
)
from ..core import LRUKPolicy
from ..errors import ConfigurationError
from ..policies import MultiPoolPolicy, make_policy
from ..sim import CacheSimulator, PolicySpec, Table, run_paper_protocol
from ..types import HitRatioCounter
from ..workloads import (
    BurstSpec,
    CorrelatedReferenceWrapper,
    MovingHotspotWorkload,
    ScanSwampingWorkload,
    TwoPoolWorkload,
    ZipfianWorkload,
)
from ..workloads.base import Workload


def ablation_k_sweep(ks: Sequence[int] = (1, 2, 3, 4, 5),
                     capacity: int = 100,
                     scale: float = 3.0,
                     seed: int = 0) -> Table:
    """A1: hit ratio vs K on the stable two-pool workload.

    The paper: "for K > 2, the LRU-K algorithm provides somewhat improved
    performance over LRU-2 for stable patterns of access" — expect a
    monotone-ish climb toward A0 with diminishing returns.
    """
    workload = TwoPoolWorkload()
    warmup = int(workload.warmup_references * scale)
    measured = int(workload.measured_references * scale)
    table = Table(
        title=f"A1 — LRU-K sweep on the stable two-pool workload (B={capacity})",
        columns=["K", "hit ratio"])
    for k in ks:
        result = run_paper_protocol(
            workload, PolicySpec.lruk(k), capacity, warmup, measured,
            seed=seed, repetitions=3)
        table.add_row(k, result.hit_ratio)
    a0 = run_paper_protocol(workload, PolicySpec.a0(), capacity,
                            warmup, measured, seed=seed, repetitions=3)
    table.add_row("A0", a0.hit_ratio)
    return table


def ablation_crp_sweep(crps: Sequence[int] = (0, 1, 2, 4, 8, 16, 32, 64),
                       capacity: int = 100,
                       burst_fraction: float = 0.4,
                       references: int = 40_000,
                       seed: int = 0) -> Table:
    """A2: LRU-2 hit ratio vs Correlated Reference Period under bursts.

    The base workload is the two-pool pattern; a fraction of references
    explode into correlated bursts (Section 2.1.1 pair types). Without a
    CRP, bursts fake short interarrival times and pollute the hot set;
    with a CRP covering the burst gaps, Table-4.1-like discrimination
    returns. The burst follow-ups inflate the trivially-hittable mass, so
    compare *relative* movement across CRP values, not Table 4.1 levels.
    """
    base = TwoPoolWorkload()
    workload = CorrelatedReferenceWrapper(
        base, burst_fraction=burst_fraction,
        spec=BurstSpec(extra_references=2, max_gap=3))
    warmup = references // 4
    measured = references - warmup
    table = Table(
        title=f"A2 — Correlated Reference Period sweep "
              f"(B={capacity}, burst fraction {burst_fraction:.0%})",
        columns=["CRP", "LRU-2 hit ratio", "uncorrelated refs",
                 "correlated refs"])
    for crp in crps:
        policy = LRUKPolicy(k=2, correlated_reference_period=crp)
        simulator = CacheSimulator(policy, capacity)
        refs = list(workload.references(warmup + measured, seed=seed))
        for index, ref in enumerate(refs):
            if index == warmup:
                simulator.start_measurement()
            simulator.access(ref)
        table.add_row(crp, simulator.hit_ratio,
                      policy.stats.uncorrelated_references,
                      policy.stats.correlated_references)
    return table


def ablation_rip_sweep(rips: Sequence[Optional[int]] = (
        200, 400, 800, 1_600, 6_000, None),
                       capacity: int = 80,
                       scale: float = 1.0,
                       seed: int = 0) -> Table:
    """A3: Retained Information Period vs hit ratio and history memory.

    The Section 2.1.2 scenario needs history to outlive residence *and*
    the hot set to keep evolving (a static uniform hot set gets learned
    once through lucky residence overlaps and then never needs retained
    information again). Here 50 hot pages carry 1/16 of the references
    (per-page interarrival ~800) and the hot set jumps every 10,000
    references, while an unknown page's residence is only ~90 references:
    a newly-hot page is long gone from buffer before its second reference
    arrives, so only a retained HIST block (RIP >= the ~800 interarrival)
    lets LRU-2 recognize it — "otherwise we might reference the page p
    again relatively quickly and once again have no record of prior
    reference, drop it again, reference it again, etc." Below that
    threshold the re-learning after every jump is crippled; above it the
    hit ratio plateaus while the history footprint keeps growing —
    quantifying the paper's Section 5 "open issue" trade-off (the last
    column is the answer to "how much space we should set aside for
    history control blocks").
    """
    workload = MovingHotspotWorkload(db_pages=200_000, hot_pages=50,
                                     hot_fraction=0.0625,
                                     epoch_length=10_000)
    warmup = int(10_000 * scale)
    measured = int(30_000 * scale)
    table = Table(
        title=f"A3 — Retained Information Period sweep (B={capacity})",
        columns=["RIP", "LRU-2 hit ratio", "history blocks", "purged"])
    for rip in rips:
        policy = LRUKPolicy(k=2, retained_information_period=rip)
        simulator = CacheSimulator(policy, capacity)
        refs = workload.references(warmup + measured, seed=seed)
        for index, ref in enumerate(refs):
            if index == warmup:
                simulator.start_measurement()
            simulator.access(ref)
        table.add_row("inf" if rip is None else rip,
                      simulator.hit_ratio,
                      policy.retained_blocks,
                      policy.history.purged_blocks)
    return table


def ablation_adaptivity(policy_names: Sequence[str] = (
        "lru", "lru-2", "lru-3", "lfu"),
                        epochs: int = 4,
                        epoch_length: int = 20_000,
                        capacity: int = 120,
                        seed: int = 0) -> Table:
    """A4: per-epoch hit ratios while the hot spot jumps.

    Expected shape (paper Sections 1.2/4.1/4.3): LFU never re-adapts,
    LRU-3 recovers more slowly than LRU-2, LRU-1 adapts instantly but
    discriminates poorly within an epoch.
    """
    workload = MovingHotspotWorkload(epoch_length=epoch_length)
    total = epochs * epoch_length
    columns = ["policy"] + [f"epoch {e}" for e in range(epochs)]
    table = Table(
        title=f"A4 — adaptivity to a moving hot spot "
              f"(B={capacity}, epoch={epoch_length})",
        columns=columns)
    for name in policy_names:
        if name.startswith("lru-") and name[4:].isdigit():
            policy = LRUKPolicy(k=int(name[4:]))
        else:
            policy = make_policy(name)
        simulator = CacheSimulator(policy, capacity)
        per_epoch: List[float] = []
        window = HitRatioCounter()
        for index, ref in enumerate(workload.references(total, seed=seed)):
            outcome = simulator.access(ref)
            window.record(outcome.hit)
            if (index + 1) % epoch_length == 0:
                per_epoch.append(window.hit_ratio)
                window.reset()
        label = "LRU-1" if name == "lru" else name.upper()
        table.add_row(label, *per_epoch)
    return table


def ablation_scan_swamping(capacity: int = 600,
                           references: int = 60_000,
                           seed: int = 0) -> Table:
    """A5: Example 1.2 — interactive hit ratio with scans on/off.

    Measures only the *interactive* stream's hit ratio. LRU-1 degrades
    sharply when scanners run (scan pages displace the hot set); LRU-2
    keeps the hot set because scan pages have infinite backward 2-distance.
    """
    swamped = ScanSwampingWorkload(hot_pages=500, db_pages=100_000,
                                   scan_processes=2, scan_share=0.4)
    quiet = swamped.interactive_only()
    warmup = references // 4
    table = Table(
        title=f"A5 — sequential-scan swamping, interactive hit ratio "
              f"(B={capacity})",
        columns=["policy", "no scans", "with scans", "degradation"])
    for name, label in (("lru", "LRU-1"), ("lru-2", "LRU-2"),
                        ("lfu", "LFU"), ("2q", "2Q")):
        ratios: Dict[str, float] = {}
        for scenario, workload in (("no scans", quiet),
                                   ("with scans", swamped)):
            if name == "2q":
                policy = make_policy(name, capacity=capacity)
            else:
                policy = make_policy(name)
            simulator = CacheSimulator(policy, capacity)
            interactive = HitRatioCounter()
            refs = workload.references(references, seed=seed)
            for index, ref in enumerate(refs):
                outcome = simulator.access(ref)
                if index >= warmup and ref.process_id == 0:
                    interactive.record(outcome.hit)
            ratios[scenario] = interactive.hit_ratio
        table.add_row(label, ratios["no scans"], ratios["with scans"],
                      ratios["no scans"] - ratios["with scans"])
    return table


def ablation_scaling(size_factors: Sequence[int] = (1, 2, 5, 10),
                     seed: int = 0) -> Table:
    """A6: scale-invariance of the two-pool results.

    The paper: "the same results hold if all page numbers N1, N2 and B are
    multiplied by 1000". We verify the hit-ratio surface is flat in the
    scale factor at B = 100 x factor.
    """
    table = Table(
        title="A6 — scale-invariance of the two-pool experiment "
              "(B = 100 x factor)",
        columns=["factor", "LRU-1", "LRU-2", "A0"])
    for factor in size_factors:
        workload = TwoPoolWorkload(n1=100 * factor, n2=10_000 * factor)
        capacity = 100 * factor
        warmup = workload.warmup_references
        measured = workload.measured_references
        row: List = [factor]
        for spec in (PolicySpec.lru(), PolicySpec.lruk(2), PolicySpec.a0()):
            result = run_paper_protocol(workload, spec, capacity,
                                        warmup, measured, seed=seed,
                                        repetitions=2)
            row.append(result.hit_ratio)
        table.add_row(*row)
    return table


def ablation_analytic_cross_check(capacities: Sequence[int] = (
        40, 100, 200, 300, 500),
                                  n: int = 1000,
                                  seed: int = 0) -> Table:
    """A7: simulated vs analytic hit ratios on the Zipfian workload.

    LRU simulation vs the characteristic-time approximation, FIFO vs its
    analogue, simulated A0 vs its closed form — the simulator and the
    Section 3 mathematics must agree.
    """
    workload = ZipfianWorkload(n=n)
    probabilities = workload.reference_probabilities()
    warmup, measured = 10 * n, 30 * n
    table = Table(
        title=f"A7 — analytic cross-check on the Zipfian workload (N={n})",
        columns=["B", "LRU sim", "LRU analytic", "FIFO sim",
                 "FIFO analytic", "A0 sim", "A0 closed form"])
    for capacity in capacities:
        lru = run_paper_protocol(workload, PolicySpec.lru(), capacity,
                                 warmup, measured, seed=seed, repetitions=3)
        fifo = run_paper_protocol(workload,
                                  PolicySpec.registry("FIFO", "fifo"),
                                  capacity, warmup, measured,
                                  seed=seed, repetitions=3)
        a0 = run_paper_protocol(workload, PolicySpec.a0(), capacity,
                                warmup, measured, seed=seed, repetitions=3)
        table.add_row(
            capacity,
            lru.hit_ratio,
            lru_hit_ratio_approximation(probabilities, capacity),
            fifo.hit_ratio,
            fifo_hit_ratio_approximation(probabilities, capacity),
            a0.hit_ratio,
            a0_hit_ratio(probabilities, capacity))
    return table


def ablation_lineage(capacity: int = 1000,
                     references: int = 150_000,
                     seed: int = 0) -> Table:
    """A8: LRU-2 against its descendants and the aging-counter family.

    2Q and ARC (post-1993 lineage), GCLOCK and LRD-V2 (the tuned-aging
    family the paper criticizes), on the OLTP trace.
    """
    from ..workloads import BankOLTPWorkload
    workload = BankOLTPWorkload()
    warmup = references // 5
    measured = references - warmup
    table = Table(
        title=f"A8 — lineage comparison on the OLTP trace (B={capacity})",
        columns=["policy", "hit ratio"])
    specs = [
        PolicySpec.lru(),
        PolicySpec.lruk(2),
        PolicySpec.lfu(),
        PolicySpec.capacity_aware("2Q", "2q"),
        PolicySpec.capacity_aware("ARC", "arc"),
        PolicySpec.capacity_aware("SLRU", "slru"),
        PolicySpec.capacity_aware("FBR", "fbr"),
        PolicySpec.capacity_aware("LIRS", "lirs"),
        PolicySpec.registry("GCLOCK", "gclock"),
        PolicySpec.registry("LRD-V2", "lrd-v2"),
    ]
    for spec in specs:
        result = run_paper_protocol(workload, spec, capacity, warmup,
                                    measured, seed=seed, repetitions=1)
        table.add_row(spec.label, result.hit_ratio)
    return table


def ablation_multipool(capacity: int = 150,
                       scale: float = 3.0,
                       seed: int = 0) -> Table:
    """A9: DBA-tuned multi-pool vs self-reliant LRU-2 (Section 1.1).

    The multi-pool baseline gets the *perfect* tuning for the two-pool
    workload: quota N1 for the hot pool, the rest for the cold pool. The
    paper's claim is that LRU-2 "approaches the effect of assigning page
    sets to different buffer pools of specifically tuned sizes" — without
    the hints. A mis-tuned variant shows the cost of stale hints.
    """
    workload = TwoPoolWorkload()
    warmup = int(workload.warmup_references * scale)
    measured = int(workload.measured_references * scale)
    hot_quota = min(workload.n1, capacity - 1)

    def tuned(ctx) -> MultiPoolPolicy:
        return MultiPoolPolicy(
            domain_of=lambda page: 1 if page < workload.n1 else 2,
            quotas={1: hot_quota, 2: ctx.capacity - hot_quota})

    def mistuned(ctx) -> MultiPoolPolicy:
        cold_quota = ctx.capacity - max(1, hot_quota // 4)
        return MultiPoolPolicy(
            domain_of=lambda page: 1 if page < workload.n1 else 2,
            quotas={1: max(1, hot_quota // 4), 2: cold_quota})

    specs = [
        PolicySpec("multi-pool (tuned)", tuned),
        PolicySpec("multi-pool (mistuned)", mistuned),
        PolicySpec.lruk(2),
        PolicySpec.lru(),
        PolicySpec.a0(),
    ]
    table = Table(
        title=f"A9 — manual pool tuning vs self-reliant LRU-2 (B={capacity})",
        columns=["policy", "hit ratio"])
    for spec in specs:
        result = run_paper_protocol(workload, spec, capacity, warmup,
                                    measured, seed=seed, repetitions=3)
        table.add_row(spec.label, result.hit_ratio)
    return table


def ablation_victim_structure(capacities: Sequence[int] = (100, 400, 1600),
                              references: int = 30_000,
                              seed: int = 0) -> Table:
    """A10: heap vs Figure 2.1 linear-scan victim selection.

    Decision-equivalence is property-tested elsewhere; this ablation
    reports wall-clock per reference, confirming the paper's remark that a
    real implementation "would actually be based on a search tree".
    """
    workload = ZipfianWorkload(n=20_000)
    table = Table(
        title="A10 — victim-selection data structure (LRU-2)",
        columns=["B", "heap us/ref", "scan us/ref", "speedup"])
    for capacity in capacities:
        timings: Dict[str, float] = {}
        for selection in ("heap", "scan"):
            policy = LRUKPolicy(k=2, selection=selection)
            simulator = CacheSimulator(policy, capacity)
            refs = list(workload.references(references, seed=seed))
            started = time.perf_counter()
            for ref in refs:
                simulator.access(ref)
            timings[selection] = ((time.perf_counter() - started)
                                  / references * 1e6)
        table.add_row(capacity, timings["heap"], timings["scan"],
                      timings["scan"] / timings["heap"])
    return table


#: Registry used by the CLI.
ABLATIONS = {
    "k-sweep": ablation_k_sweep,
    "crp": ablation_crp_sweep,
    "rip": ablation_rip_sweep,
    "adaptivity": ablation_adaptivity,
    "scan-swamping": ablation_scan_swamping,
    "scaling": ablation_scaling,
    "analytic": ablation_analytic_cross_check,
    "lineage": ablation_lineage,
    "multipool": ablation_multipool,
    "victim-structure": ablation_victim_structure,
}
