"""Paper-vs-measured comparison utilities.

Per the reproduction charter (DESIGN.md §5), we assert the *shape* of each
table — who wins, by roughly what factor, where the curves converge — not
third-decimal equality with a 1993 RNG. :func:`comparison_table` renders
the side-by-side numbers for EXPERIMENTS.md; :func:`shape_check` encodes
the acceptance criteria as machine-checkable predicates used by the
integration tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim import ExperimentResult, Table
from .paper_data import PaperRow


def comparison_table(result: ExperimentResult,
                     paper_rows: Sequence[PaperRow]) -> Table:
    """Side-by-side measured vs published hit ratios per (B, policy)."""
    paper_by_capacity = {row.capacity: row for row in paper_rows}
    labels = [spec.label for spec in result.spec.policies
              if any(spec.label in row.hit_ratios for row in paper_rows)]
    columns = ["B"]
    for label in labels:
        columns.extend([f"{label} (paper)", f"{label} (ours)"])
    columns.extend(["B-ratio (paper)", "B-ratio (ours)"])
    table = Table(
        title=f"{result.spec.name} — paper vs measured",
        columns=columns)
    for cell in result.cells:
        paper_row = paper_by_capacity.get(cell.capacity)
        row: List = [cell.capacity]
        for label in labels:
            row.append(paper_row.hit_ratios.get(label) if paper_row else None)
            row.append(cell.hit_ratio(label))
        row.append(paper_row.equi_effective if paper_row else None)
        row.append(result.equi_effective_ratios.get(cell.capacity))
        table.add_row(*row)
    return table


@dataclass
class ShapeCheck:
    """Outcome of the acceptance-criteria evaluation for one experiment."""

    passed: bool
    failures: List[str] = field(default_factory=list)

    def require(self, condition: bool, message: str) -> None:
        """Record one criterion."""
        if not condition:
            self.passed = False
            self.failures.append(message)


def shape_check(result: ExperimentResult,
                ordering: Sequence[str],
                min_gap_at: Optional[Tuple[int, str, str, float]] = None,
                converges_at: Optional[Tuple[int, str, str, float]] = None
                ) -> ShapeCheck:
    """Check qualitative table shape.

    Parameters
    ----------
    ordering:
        Policy labels from worst to best; every capacity row must respect
        ``hit(earlier) <= hit(later) + slack``.
    min_gap_at:
        ``(capacity, loser, winner, min_gap)`` — at the given row the
        winner must beat the loser by at least ``min_gap``.
    converges_at:
        ``(capacity, a, b, max_gap)`` — at the given row the two policies
        must agree within ``max_gap`` (the "differences become
        insignificant at large B" claim).
    """
    if len(ordering) < 2:
        raise ConfigurationError("ordering needs at least two policies")
    check = ShapeCheck(passed=True)
    slack = 0.02  # simulation noise allowance on a hit ratio
    for cell in result.cells:
        for worse, better in zip(ordering, ordering[1:]):
            check.require(
                cell.hit_ratio(worse) <= cell.hit_ratio(better) + slack,
                f"B={cell.capacity}: expected {worse} <= {better} but "
                f"{cell.hit_ratio(worse):.3f} > {cell.hit_ratio(better):.3f}")
    if min_gap_at is not None:
        capacity, loser, winner, min_gap = min_gap_at
        cell = _cell_at(result, capacity)
        gap = cell.hit_ratio(winner) - cell.hit_ratio(loser)
        check.require(
            gap >= min_gap,
            f"B={capacity}: expected {winner} to beat {loser} by >= "
            f"{min_gap:.3f}, got {gap:.3f}")
    if converges_at is not None:
        capacity, a, b, max_gap = converges_at
        cell = _cell_at(result, capacity)
        gap = abs(cell.hit_ratio(a) - cell.hit_ratio(b))
        check.require(
            gap <= max_gap,
            f"B={capacity}: expected {a} and {b} within {max_gap:.3f}, "
            f"got {gap:.3f}")
    return check


def _cell_at(result: ExperimentResult, capacity: int):
    for cell in result.cells:
        if cell.capacity == capacity:
            return cell
    raise ConfigurationError(f"no row with B={capacity}")
