"""One-shot reproduction report.

``python -m repro report`` regenerates every paper artifact this library
reproduces — Tables 4.1/4.2/4.3 with the published values side by side,
the Section 4.3 trace characterization, and (optionally) the A1-A12
ablations — and renders a single Markdown document. EXPERIMENTS.md in
this repository is the curated long-form version; this module produces
the mechanical equivalent for any parameter setting, so downstream users
can re-verify the reproduction on their own machines with one command.
"""

from __future__ import annotations

import io
import time
from typing import Callable, Optional

from ..analysis import profile_trace
from ..sim import run_experiment
from ..workloads import BankOLTPWorkload
from ..workloads.oltp import (
    FIVE_MINUTE_WINDOW_REFERENCES,
    PAPER_TRACE_LENGTH,
)
from .ablations import ABLATIONS
from .compare import comparison_table
from .paper_data import PAPER_TABLE_4_1, PAPER_TABLE_4_2, PAPER_TABLE_4_3
from .table41 import table_4_1_spec
from .table42 import table_4_2_spec
from .table43 import table_4_3_spec

Progress = Optional[Callable[[str], None]]


def _say(progress: Progress, message: str) -> None:
    if progress is not None:
        progress(message)


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def generate_report(table_scale: float = 1.0,
                    oltp_scale: float = 0.25,
                    repetitions: int = 2,
                    include_ablations: bool = False,
                    seed: int = 0,
                    progress: Progress = None) -> str:
    """Run the reproduction and return the Markdown report."""
    out = io.StringIO()
    started = time.perf_counter()
    out.write("# Reproduction report — LRU-K (O'Neil, O'Neil & Weikum, "
              "SIGMOD 1993)\n\n")
    out.write(f"Parameters: table scale {table_scale:g}, OLTP trace scale "
              f"{oltp_scale:g}, {repetitions} repetition(s), seed {seed}."
              "\n\n")

    _say(progress, "Table 4.1 (two-pool experiment) ...")
    result = run_experiment(table_4_1_spec(
        scale=table_scale, repetitions=repetitions, seed=seed))
    out.write("## Table 4.1 — two-pool experiment\n\n")
    out.write(_code_block(comparison_table(result,
                                           PAPER_TABLE_4_1).render()))
    out.write("\n\n")

    _say(progress, "Table 4.2 (Zipfian experiment) ...")
    result = run_experiment(table_4_2_spec(
        scale=table_scale, repetitions=repetitions, seed=seed))
    out.write("## Table 4.2 — Zipfian random access\n\n")
    out.write(_code_block(comparison_table(result,
                                           PAPER_TABLE_4_2).render()))
    out.write("\n\n")

    _say(progress, "Table 4.3 (OLTP trace experiment) ...")
    result = run_experiment(table_4_3_spec(scale=oltp_scale, seed=seed))
    out.write("## Table 4.3 — OLTP trace experiment "
              "(synthetic trace, see DESIGN.md §3)\n\n")
    out.write(_code_block(comparison_table(result,
                                           PAPER_TABLE_4_3).render()))
    out.write("\n\n")

    _say(progress, "Trace characterization ...")
    count = int(PAPER_TRACE_LENGTH * oltp_scale)
    window = max(1, int(FIVE_MINUTE_WINDOW_REFERENCES * oltp_scale))
    references = list(BankOLTPWorkload().references(count, seed=seed))
    profile = profile_trace(references, window)
    out.write("## Section 4.3 trace characterization\n\n")
    out.write("Paper: 40% of references on 3% of pages; 90% on 65%; "
              "~1400 Five-Minute-Rule pages.\n\n")
    out.write(_code_block("\n".join(profile.summary_lines())))
    out.write("\n\n")

    if include_ablations:
        out.write("## Ablations (DESIGN.md A1-A10)\n\n")
        for name in sorted(ABLATIONS):
            _say(progress, f"ablation {name} ...")
            table = ABLATIONS[name]()
            out.write(f"### {name}\n\n")
            out.write(_code_block(table.render()))
            out.write("\n\n")

    elapsed = time.perf_counter() - started
    out.write(f"---\nGenerated in {elapsed:.1f} s by `python -m repro "
              f"report`.\n")
    return out.getvalue()
