"""The paper's published evaluation numbers, transcribed verbatim.

Tables 4.1-4.3 of O'Neil, O'Neil & Weikum (SIGMOD 1993). Used by the
comparison utilities and EXPERIMENTS.md generation to report
paper-vs-measured for every row, and by the test suite's shape checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One row of a published table: hit ratios by policy + B(1)/B(2)."""

    capacity: int
    hit_ratios: Dict[str, float]
    equi_effective: Optional[float]

    def ratio(self, label: str) -> float:
        """Published hit ratio for a policy column."""
        return self.hit_ratios[label]


def _rows(columns: Tuple[str, ...], data) -> Tuple[PaperRow, ...]:
    rows = []
    for entry in data:
        capacity = entry[0]
        ratios = dict(zip(columns, entry[1:-1]))
        rows.append(PaperRow(capacity=capacity, hit_ratios=ratios,
                             equi_effective=entry[-1]))
    return tuple(rows)


#: Table 4.1 — two-pool experiment, N1=100, N2=10,000.
PAPER_TABLE_4_1 = _rows(
    ("LRU-1", "LRU-2", "LRU-3", "A0"),
    [
        (60, 0.14, 0.291, 0.300, 0.300, 2.3),
        (80, 0.18, 0.382, 0.400, 0.400, 2.6),
        (100, 0.22, 0.459, 0.495, 0.500, 3.0),
        (120, 0.26, 0.496, 0.501, 0.501, 3.3),
        (140, 0.29, 0.502, 0.502, 0.502, 3.2),
        (160, 0.32, 0.503, 0.503, 0.503, 2.8),
        (180, 0.34, 0.504, 0.504, 0.504, 2.5),
        (200, 0.37, 0.505, 0.505, 0.505, 2.3),
        (250, 0.42, 0.508, 0.508, 0.508, 2.2),
        (300, 0.45, 0.510, 0.510, 0.510, 2.0),
        (350, 0.48, 0.513, 0.513, 0.513, 1.9),
        (400, 0.49, 0.515, 0.515, 0.515, 1.9),
        (450, 0.50, 0.517, 0.518, 0.518, 1.8),
    ],
)

#: Table 4.2 — Zipfian random access, N=1000, alpha=0.8, beta=0.2.
PAPER_TABLE_4_2 = _rows(
    ("LRU-1", "LRU-2", "A0"),
    [
        (40, 0.53, 0.61, 0.640, 2.0),
        (60, 0.57, 0.65, 0.677, 2.2),
        (80, 0.61, 0.67, 0.705, 2.1),
        (100, 0.63, 0.68, 0.727, 1.6),
        (120, 0.64, 0.71, 0.745, 1.5),
        (140, 0.67, 0.72, 0.761, 1.4),
        (160, 0.70, 0.74, 0.776, 1.5),
        (180, 0.71, 0.73, 0.788, 1.2),
        (200, 0.72, 0.76, 0.825, 1.3),
        (300, 0.78, 0.80, 0.846, 1.1),
        (500, 0.87, 0.87, 0.908, 1.0),
    ],
)

#: Table 4.3 — OLTP trace experiment (one-hour bank trace, ~470k refs).
PAPER_TABLE_4_3 = _rows(
    ("LRU-1", "LRU-2", "LFU"),
    [
        (100, 0.005, 0.07, 0.07, 4.5),
        (200, 0.01, 0.15, 0.11, 3.25),
        (300, 0.02, 0.20, 0.15, 3.0),
        (400, 0.06, 0.23, 0.17, 2.75),
        (500, 0.09, 0.24, 0.19, 2.4),
        (600, 0.13, 0.25, 0.20, 2.16),
        (800, 0.18, 0.28, 0.23, 1.9),
        (1000, 0.22, 0.29, 0.25, 1.6),
        (1200, 0.24, 0.31, 0.27, 1.66),
        (1400, 0.26, 0.33, 0.30, 1.5),
        (1600, 0.29, 0.34, 0.31, 1.5),
        (2000, 0.31, 0.36, 0.33, 1.3),
        (3000, 0.38, 0.40, 0.39, 1.1),
        (5000, 0.46, 0.47, 0.44, 1.05),
    ],
)

#: Trace statistics the paper reports for the Section 4.3 workload.
PAPER_TRACE_STATS = {
    "references": 470_000,
    "top_3pct_mass": 0.40,
    "top_65pct_mass": 0.90,
    "five_minute_pages": 1400,
    "five_minute_window_references": 13_000,
}
