"""On-"disk" page representation.

The paper's running example assumes "disk pages contain 4000 bytes of
usable space"; we model a 4096-byte physical page with a small header
(page id, LSN-style version counter, payload length, checksum) leaving
4000 usable payload bytes — matching Example 1.1 exactly.

Checksums let the test suite inject and detect torn/corrupted writes, and
give the database substrate a cheap end-to-end integrity check.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from ..errors import ConfigurationError, StorageError
from ..types import PageId

#: Physical page size in bytes.
PAGE_SIZE = 4096

#: Header layout: page_id (q), version (q), payload_len (i), checksum (I).
_HEADER = struct.Struct("<qqiI")

#: Usable payload bytes per page (paper: "4000 bytes of usable space").
PAGE_PAYLOAD_SIZE = PAGE_SIZE - _HEADER.size


@dataclass
class DiskPage:
    """A physical page: identity, version counter, and payload bytes."""

    page_id: PageId
    payload: bytes = b""
    version: int = 0

    def __post_init__(self) -> None:
        if self.page_id < 0:
            raise ConfigurationError("page ids are non-negative integers")
        if len(self.payload) > PAGE_PAYLOAD_SIZE:
            raise ConfigurationError(
                f"payload of {len(self.payload)} bytes exceeds usable space "
                f"({PAGE_PAYLOAD_SIZE} bytes)")

    def to_bytes(self) -> bytes:
        """Serialize to exactly PAGE_SIZE bytes with a checksum."""
        checksum = zlib.crc32(self.payload)
        header = _HEADER.pack(self.page_id, self.version,
                              len(self.payload), checksum)
        body = self.payload.ljust(PAGE_PAYLOAD_SIZE, b"\x00")
        return header + body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DiskPage":
        """Deserialize, verifying length and checksum."""
        if len(raw) != PAGE_SIZE:
            raise StorageError(
                f"expected {PAGE_SIZE} raw bytes, got {len(raw)}")
        page_id, version, payload_len, checksum = _HEADER.unpack_from(raw)
        if not 0 <= payload_len <= PAGE_PAYLOAD_SIZE:
            raise StorageError(f"corrupt payload length {payload_len}")
        payload = raw[_HEADER.size:_HEADER.size + payload_len]
        if zlib.crc32(payload) != checksum:
            raise StorageError(f"checksum mismatch on page {page_id}")
        return cls(page_id=page_id, payload=payload, version=version)

    def with_payload(self, payload: bytes) -> "DiskPage":
        """A new version of this page carrying new payload bytes."""
        return DiskPage(page_id=self.page_id, payload=payload,
                        version=self.version + 1)
