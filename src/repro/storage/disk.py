"""The simulated disk: page store + I/O accounting + optional timing.

:class:`SimulatedDisk` is the substrate beneath :class:`repro.buffer.BufferPool`.
It stores page images (as :class:`~repro.storage.page.DiskPage` objects),
counts physical reads and writes, and — when driven with arrival times —
feeds requests through a :class:`~repro.storage.latency.DiskQueue` so that
experiments can report response times, not just I/O counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..errors import ConfigurationError, PageNotAllocatedError
from ..types import PageId
from .latency import DiskQueue, DiskServiceModel
from .page import DiskPage


@dataclass
class IoStats:
    """Physical I/O counters for one disk."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    @property
    def total_ios(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero all counters (used at warm-up boundaries)."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0


class SimulatedDisk:
    """An in-memory disk image with I/O accounting.

    Parameters
    ----------
    capacity_pages:
        Maximum number of allocatable pages, or None for unbounded. The
        paper's OLTP database is 20 GB ~ 5.2M 4K pages; simulations usually
        allocate far fewer and address pages sparsely.
    service_model:
        Optional timing model. When provided, reads/writes submitted with an
        ``arrival_ms`` pass through a FIFO disk queue and accumulate
        response-time statistics.
    """

    def __init__(self,
                 capacity_pages: Optional[int] = None,
                 service_model: Optional[DiskServiceModel] = None) -> None:
        if capacity_pages is not None and capacity_pages <= 0:
            raise ConfigurationError("disk capacity must be positive")
        self.capacity_pages = capacity_pages
        self._pages: Dict[PageId, bytes] = {}
        self._next_page_id = 0
        self.stats = IoStats()
        self.queue = DiskQueue(service_model) if service_model else None

    # -- allocation ---------------------------------------------------------

    def allocate(self) -> PageId:
        """Allocate a fresh, zero-filled page and return its id."""
        if (self.capacity_pages is not None
                and len(self._pages) >= self.capacity_pages):
            raise ConfigurationError("disk is full")
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = DiskPage(page_id).to_bytes()
        self.stats.allocations += 1
        return page_id

    def allocate_at(self, page_id: PageId) -> PageId:
        """Allocate a specific page id (sparse addressing), zero-filled.

        A no-op when the page already exists. Workload generators name
        pages directly (``N = {1, ..., n}``) rather than asking a
        sequential allocator, so the served buffer manager materializes
        each page the first time a reference addresses it. The
        sequential allocator is kept ahead of every sparse id so the two
        allocation styles never collide.
        """
        if page_id < 0:
            raise ConfigurationError("page ids are non-negative integers")
        if page_id in self._pages:
            return page_id
        if (self.capacity_pages is not None
                and len(self._pages) >= self.capacity_pages):
            raise ConfigurationError("disk is full")
        self._pages[page_id] = DiskPage(page_id).to_bytes()
        self.stats.allocations += 1
        if page_id >= self._next_page_id:
            self._next_page_id = page_id + 1
        return page_id

    def allocate_many(self, count: int) -> range:
        """Allocate ``count`` consecutive pages; returns their id range."""
        if count < 0:
            raise ConfigurationError("cannot allocate a negative page count")
        first = self._next_page_id
        for _ in range(count):
            self.allocate()
        return range(first, self._next_page_id)

    def is_allocated(self, page_id: PageId) -> bool:
        """True when the page id has been allocated."""
        return page_id in self._pages

    @property
    def allocated_pages(self) -> int:
        """Number of pages currently allocated."""
        return len(self._pages)

    def page_ids(self) -> Iterable[PageId]:
        """Iterate over all allocated page ids (allocation order)."""
        return iter(self._pages)

    # -- physical I/O -------------------------------------------------------

    def read(self, page_id: PageId,
             arrival_ms: Optional[float] = None) -> DiskPage:
        """Physically read a page image, counting the I/O."""
        raw = self._raw(page_id)
        self.stats.reads += 1
        self._account_timing(page_id, arrival_ms)
        return DiskPage.from_bytes(raw)

    def write(self, page: DiskPage,
              arrival_ms: Optional[float] = None) -> None:
        """Physically write a page image, counting the I/O."""
        self._raw(page.page_id)  # existence check
        self._pages[page.page_id] = page.to_bytes()
        self.stats.writes += 1
        self._account_timing(page.page_id, arrival_ms)

    def corrupt(self, page_id: PageId, byte_index: int = 100,
                flip_mask: int = 0xFF) -> None:
        """Fault injection: flip bits in a page's stored image.

        The next :meth:`read` of the page will fail checksum verification
        with a :class:`~repro.errors.StorageError` (unless the flipped
        byte lies in the zero padding past the payload). Used by the test
        suite to verify end-to-end corruption detection through the
        buffer manager and database engine.
        """
        raw = bytearray(self._raw(page_id))
        if not 0 <= byte_index < len(raw):
            raise ConfigurationError(
                f"byte index {byte_index} outside the page image")
        raw[byte_index] ^= flip_mask
        self._pages[page_id] = bytes(raw)

    def _raw(self, page_id: PageId) -> bytes:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None

    def _account_timing(self, page_id: PageId,
                        arrival_ms: Optional[float]) -> None:
        if self.queue is not None and arrival_ms is not None:
            self.queue.submit(page_id, arrival_ms)
