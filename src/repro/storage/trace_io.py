"""Reference-trace persistence.

The paper's third experiment replays a captured production trace. This
module defines a small, versioned, line-oriented text format for reference
strings so that synthesized traces can be written once and replayed
deterministically across benchmark runs:

    #repro-trace v1
    # free-form comment lines
    <page> [r|w] [process] [txn]

Missing fields default to read access with no process/transaction.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from ..errors import TraceFormatError
from ..types import AccessKind, PageId, Reference

_MAGIC = "#repro-trace v1"

_KIND_CODE = {AccessKind.READ: "r", AccessKind.WRITE: "w"}
_CODE_KIND = {"r": AccessKind.READ, "w": AccessKind.WRITE}


def write_trace(destination: Union[str, Path, TextIO],
                references: Iterable[Reference],
                comment: str = "") -> int:
    """Write a reference string; returns the number of references written."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            return write_trace(handle, references, comment)
    destination.write(_MAGIC + "\n")
    if comment:
        for line in comment.splitlines():
            destination.write(f"# {line}\n")
    count = 0
    for ref in references:
        fields = [str(ref.page), _KIND_CODE[ref.kind]]
        if ref.process_id is not None or ref.txn_id is not None:
            fields.append("" if ref.process_id is None else str(ref.process_id))
        if ref.txn_id is not None:
            fields.append(str(ref.txn_id))
        destination.write(" ".join(fields) + "\n")
        count += 1
    return count


def read_trace(source: Union[str, Path, TextIO]) -> Iterator[Reference]:
    """Lazily parse a trace back into references.

    Raises :class:`~repro.errors.TraceFormatError` on malformed input.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            yield from read_trace(handle)
            return
    first = source.readline().rstrip("\n")
    if first != _MAGIC:
        raise TraceFormatError(f"bad trace header: {first!r}")
    for line_no, line in enumerate(source, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, line_no)


def _parse_line(line: str, line_no: int) -> Reference:
    parts = line.split()
    try:
        page = int(parts[0])
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: bad page id {parts[0]!r}") from None
    if page < 0:
        raise TraceFormatError(f"line {line_no}: negative page id")
    kind = AccessKind.READ
    process_id = None
    txn_id = None
    if len(parts) >= 2:
        if parts[1] not in _CODE_KIND:
            raise TraceFormatError(
                f"line {line_no}: bad access kind {parts[1]!r}")
        kind = _CODE_KIND[parts[1]]
    try:
        if len(parts) >= 3 and parts[2]:
            process_id = int(parts[2])
        if len(parts) >= 4 and parts[3]:
            txn_id = int(parts[3])
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: bad process/txn field") from None
    if len(parts) > 4:
        raise TraceFormatError(f"line {line_no}: too many fields")
    return Reference(page=page, kind=kind,
                     process_id=process_id, txn_id=txn_id)


def trace_to_pages(references: Iterable[Reference]) -> List[PageId]:
    """Project a reference string down to its page-id sequence."""
    return [ref.page for ref in references]


def trace_round_trip(references: Iterable[Reference]) -> List[Reference]:
    """Serialize + reparse in memory (test helper; asserts format fidelity)."""
    buffer = io.StringIO()
    write_trace(buffer, references)
    buffer.seek(0)
    return list(read_trace(buffer))
