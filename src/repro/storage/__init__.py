"""Simulated disk substrate.

Provides the storage layer the buffer manager sits on: a page store with
allocate/read/write, a parametric disk service-time model (seek + rotation
+ transfer), a FIFO queueing model that reproduces the "long I/O queues
build up" phenomenon of the paper's Example 1.2, and trace-file I/O for
persisting and replaying reference strings.
"""

from .page import PAGE_SIZE, DiskPage
from .latency import DiskServiceModel, DiskQueue
from .disk import SimulatedDisk, IoStats
from .trace_io import write_trace, read_trace, trace_to_pages
from .columnar import TraceFile, bake_trace
from .columnar import write_trace as write_columnar_trace

__all__ = [
    "PAGE_SIZE",
    "DiskPage",
    "DiskServiceModel",
    "DiskQueue",
    "SimulatedDisk",
    "IoStats",
    "write_trace",
    "read_trace",
    "trace_to_pages",
    "TraceFile",
    "bake_trace",
    "write_columnar_trace",
]
