"""Columnar on-disk reference traces.

The paper's tables are pure functions of long reference strings, so the
string itself is the one artifact worth persisting and sharing between
runs, sweeps, and forked workers. This module stores a materialized
page-id trace in the simplest layout that supports zero-copy reads: a
small fixed header followed by the page ids as raw little-endian
``int64`` — the same width :class:`repro.sim.trace_cache.CachedTrace`
uses in memory (``array('q')``), so an ``mmap`` of the payload *is* the
trace, with no decode step and no per-process copy.

Layout (all integers little-endian)::

    offset  size  field
    0       8     magic  b"REPROTRC"
    8       4     format version (currently 1)
    12      8     generator seed
    20      8     reference count
    28      4     fingerprint length F (UTF-8 bytes)
    32      F     workload fingerprint (free-form, e.g. "zipfian(n=1000)")
    32+F    8*N   page ids, int64 little-endian

The reader validates every header field against the file's actual size
and raises :class:`repro.errors.TraceCorruptionError` on any mismatch —
a truncated block, a bad magic, an unknown version, or a count that
disagrees with the payload length must never be silently read as a
shorter trace.

Readers hand out the payload as a ``memoryview`` cast to 8-byte signed
ints: indexing, slicing, and ``len`` work like the in-memory array, but
the bytes stay in the page cache and are shared copy-free with every
forked worker that inherits the mapping.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
from array import array
from typing import Iterator, Optional, Sequence, Union

from ..errors import TraceCorruptionError
from ..types import PageId

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_VERSION",
    "TraceFile",
    "bake_trace",
    "write_trace",
]

COLUMNAR_MAGIC = b"REPROTRC"
COLUMNAR_VERSION = 1

#: magic + version + seed + count + fingerprint length.
_HEADER = struct.Struct("<8sIqqI")

#: Hard cap on the fingerprint field, so a corrupted length word cannot
#: make the reader allocate or seek past any plausible header.
_MAX_FINGERPRINT = 64 * 1024


def write_trace(path: Union[str, os.PathLike], pages: Sequence[PageId],
                fingerprint: str = "", seed: int = 0) -> int:
    """Write a page-id sequence as a columnar trace file.

    ``pages`` may be any int sequence; ``array('q')`` and compatible
    memoryviews are written with one buffer copy. Returns the number of
    bytes written. The write goes to a temporary sibling first and is
    renamed into place, so a crashed bake never leaves a half-written
    file at the destination.
    """
    encoded = fingerprint.encode("utf-8")
    if len(encoded) > _MAX_FINGERPRINT:
        raise ValueError("workload fingerprint too long")
    if isinstance(pages, array) and pages.typecode == "q":
        payload = pages
    else:
        payload = array("q", pages)
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        payload = array("q", payload)
        payload.byteswap()
    header = _HEADER.pack(COLUMNAR_MAGIC, COLUMNAR_VERSION, seed,
                          len(payload), len(encoded))
    path = os.fspath(path)
    scratch = f"{path}.tmp.{os.getpid()}"
    try:
        with open(scratch, "wb") as handle:
            handle.write(header)
            handle.write(encoded)
            handle.write(payload.tobytes())
        os.replace(scratch, path)
    finally:
        if os.path.exists(scratch):
            os.unlink(scratch)
    return len(header) + len(encoded) + 8 * len(payload)


def bake_trace(path: Union[str, os.PathLike], workload, count: int,
               seed: int = 0) -> int:
    """Materialize a workload's page-id stream straight into a trace file.

    Uses the workload's bulk :meth:`~repro.workloads.base.Workload.
    page_ids` materializer (falling back to draining ``references()``)
    and writes the result with a fingerprint derived from the workload.
    Returns the number of bytes written. Raises ``ValueError`` when the
    workload's stream carries metadata a bare page-id trace cannot hold.
    """
    from ..sim.trace_cache import CachedTrace

    trace = CachedTrace.materialize(workload, count, seed)
    if not trace.plain:
        raise ValueError(
            f"{type(workload).__name__} references carry metadata "
            "(writes or process ids); a columnar trace holds bare page "
            "ids only")
    return write_trace(path, trace.page_ids(),
                       fingerprint=workload_fingerprint(workload), seed=seed)


def workload_fingerprint(workload) -> str:
    """A short, stable description of a workload's parameterization."""
    parts = []
    for name, value in sorted(vars(workload).items()):
        if name.startswith("_") or callable(value):
            continue
        if isinstance(value, (int, float, str, bool)):
            parts.append(f"{name}={value!r}")
    return f"{type(workload).__name__}({', '.join(parts)})"


class TraceFile:
    """An ``mmap``-backed columnar trace, readable with zero copies.

    The object owns the file descriptor and the mapping; both survive
    ``fork`` so sweep workers inherit the same physical pages instead of
    pickling (or copy-on-writing) a per-process array. Use as a context
    manager or call :meth:`close` explicitly; the mapping is also
    released on garbage collection.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._mmap: Optional[mmap.mmap] = None
        self._pages: Optional[memoryview] = None
        size = os.path.getsize(self.path)
        if size < _HEADER.size:
            raise TraceCorruptionError(
                f"{self.path}: {size} bytes is shorter than the "
                f"{_HEADER.size}-byte header")
        with open(self.path, "rb") as handle:
            head = handle.read(_HEADER.size)
            magic, version, seed, count, fp_len = _HEADER.unpack(head)
            if magic != COLUMNAR_MAGIC:
                raise TraceCorruptionError(
                    f"{self.path}: bad magic {magic!r} (expected "
                    f"{COLUMNAR_MAGIC!r}); not a columnar trace")
            if version != COLUMNAR_VERSION:
                raise TraceCorruptionError(
                    f"{self.path}: unsupported trace format version "
                    f"{version} (this reader speaks {COLUMNAR_VERSION})")
            if fp_len > _MAX_FINGERPRINT:
                raise TraceCorruptionError(
                    f"{self.path}: fingerprint length {fp_len} exceeds "
                    f"the {_MAX_FINGERPRINT}-byte cap")
            if count < 0:
                raise TraceCorruptionError(
                    f"{self.path}: negative reference count {count}")
            expected = _HEADER.size + fp_len + 8 * count
            if size != expected:
                raise TraceCorruptionError(
                    f"{self.path}: header promises {count} references "
                    f"({expected} bytes) but the file holds {size} bytes")
            fingerprint = handle.read(fp_len)
            if len(fingerprint) != fp_len:
                raise TraceCorruptionError(
                    f"{self.path}: truncated fingerprint block")
            self.seed = seed
            self.count = count
            self.fingerprint = fingerprint.decode("utf-8", "replace")
            self._offset = _HEADER.size + fp_len
            if count:
                self._mmap = mmap.mmap(handle.fileno(), size,
                                       prot=mmap.PROT_READ)

    def __enter__(self) -> "TraceFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the mapping (page-id views become invalid)."""
        if self._pages is not None:
            self._pages.release()
            self._pages = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __len__(self) -> int:
        return self.count

    def page_ids(self) -> Sequence[PageId]:
        """The whole trace as a zero-copy int64 view of the mapping."""
        if self.count == 0:
            return array("q")
        if self._mmap is None:
            raise ValueError(f"{self.path}: trace file is closed")
        if self._pages is None:
            view = memoryview(self._mmap)[self._offset:]
            if sys.byteorder != "little":  # pragma: no cover
                swapped = array("q", view.tobytes())
                swapped.byteswap()
                return swapped
            self._pages = view.cast("q")
        return self._pages

    def chunks(self, size: int = 1 << 20) -> Iterator[Sequence[PageId]]:
        """Yield the trace as successive zero-copy views of ``size`` ids.

        Each view is valid only until the next iteration: the generator
        releases it as it advances (and on close), so a streaming
        consumer never pins the mapping — :meth:`close` stays possible
        even while a loop variable still names the last chunk. Copy a
        chunk (``array('q', chunk)``) to keep it.
        """
        if size <= 0:
            raise ValueError("chunk size must be positive")
        pages = self.page_ids()
        for start in range(0, len(pages), size):
            view = pages[start:start + size]
            try:
                yield view
            finally:
                if isinstance(view, memoryview):
                    view.release()
