"""Disk service-time and queueing model.

The paper motivates LRU-K economically: wasted buffer slots translate into
extra disk-arm work, and in Example 1.2 "long I/O queues build up" when
sequential scans swamp the cache. This module provides:

- :class:`DiskServiceModel` — per-request service time composed of average
  seek, half-rotation, and transfer, with a simple seek-distance term so
  sequential access is cheaper than random access (as on a real arm);
- :class:`DiskQueue` — an M/D/1-flavoured FIFO queue that turns a request
  arrival process into per-request response times (wait + service), which
  is what the swamping benchmark (A5) measures.

Times are in simulated milliseconds. Defaults follow early-1990s drives
(the paper's era): ~12 ms average seek, 5400 RPM, ~2.5 MB/s transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError
from ..stats import StreamingMoments
from ..types import PageId
from .page import PAGE_SIZE


@dataclass(frozen=True)
class DiskServiceModel:
    """Parametric single-request service time for a disk arm."""

    average_seek_ms: float = 12.0
    rotation_ms: float = 11.1          # full rotation at 5400 RPM
    transfer_mb_per_s: float = 2.5
    cylinders: int = 2000
    pages_per_cylinder: int = 512

    def __post_init__(self) -> None:
        if min(self.average_seek_ms, self.rotation_ms,
               self.transfer_mb_per_s) <= 0:
            raise ConfigurationError("disk timing parameters must be positive")
        if self.cylinders <= 0 or self.pages_per_cylinder <= 0:
            raise ConfigurationError("disk geometry must be positive")

    def cylinder_of(self, page_id: PageId) -> int:
        """Map a page id onto a cylinder (simple linear layout)."""
        return (page_id // self.pages_per_cylinder) % self.cylinders

    @property
    def transfer_ms(self) -> float:
        """Time to transfer one page off the platter."""
        return PAGE_SIZE / (self.transfer_mb_per_s * 1e6) * 1e3

    def seek_ms(self, from_page: Optional[PageId], to_page: PageId) -> float:
        """Seek time scaled by cylinder distance; 0 for same-cylinder access.

        With no previous position, charge the average seek.
        """
        if from_page is None:
            return self.average_seek_ms
        distance = abs(self.cylinder_of(to_page) - self.cylinder_of(from_page))
        if distance == 0:
            return 0.0
        # Average seek corresponds to ~1/3 of the full stroke; scale linearly.
        average_distance = self.cylinders / 3.0
        return self.average_seek_ms * min(3.0, distance / average_distance)

    def service_ms(self, from_page: Optional[PageId], to_page: PageId) -> float:
        """Total service time: seek + expected half rotation + transfer."""
        return (self.seek_ms(from_page, to_page)
                + self.rotation_ms / 2.0
                + self.transfer_ms)


@dataclass
class DiskQueue:
    """FIFO single-server queue over a :class:`DiskServiceModel`.

    Callers submit requests with an arrival time (simulated ms); the queue
    tracks when the server frees up and returns each request's response
    time. Aggregates (mean wait, mean queue depth at arrival) feed the
    swamping experiment.
    """

    service_model: DiskServiceModel = field(default_factory=DiskServiceModel)

    def __post_init__(self) -> None:
        self._server_free_at = 0.0
        self._head_position: Optional[PageId] = None
        self._completions: List[float] = []
        self.wait_ms = StreamingMoments()
        self.response_ms = StreamingMoments()
        self.depth_at_arrival = StreamingMoments()

    def submit(self, page_id: PageId, arrival_ms: float) -> float:
        """Enqueue one request; returns its response time (wait + service).

        Arrival times must be non-decreasing (the simulator's event order).
        """
        if arrival_ms < 0:
            raise ConfigurationError("arrival times cannot be negative")
        self._completions = [c for c in self._completions if c > arrival_ms]
        self.depth_at_arrival.add(float(len(self._completions)))

        start = max(arrival_ms, self._server_free_at)
        service = self.service_model.service_ms(self._head_position, page_id)
        completion = start + service
        self._server_free_at = completion
        self._head_position = page_id
        self._completions.append(completion)

        wait = start - arrival_ms
        response = completion - arrival_ms
        self.wait_ms.add(wait)
        self.response_ms.add(response)
        return response

    @property
    def busy_until_ms(self) -> float:
        """Simulated time at which the disk arm next goes idle."""
        return self._server_free_at
