"""Synthetic bank OLTP trace — the Section 4.3 substitute.

The paper's third experiment replays "a one-hour page reference trace of
the production OLTP system of a large bank ... approximately 470,000 page
references to a CODASYL database with a total size of 20 Gigabytes". That
trace no longer exists outside the authors' archive, so — per the
substitution policy in DESIGN.md — this generator synthesizes a trace
with the *same locality profile*, which is all a replacement-policy study
consumes. The paper quantifies that profile precisely:

- "40% of the references access only 3% of the database pages that were
  accessed in the trace";
- "90% of the references access 65% of the pages";
- "only about 1400 pages satisfy the criterion of the Five Minute Rule to
  be kept in memory (i.e., are re-referenced within 100 seconds)";
- one hour / 470,000 references  ->  ~130 references per second, so the
  100-second five-minute-rule window is ~13,000 references.

The model mirrors the CODASYL mechanisms of :mod:`repro.db.codasyl` at
trace scale, with four reference classes over disjoint page regions:

==============  ========================  ==================  =============
class           mechanism                 pages (of touched)  reference mass
==============  ========================  ==================  =============
root/teller     CALC on tiny hot types    100                 4%
hot accounts    CALC, skew-popular keys   1,300               36%
warm accounts   VIA-set chain walks       ~62% (28,900)       50%
batch/cold      sequential scan cursors   ~35% (16,300)       10%
==============  ========================  ==================  =============

Touched total T ~= 46,700 pages, so the hot classes together are ~3% of T
carrying ~40% of references, the bottom ~35% carries ~10%, and ~1,400
pages (the two hot classes) have median re-reference intervals under the
13,000-reference five-minute window while warm pages (mean interarrival
~58,000) do not. ``tests/workloads/test_oltp.py`` asserts every one of
these calibration targets on the generated trace, and
:mod:`repro.analysis.trace_stats` recomputes them the way EXPERIMENTS.md
reports them.

The generator is process-annotated (teller processes, batch scanners) and
emits writes for the account-update fraction, so the same trace drives
both the policy-level simulator and the full buffer manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import AccessKind, PageId, Reference
from .base import Workload

#: The paper's trace length.
PAPER_TRACE_LENGTH = 470_000

#: The 100-second five-minute-rule window expressed in references
#: (470,000 references per hour ~= 130.6/s; 100 s ~= 13,000 references).
FIVE_MINUTE_WINDOW_REFERENCES = 13_000


@dataclass(frozen=True)
class _Region:
    """A contiguous page region with a reference-mass share."""

    first_page: PageId
    pages: int
    mass: float


class BankOLTPWorkload(Workload):
    """Synthetic CODASYL bank trace calibrated to the paper's Section 4.3.

    Parameters scale the default profile; the class-level defaults
    reproduce the published statistics (see module docstring). Page ids
    are dense from 0; the *database* behind the trace is far larger
    (20 GB ~ 5.2M pages) but untouched pages never appear in a reference
    string, so they need no ids.
    """

    def __init__(self,
                 root_pages: int = 100,
                 hot_pages: int = 1_300,
                 warm_pages: int = 28_900,
                 cold_pages: int = 16_300,
                 root_mass: float = 0.04,
                 hot_mass: float = 0.36,
                 warm_mass: float = 0.50,
                 chain_walk_length: int = 8,
                 scan_processes: int = 3,
                 write_fraction: float = 0.25,
                 hot_band_fraction: float = 0.5,
                 hot_drift_rotations: float = 1.0) -> None:
        masses = (root_mass, hot_mass, warm_mass)
        if any(m < 0 for m in masses) or sum(masses) >= 1.0:
            raise ConfigurationError(
                "root/hot/warm masses must be non-negative and leave "
                "positive mass for the cold class")
        for name, count in (("root", root_pages), ("hot", hot_pages),
                            ("warm", warm_pages), ("cold", cold_pages)):
            if count <= 0:
                raise ConfigurationError(f"{name}_pages must be positive")
        if chain_walk_length <= 0:
            raise ConfigurationError("chain_walk_length must be positive")
        if scan_processes <= 0:
            raise ConfigurationError("scan_processes must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must lie in [0, 1]")
        if not 0.0 < hot_band_fraction <= 1.0:
            raise ConfigurationError("hot_band_fraction must lie in (0, 1]")
        if hot_drift_rotations < 0.0:
            raise ConfigurationError("hot_drift_rotations cannot be negative")

        cold_mass = 1.0 - sum(masses)
        first = 0
        self.root = _Region(first, root_pages, root_mass)
        first += root_pages
        self.hot = _Region(first, hot_pages, hot_mass)
        first += hot_pages
        self.warm = _Region(first, warm_pages, warm_mass)
        first += warm_pages
        self.cold = _Region(first, cold_pages, cold_mass)
        self.total_pages = first + cold_pages
        self.chain_walk_length = chain_walk_length
        self.scan_processes = scan_processes
        self.write_fraction = write_fraction
        # The instantaneous hot set is a band covering hot_band_fraction of
        # the hot region; it drifts hot_drift_rotations times across the
        # region over the trace. This models the slow intra-hour movement
        # of OLTP hot spots: access patterns are "fairly stable" (paper
        # Section 4.3) yet recent frequency beats lifetime frequency,
        # which is exactly why LRU-2 outperformed LFU on the real trace.
        self.hot_band_fraction = hot_band_fraction
        self.hot_drift_rotations = hot_drift_rotations

    # -- generation --------------------------------------------------------------

    def page_ids(self, count: int, seed: int = 0) -> None:
        """Always None: every reference carries a process id (and writes),
        which the compact page-id form cannot represent. Declared so bulk
        materialization skips generating the stream just to discover that."""
        return None

    def references(self, count: int,
                   seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        # A warm draw emits a whole chain walk (chain_walk_length
        # references), so its draw weight is its mass divided by the walk
        # length; the other classes emit one reference per draw.
        weights = [self.root.mass, self.hot.mass,
                   self.warm.mass / self.chain_walk_length, self.cold.mass]
        total_weight = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total_weight
            cumulative.append(acc)
        cumulative[-1] = 1.0

        # Scanner cursors spread across the cold region.
        cursors = [self.cold.first_page
                   + (p * self.cold.pages) // self.scan_processes
                   for p in range(self.scan_processes)]
        # One pending chain walk: (next page, remaining steps, process).
        walk_page = 0
        walk_remaining = 0
        walk_process = 0
        emitted = 0
        while emitted < count:
            if walk_remaining > 0:
                yield self._account_ref(rng, walk_page, walk_process)
                walk_page += 1
                if walk_page >= self.warm.first_page + self.warm.pages:
                    walk_page = self.warm.first_page
                walk_remaining -= 1
                emitted += 1
                continue
            u = rng.random()
            if u <= cumulative[0]:
                # CALC access to a root (branch/teller) page; usually a
                # balance update, hence frequently a write.
                page = self.root.first_page + rng.randrange(self.root.pages)
                yield self._account_ref(rng, page, process=1 + rng.randrange(8))
            elif u <= cumulative[1]:
                # CALC access to a hot account page, drawn from the
                # slowly drifting hot band (see __init__). The band
                # travels across the hot region without wrapping, so
                # pages it leaves behind go cold for good and pages ahead
                # of it start with zero history — the moving-hot-spot
                # structure that separates recent frequency (LRU-2) from
                # lifetime frequency (LFU).
                band = max(1, int(self.hot.pages * self.hot_band_fraction))
                travel = self.hot.pages - band
                drift = min(travel, int(travel * self.hot_drift_rotations
                                        * emitted / max(1, count)))
                page = self.hot.first_page + drift + rng.randrange(band)
                yield self._account_ref(rng, page, process=1 + rng.randrange(8))
            elif u <= cumulative[2]:
                # Navigational chain walk through VIA-clustered members:
                # emits chain_walk_length roughly-consecutive warm pages.
                walk_page = self.warm.first_page + rng.randrange(self.warm.pages)
                walk_remaining = self.chain_walk_length - 1
                walk_process = 1 + rng.randrange(8)
                yield self._account_ref(rng, walk_page, walk_process)
                walk_page += 1
                if walk_page >= self.warm.first_page + self.warm.pages:
                    walk_page = self.warm.first_page
            else:
                # Batch sequential scan over the cold region.
                scanner = rng.randrange(self.scan_processes)
                page = cursors[scanner]
                next_page = page + 1
                if next_page >= self.cold.first_page + self.cold.pages:
                    next_page = self.cold.first_page
                cursors[scanner] = next_page
                yield Reference(page=page, kind=AccessKind.READ,
                                process_id=100 + scanner)
            emitted += 1

    def _account_ref(self, rng: SeededRng, page: PageId,
                     process: int) -> Reference:
        kind = (AccessKind.WRITE if rng.random() < self.write_fraction
                else AccessKind.READ)
        return Reference(page=page, kind=kind, process_id=process)

    # -- metadata -----------------------------------------------------------------

    def pages(self) -> Sequence[PageId]:
        return range(self.total_pages)

    @property
    def five_minute_pages(self) -> int:
        """Pages expected to satisfy the five-minute-rule criterion."""
        return self.root.pages + self.hot.pages

    def region_of(self, page: PageId) -> str:
        """Which class a page belongs to (diagnostics)."""
        for name, region in (("root", self.root), ("hot", self.hot),
                             ("warm", self.warm), ("cold", self.cold)):
            if region.first_page <= page < region.first_page + region.pages:
                return name
        raise ConfigurationError(f"page {page} outside the workload")

    def expected_mass(self) -> Dict[str, float]:
        """Reference-mass shares by class (sums to 1)."""
        return {"root": self.root.mass, "hot": self.hot.mass,
                "warm": self.warm.mass, "cold": self.cold.mass}
