"""Evolving access patterns: the moving-hotspot workload.

The paper repeatedly distinguishes LRU-K from LFU by adaptivity: LFU
"never forgets" and "does not adapt itself to evolving access patterns",
while "LRU-3 is less responsive than LRU-2 in the sense that it needs more
references to adapt itself to dynamic changes of reference frequencies"
(Section 4.1). Neither claim is exercised by the stationary Table 4.x
workloads, so this generator makes the phenomenon measurable: a hot set of
``hot_pages`` pages receives ``hot_fraction`` of the references, and every
``epoch_length`` references the hot set *jumps* to a disjoint region of
the page universe (or *drifts* by a configurable number of pages).

Ablation bench A4 runs LRU-1/LRU-2/LRU-3/LFU over this workload and
reports the per-epoch hit-ratio recovery, reproducing the paper's
qualitative ordering: LFU never recovers, high-K recovers slowly, LRU-2
recovers fast while still discriminating.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, Sequence

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import PageId, Reference
from . import vectorized
from .base import Workload


class MovingHotspotWorkload(Workload):
    """A skewed workload whose hot set relocates every epoch."""

    def __init__(self, db_pages: int = 10_000, hot_pages: int = 100,
                 hot_fraction: float = 0.8, epoch_length: int = 20_000,
                 drift_pages: int = 0) -> None:
        if hot_pages <= 0 or db_pages <= hot_pages:
            raise ConfigurationError("need 0 < hot_pages < db_pages")
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must lie in (0, 1]")
        if epoch_length <= 0:
            raise ConfigurationError("epoch_length must be positive")
        if drift_pages < 0:
            raise ConfigurationError("drift_pages cannot be negative")
        self.db_pages = db_pages
        self.hot_pages = hot_pages
        self.hot_fraction = hot_fraction
        self.epoch_length = epoch_length
        # drift_pages == 0 means "jump": the hot set moves wholesale.
        self.drift_pages = drift_pages

    def hot_start(self, epoch: int) -> PageId:
        """First page of the hot set during the given epoch."""
        step = self.drift_pages if self.drift_pages else self.hot_pages
        return (epoch * step) % self.db_pages

    def epoch_of(self, index: int) -> int:
        """Epoch number of the reference at 0-based stream position."""
        return index // self.epoch_length

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        for index in range(count):
            start = self.hot_start(self.epoch_of(index))
            if rng.random() < self.hot_fraction:
                page = (start + rng.randrange(self.hot_pages)) % self.db_pages
            else:
                # Cold reference: uniform over the pages outside the hot set.
                offset = rng.randrange(self.db_pages - self.hot_pages)
                page = (start + self.hot_pages + offset) % self.db_pages
            yield Reference(page=page)

    def page_ids(self, count: int, seed: int = 0) -> array:
        """Bulk sampling, chunked by epoch (hot-set start is loop-invariant
        within one epoch). Consumes the RNG exactly as :meth:`references`
        does — one ``random()`` then one ``randrange()`` per reference —
        so the stream is identical for a given seed. Large requests go
        through the numpy-vectorized generator (:mod:`repro.workloads.
        vectorized`), property-tested stream-identical to this loop.
        """
        batched = vectorized.hotspot_page_ids(self, count, seed)
        if batched is not None:
            return batched
        rng = SeededRng(seed)
        random_ = rng.random
        getrandbits = rng.getrandbits
        db = self.db_pages
        hot = self.hot_pages
        cold = db - hot
        # randrange(n) is _randbelow: getrandbits(n.bit_length()),
        # rejected while >= n. Inlining it here skips randrange's
        # Python-level argument checking on every draw while consuming
        # the generator identically, so the stream stays bit-identical.
        bits_hot = hot.bit_length()
        bits_cold = cold.bit_length()
        fraction = self.hot_fraction
        epoch_length = self.epoch_length
        out = array("q", bytes(8 * count))
        index = 0
        while index < count:
            epoch = index // epoch_length
            start = self.hot_start(epoch)
            cold_base = start + hot
            end = min(count, (epoch + 1) * epoch_length)
            for i in range(index, end):
                if random_() < fraction:
                    draw = getrandbits(bits_hot)
                    while draw >= hot:
                        draw = getrandbits(bits_hot)
                    out[i] = (start + draw) % db
                else:
                    draw = getrandbits(bits_cold)
                    while draw >= cold:
                        draw = getrandbits(bits_cold)
                    out[i] = (cold_base + draw) % db
            index = end
        return out

    def pages(self) -> Sequence[PageId]:
        return range(self.db_pages)

    def epoch_probabilities(self, epoch: int) -> Dict[PageId, float]:
        """The stationary vector *within* one epoch (piecewise IRM)."""
        start = self.hot_start(epoch)
        hot_mass = self.hot_fraction / self.hot_pages
        cold_mass = (1.0 - self.hot_fraction) / (self.db_pages - self.hot_pages)
        probabilities = {page: cold_mass for page in range(self.db_pages)}
        for offset in range(self.hot_pages):
            probabilities[(start + offset) % self.db_pages] = hot_mass
        return probabilities
