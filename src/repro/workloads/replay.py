"""Trace replay: a workload backed by a captured reference string.

This is how the paper's own Section 4.3 experiment operated — "the trace
was fed into our simulation model" — and it closes the loop between the
capture side (:class:`repro.buffer.TraceRecorder`, the db engine) and the
measurement side (the experiment runner): any captured or file-persisted
trace becomes a first-class workload.

Replay is deterministic and seed-independent by nature; asking for more
references than the trace holds either truncates (default) or cycles.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Sequence, Union

from ..errors import ConfigurationError
from ..storage.trace_io import read_trace
from ..types import PageId, Reference, as_reference
from .base import Workload


class TraceReplayWorkload(Workload):
    """Replay a fixed reference string as a workload."""

    def __init__(self, references: Sequence["Reference | PageId"],
                 cycle: bool = False) -> None:
        materialized = [as_reference(item) for item in references]
        if not materialized:
            raise ConfigurationError("cannot replay an empty trace")
        self._references = materialized
        self.cycle = cycle

    @classmethod
    def from_file(cls, path: Union[str, Path],
                  cycle: bool = False) -> "TraceReplayWorkload":
        """Load a trace written by :func:`repro.storage.write_trace`."""
        return cls(list(read_trace(path)), cycle=cycle)

    def __len__(self) -> int:
        return len(self._references)

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        """Yield up to ``count`` references; ``seed`` is ignored (replay).

        Without ``cycle``, a request longer than the trace raises — a
        truncated experiment protocol is a configuration error, not data.
        """
        if count <= len(self._references):
            yield from self._references[:count]
            return
        if not self.cycle:
            raise ConfigurationError(
                f"trace holds {len(self._references)} references, "
                f"{count} requested (pass cycle=True to loop)")
        emitted = 0
        while emitted < count:
            for reference in self._references:
                if emitted >= count:
                    return
                yield reference
                emitted += 1

    def pages(self) -> Sequence[PageId]:
        return sorted({reference.page for reference in self._references})
