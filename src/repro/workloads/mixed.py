"""Workload combinators: concatenation, round-robin, probabilistic mixes.

These let experiments compose scenario streams — e.g. "Zipfian steady
state, then a burst of scans, then steady state again" for the adaptivity
benches — without every generator having to support every twist.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..stats import SeededRng, derive_seed
from ..types import PageId, Reference
from .base import Workload


class _Concatenation(Workload):
    """Phases run back to back: (workload, count) pairs."""

    def __init__(self, phases: Sequence[Tuple[Workload, int]]) -> None:
        if not phases:
            raise ConfigurationError("concatenation needs at least one phase")
        if any(count < 0 for _, count in phases):
            raise ConfigurationError("phase lengths cannot be negative")
        self.phases = list(phases)

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        emitted = 0
        for index, (workload, phase_count) in enumerate(self.phases):
            take = min(phase_count, count - emitted)
            if take <= 0:
                break
            for ref in workload.references(take, derive_seed(seed, index)):
                yield ref
                emitted += 1
        # If the caller asked for more than the phases provide, loop phases.
        while emitted < count:
            for index, (workload, phase_count) in enumerate(self.phases):
                take = min(phase_count, count - emitted)
                if take <= 0:
                    return
                wrapped_seed = derive_seed(seed, 1000 + emitted + index)
                for ref in workload.references(take, wrapped_seed):
                    yield ref
                    emitted += 1

    def pages(self) -> Sequence[PageId]:
        universe: set = set()
        for workload, _ in self.phases:
            universe.update(workload.pages())
        return sorted(universe)


def concatenate(*phases: Tuple[Workload, int]) -> Workload:
    """Run each (workload, reference_count) phase in order."""
    return _Concatenation(phases)


class _Interleave(Workload):
    """Strict round-robin between component workloads."""

    def __init__(self, components: Sequence[Workload]) -> None:
        if not components:
            raise ConfigurationError("interleave needs at least one component")
        self.components = list(components)

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        iterators = [component.references(count, derive_seed(seed, i))
                     for i, component in enumerate(self.components)]
        emitted = 0
        index = 0
        while emitted < count:
            ref = next(iterators[index % len(iterators)], None)
            if ref is None:
                return
            yield ref
            emitted += 1
            index += 1

    def pages(self) -> Sequence[PageId]:
        universe: set = set()
        for component in self.components:
            universe.update(component.pages())
        return sorted(universe)


def interleave(*components: Workload) -> Workload:
    """Alternate references between components, round-robin."""
    return _Interleave(components)


class ProbabilisticMix(Workload):
    """Each reference comes from component i with probability weight_i."""

    def __init__(self, components: Sequence[Tuple[Workload, float]]) -> None:
        if not components:
            raise ConfigurationError("mix needs at least one component")
        total = sum(weight for _, weight in components)
        if total <= 0 or any(weight < 0 for _, weight in components):
            raise ConfigurationError("mix weights must be non-negative, sum > 0")
        self.components: List[Workload] = [w for w, _ in components]
        self.weights = [weight / total for _, weight in components]

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        iterators = [component.references(count, derive_seed(seed, i))
                     for i, component in enumerate(self.components)]
        cumulative: List[float] = []
        acc = 0.0
        for weight in self.weights:
            acc += weight
            cumulative.append(acc)
        emitted = 0
        while emitted < count:
            u = rng.random()
            choice = next(i for i, edge in enumerate(cumulative) if u <= edge)
            ref = next(iterators[choice], None)
            if ref is None:
                return
            yield ref
            emitted += 1

    def pages(self) -> Sequence[PageId]:
        universe: set = set()
        for component in self.components:
            universe.update(component.pages())
        return sorted(universe)
