"""numpy-batched workload generation, bit-identical to the scalar loops.

Every determinism guarantee in this repository is keyed to
``random.Random`` (CPython's MT19937): the same (workload, seed) must
yield the same reference string everywhere, forever. A vectorized
generator is therefore only admissible if it reproduces the *exact*
stream the scalar fill loops in :meth:`~repro.workloads.zipfian.
ZipfianWorkload.page_ids` and :meth:`~repro.workloads.hotspot.
MovingHotspotWorkload.page_ids` produce — same seeding, same word
consumption, same floating-point operations, bit for bit.

numpy's own generators cannot do that (they seed MT19937 differently
and consume words in different patterns), so this module re-implements
the generator itself: :class:`MTStream` reproduces CPython's
``init_by_array`` seeding and emits the tempered 32-bit word stream in
vectorized blocks. On top of it:

- ``random()`` is two words per draw: ``((a >> 5) * 2**26 + (b >> 6))
  / 2**53`` — evaluated with the same IEEE-754 double operations.
- ``randrange(n)`` is CPython's ``_randbelow``: ``getrandbits(k)`` with
  ``k = n.bit_length()`` (one word per draw for ``n < 2**32``),
  rejected while the draw is ``>= n``.

The rejection loop makes each reference's word offset depend on every
earlier outcome — an inherently sequential chain. :func:`hotspot_page_
ids` sidesteps it by precomputing, for *every* word position, where a
draw starting there would first be accepted (a vectorized reverse
minimum-scan); the chain walk then reduces to one table lookup per
reference, and everything around it — uniforms, branch choice, accepted
values, epoch arithmetic — stays vectorized.

The public generators return ``None`` whenever they decline (numpy
missing, ``REPRO_NO_NUMPY`` set, or the request too small to amortize
block generation); callers then run the scalar loop. Stream identity is
property-tested against the scalar paths in
``tests/workloads/test_vectorized.py``.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional

__all__ = [
    "HOTSPOT_MIN_VECTOR_COUNT",
    "MIN_VECTOR_COUNT",
    "MTStream",
    "hotspot_page_ids",
    "numpy_or_none",
    "zipfian_page_ids",
]

#: Below this many references the scalar loop wins: seeding alone costs
#: ~1.9k sequential state updates, which the vectorized blocks only
#: amortize across a few thousand draws.
MIN_VECTOR_COUNT = 2048

#: Default threshold for :func:`hotspot_page_ids` — ``None`` declines.
#: Unlike the Zipfian path (pure inverse-CDF, fully parallel, measured
#: ~2x the scalar loop), the hotspot stream is rejection-sampled: each
#: reference's word offset depends on every earlier accept/reject, and
#: the chain walk that resolves it runs at Python speed over numpy-
#: precomputed tables. Measured end to end that loses to the scalar
#: fill loop (which inlines ``randrange``'s getrandbits rejection), so
#: the vectorized generator stays opt-in: property tests force it with
#: an explicit ``min_count``, and deployments where the trade-off
#: differs can set this to an integer threshold.
HOTSPOT_MIN_VECTOR_COUNT: Optional[int] = None

_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER = 0x80000000
_LOWER = 0x7FFFFFFF

_numpy_module = None
_numpy_checked = False


def numpy_or_none():
    """The numpy module, or None (not installed / ``REPRO_NO_NUMPY``).

    The environment gate is consulted on every call so a test (or an
    operator) can flip the fallback on without reloading modules; the
    import itself is attempted only once.
    """
    global _numpy_module, _numpy_checked
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via env gate
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def _key_from_seed(seed: int) -> List[int]:
    """CPython's ``random_seed``: |seed| as little-endian 32-bit words."""
    n = abs(int(seed))
    key: List[int] = []
    while n:
        key.append(n & 0xFFFFFFFF)
        n >>= 32
    return key or [0]


def _init_by_array(key: List[int]) -> List[int]:
    """The reference MT19937 ``init_by_array``, as CPython runs it."""
    mt = [0] * _N
    mt[0] = 19650218
    for i in range(1, _N):
        mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) \
            & 0xFFFFFFFF
    i, j = 1, 0
    for _ in range(max(_N, len(key))):
        mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1664525))
                 + key[j] + j) & 0xFFFFFFFF
        i += 1
        j += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
        if j >= len(key):
            j = 0
    for _ in range(_N - 1):
        mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1566083941))
                 - i) & 0xFFFFFFFF
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = 0x80000000
    return mt


class MTStream:
    """CPython-identical MT19937 word stream, generated in numpy blocks.

    ``words(n)`` returns the first ``n`` tempered 32-bit outputs of
    ``random.Random(seed)`` as a ``uint32`` array. The stream is
    append-only and cached, so consumers can re-read prefixes for free
    while extending the tail on demand. The state recurrence advances
    untempered in lag-227 vectorized segments (624 words per twist);
    tempering — which is position-independent — is applied to whole
    multi-block spans at once.
    """

    def __init__(self, seed: int, np=None) -> None:
        self._np = np if np is not None else numpy_or_none()
        if self._np is None:
            raise RuntimeError("MTStream needs numpy")
        self._state = self._np.array(_init_by_array(_key_from_seed(seed)),
                                     dtype=self._np.uint32)
        self._chunks: list = []
        self._have = 0
        self._cached = None

    def words(self, n: int):
        """The first ``n`` words of the stream (a shared, cached view)."""
        np = self._np
        if n > self._have:
            blocks = []
            while self._have + _N * len(blocks) < n:
                blocks.append(self._twist_raw().copy())
            raw = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            self._chunks.append(self._temper(raw))
            self._have += len(raw)
            self._cached = None
        if self._cached is None:
            if len(self._chunks) > 1:
                self._chunks = [np.concatenate(self._chunks)]
            self._cached = self._chunks[0]
        return self._cached[:n]

    def _twist_raw(self):
        """Advance the state one 624-word generation, in place.

        The generation loop has in-round dependencies (index ``i`` reads
        the value written at ``i - 227``), so the update runs in lag-227
        segments, each reading only slots finalized before it.
        """
        np = self._np
        mt = self._state
        one = np.uint32(1)
        y = (mt[:-1] & np.uint32(_UPPER)) | (mt[1:] & np.uint32(_LOWER))
        feedback = (y >> one) ^ ((y & one) * np.uint32(_MATRIX_A))
        mt[0:227] = mt[_M:_N] ^ feedback[0:227]
        mt[227:454] = mt[0:227] ^ feedback[227:454]
        mt[454:623] = mt[227:396] ^ feedback[454:623]
        tail = (int(mt[623]) & _UPPER) | (int(mt[0]) & _LOWER)
        mt[623] = int(mt[396]) ^ (tail >> 1) \
            ^ (_MATRIX_A if tail & 1 else 0)
        return mt

    def _temper(self, raw):
        np = self._np
        out = raw  # the caller hands over ownership (a fresh copy)
        out ^= out >> np.uint32(11)
        out ^= (out << np.uint32(7)) & np.uint32(0x9D2C5680)
        out ^= (out << np.uint32(15)) & np.uint32(0xEFC60000)
        out ^= out >> np.uint32(18)
        return out


def _uniforms(np, a_words, b_words):
    """``random.Random.random()`` over word pairs.

    Same arithmetic as CPython's ``genrand_res53`` — the multiply and
    the final division are single IEEE-754 double operations, so the
    results are bit-identical to the scalar generator's.
    """
    a = (a_words >> np.uint32(5)).astype(np.float64)
    b = (b_words >> np.uint32(6)).astype(np.float64)
    return (a * 67108864.0 + b) / 9007199254740992.0


def _to_array(np, pages) -> array:
    out = array("q")
    out.frombytes(np.ascontiguousarray(pages, dtype="<i8").tobytes())
    return out


def zipfian_page_ids(workload, count: int, seed: int,
                     min_count: Optional[int] = None) -> Optional[array]:
    """Vectorized inverse-CDF sampling for ``ZipfianWorkload``.

    One uniform (two MT words) per reference, transformed with the same
    ``n * u ** (1/theta)`` / ceil / clamp pipeline as the scalar loop.
    Returns None when declining (no numpy, or the request is too small).
    """
    np = numpy_or_none()
    if np is None:
        return None
    if min_count is None:
        min_count = MIN_VECTOR_COUNT
    if count < min_count:
        return None
    words = MTStream(seed, np).words(2 * count)
    u = _uniforms(np, words[0::2], words[1::2])
    pages = np.ceil(workload.n * u ** workload._inverse_exponent)
    pages = np.clip(pages.astype(np.int64), 1, workload.n)
    return _to_array(np, pages)


def hotspot_page_ids(workload, count: int, seed: int,
                     min_count: Optional[int] = None) -> Optional[array]:
    """Vectorized sampling for ``MovingHotspotWorkload``.

    Per reference the scalar loop consumes one ``random()`` (two words)
    and one ``randrange(bound)`` (one word per attempt, rejection-
    sampled), so a reference's word offset depends on every earlier
    rejection. The chain is resolved exactly, not iteratively:

    1. generate a word budget comfortably above the expected
       consumption (expanded in the rare case it runs short);
    2. for every position ``p``, vectorize the uniform a reference
       *starting* at ``p`` would see, which branch it takes, and — via
       a reverse minimum-scan over the acceptance mask — the position
       where its ``randrange`` draw would be accepted;
    3. fuse those into one successor table ``advance[p]`` = start of
       the next reference, and walk it (one list lookup per reference);
    4. gather the accepted draws at the recorded positions and finish
       the hot/cold/epoch page arithmetic in bulk.
    """
    np = numpy_or_none()
    if np is None:
        return None
    if min_count is None:
        min_count = HOTSPOT_MIN_VECTOR_COUNT
    if min_count is None or count < min_count:
        return None

    db = workload.db_pages
    hot = workload.hot_pages
    cold = db - hot
    fraction = workload.hot_fraction
    # Expected words/reference: 2 for the uniform plus the geometric
    # rejection chains; the 1.10 margin plus slack covers the variance,
    # and the walk falls through to a retry with a bigger budget if not.
    accept_hot = hot / (1 << hot.bit_length())
    accept_cold = cold / (1 << cold.bit_length())
    per_ref = 2.0 + (fraction / accept_hot) + ((1.0 - fraction) / accept_cold)
    budget = int(count * per_ref * 1.10) + 4096

    stream = MTStream(seed, np)
    for _ in range(8):
        words = stream.words(budget)
        last, hot_here = _walk_hotspot(np, words, workload, count)
        if last is not None:
            break
        budget = int(budget * 1.5) + 4096
    else:  # pragma: no cover - budget doubling always catches up
        return None

    # Each reference starts one word past its predecessor's acceptance.
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    np.add(last[:-1], 1, out=starts[1:])
    hot_mask = hot_here[starts]
    accepted = np.where(hot_mask,
                        words[last] >> np.uint32(32 - hot.bit_length()),
                        words[last] >> np.uint32(32 - cold.bit_length()))
    accepted = accepted.astype(np.int64)

    index = np.arange(count, dtype=np.int64)
    epoch = index // workload.epoch_length
    step = workload.drift_pages if workload.drift_pages else hot
    start = (epoch * step) % db
    pages = np.where(hot_mask, (start + accepted) % db,
                     (start + hot + accepted) % db)
    return _to_array(np, pages)


def _walk_hotspot(np, words, workload, count):
    """Resolve the hotspot consumption chain over a fixed word budget.

    Returns ``(last, hot_here)`` — the per-reference position of the
    accepted ``randrange`` word, and the per-*position* hot-branch mask
    — or ``(None, None)`` when the budget ran out mid-chain. The
    caller's start positions follow from ``last``: each reference
    begins one word past its predecessor's acceptance.

    ``accept[p]`` — the position where a reference *starting* at ``p``
    gets its draw accepted — is precomputed for every position at once
    (branch choice from the uniform at ``p``, acceptance position from
    a reverse minimum-scan over each bound's acceptance mask). The
    inherently sequential part that remains is one table lookup per
    reference.
    """
    hot = workload.hot_pages
    cold = workload.db_pages - hot
    total = len(words)

    u = _uniforms(np, words[:-1], words[1:])
    hot_here = u < workload.hot_fraction

    sentinel = np.int64(total)
    positions = np.arange(total, dtype=np.int64)

    def next_accept(shift, bound):
        """First accepted position at or after p, per p (contiguous)."""
        ok = (words >> np.uint32(shift)) < bound
        marked = np.where(ok, positions, sentinel)
        return np.minimum.accumulate(marked[::-1])[::-1].copy()

    first_hot = next_accept(32 - hot.bit_length(), hot)
    first_cold = next_accept(32 - cold.bit_length(), cold)

    # A reference starting at p consumes words p, p+1 for its uniform,
    # then scans from p+2 for an accepted draw — all slice-aligned, so
    # the fuse needs no gathers. Rows whose scan would begin past the
    # budget are covered by the sentinel tail below.
    accept_at = np.where(hot_here[:total - 2], first_hot[2:],
                         first_cold[2:])

    # array('q') views: converting is a memcpy (no per-element boxing,
    # unlike tolist), and indexing them in the walk stays C-speed.
    accept = array("q")
    accept.frombytes(np.ascontiguousarray(accept_at, dtype="<i8").tobytes())
    # Sentinel tail keeps the walk's only bounds check on q: the largest
    # reachable p is (total - 1) + 1, two past accept_at's last row.
    accept.extend((total, total, total))
    last = array("q", bytes(8 * count))
    p = 0
    for i in range(count):
        q = accept[p]
        if q >= total:
            return None, None
        last[i] = q
        p = q + 1
    out = np.frombuffer(last, dtype="<i8").astype(np.int64, copy=False)
    return out, hot_here
