"""Example 1.1 as an *executed* workload.

Where :class:`~repro.workloads.two_pool.TwoPoolWorkload` models Example
1.1 statistically, this workload produces the same reference pattern by
actually running transactions against the miniature database engine: a
customer table with a clustered CUST-ID B-tree (built by
:func:`repro.db.executor.build_customer_database`) is hit with random
point lookups — each one touching the B-tree root, a leaf page, and a
record page, i.e. the paper's I1, R1, I2, R2, ... string with the root
page as a third, ultra-hot stratum.

Optional realism knobs produce the Section 2.1.1 correlated reference
pairs honestly:

- ``update_fraction`` — a lookup that updates re-touches its record page
  before commit (type 1, intra-transaction);
- ``abort_probability`` — transactions are aborted and retried by the
  :class:`~repro.db.transaction.TransactionManager`, re-issuing the same
  accesses (type 2, transaction-retry);
- ``locality_runs`` — a process occasionally processes several customers
  from the same record page in a row (type 3, intra-process batching).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..buffer.pool import BufferPool, TraceRecorder
from ..db.executor import CustomerDatabase, build_customer_database
from ..db.transaction import TransactionManager
from ..errors import ConfigurationError, TransactionAborted
from ..policies.lru import LRUPolicy
from ..stats import SeededRng, derive_seed
from ..storage.disk import SimulatedDisk
from ..types import PageId, Reference
from .base import Workload


class CustomerLookupWorkload(Workload):
    """Random indexed customer lookups executed on the real engine."""

    def __init__(self, customers: int = 5_000,
                 update_fraction: float = 0.2,
                 abort_probability: float = 0.0,
                 locality_run_length: int = 1,
                 build_seed: int = 0) -> None:
        if customers <= 0:
            raise ConfigurationError("need at least one customer")
        if not 0.0 <= update_fraction <= 1.0:
            raise ConfigurationError("update_fraction must lie in [0, 1]")
        if locality_run_length <= 0:
            raise ConfigurationError("locality_run_length must be positive")
        self.customers = customers
        self.update_fraction = update_fraction
        self.abort_probability = abort_probability
        self.locality_run_length = locality_run_length
        self.build_seed = build_seed
        self._db: Optional[CustomerDatabase] = None
        self._recorder: Optional[TraceRecorder] = None

    # -- engine plumbing ----------------------------------------------------------

    def _database(self) -> CustomerDatabase:
        """Build the engine lazily; the buffer pool is oversized so that
        generation-time buffering never filters the reference string."""
        if self._db is None:
            disk = SimulatedDisk()
            pool = BufferPool(disk, LRUPolicy(),
                              capacity=max(64, self.customers))
            self._db = build_customer_database(
                pool, customers=self.customers, seed=self.build_seed)
            self._recorder = TraceRecorder()
            pool.observer = self._recorder
        return self._db

    # -- workload protocol ------------------------------------------------------------

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        database = self._database()
        recorder = self._recorder
        assert recorder is not None
        rng = SeededRng(derive_seed(seed, 17))
        manager = TransactionManager(
            abort_probability=self.abort_probability,
            seed=derive_seed(seed, 23))
        emitted = 0
        cursor = len(recorder.references)
        while emitted < count:
            self._run_one_transaction(database, manager, rng)
            fresh = recorder.references[cursor:]
            cursor = len(recorder.references)
            for reference in fresh:
                if emitted >= count:
                    break
                yield reference
                emitted += 1

    def _run_one_transaction(self, database: CustomerDatabase,
                             manager: TransactionManager,
                             rng: SeededRng) -> None:
        first = rng.randrange(self.customers)
        run = 1
        if self.locality_run_length > 1 and rng.random() < 0.5:
            run = 1 + rng.randrange(self.locality_run_length)
        do_update = rng.random() < self.update_fraction

        def body(txn) -> None:
            database.pool.set_context(process_id=txn.process_id,
                                      txn_id=txn.txn_id)
            try:
                for offset in range(run):
                    cust_id = (first + offset) % self.customers
                    database.lookup(cust_id, txn=txn)
                    if do_update:
                        database.update_customer(
                            cust_id, rng.randrange(1_000_000), txn=txn)
            finally:
                database.pool.clear_context()

        try:
            manager.run(body, process_id=rng.randrange(8))
        except TransactionAborted:
            # Retry budget exhausted: the accesses still happened, which
            # is all the reference string cares about.
            pass

    # -- metadata ---------------------------------------------------------------------

    def pages(self) -> Sequence[PageId]:
        database = self._database()
        pool_pages: List[PageId] = [database.index.root_page_id]
        pool_pages.extend(database.index_leaf_pages())
        pool_pages.extend(database.record_pages())
        return pool_pages

    def hot_pages(self) -> List[PageId]:
        """Root + leaf pages — the pages LRU-2 should keep resident."""
        database = self._database()
        return [database.index.root_page_id] + database.index_leaf_pages()
