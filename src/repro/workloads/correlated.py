"""Injection of correlated reference pairs (paper Section 2.1.1).

The paper's taxonomy of reference pairs:

1. **Intra-transaction** — read a row, update it before commit;
2. **Transaction-retry** — abort and re-run the same accesses;
3. **Intra-process** — the next transaction of the same process touches
   the same page (batch update pattern);
4. **Inter-process** — independent re-reference (the only kind that should
   *count* toward interarrival estimation).

:class:`CorrelatedReferenceWrapper` takes any base workload, whose
references model the *independent* (type 4) accesses, and expands a
configurable fraction of them into short bursts of types 1-3: follow-up
references to the same page within a configurable gap, tagged with the
same process/transaction ids. Used by the CRP ablation (bench A2) to show
that LRU-2 *without* a Correlated Reference Period wrongly credits bursts
with short interarrival times, while a suitable CRP restores Table-4.1-
like discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import AccessKind, PageId, Reference
from .base import Workload


@dataclass(frozen=True)
class BurstSpec:
    """Shape of injected correlated bursts.

    ``extra_references`` follow-ups are appended after an expanded
    reference, each within ``max_gap`` stream positions of the previous
    one (gap >= 1 drawn uniformly). ``write_follow_up`` marks follow-ups
    as writes, modelling the read-then-update intra-transaction pair.
    """

    extra_references: int = 2
    max_gap: int = 3
    write_follow_up: bool = True

    def __post_init__(self) -> None:
        if self.extra_references <= 0:
            raise ConfigurationError("bursts need at least one follow-up")
        if self.max_gap <= 0:
            raise ConfigurationError("max_gap must be positive")


class CorrelatedReferenceWrapper(Workload):
    """Expand a fraction of base references into correlated bursts.

    The output stream interleaves pending follow-ups with fresh base
    references, so bursts overlap realistically instead of pausing the
    world. Each expanded reference gets a fresh transaction id shared by
    its follow-ups.
    """

    def __init__(self, base: Workload, burst_fraction: float = 0.3,
                 spec: BurstSpec = BurstSpec()) -> None:
        if not 0.0 <= burst_fraction <= 1.0:
            raise ConfigurationError("burst_fraction must lie in [0, 1]")
        self.base = base
        self.burst_fraction = burst_fraction
        self.spec = spec

    def page_ids(self, count: int, seed: int = 0) -> None:
        """Always None: burst follow-ups carry transaction ids, so the
        stream cannot compact to bare page ids."""
        return None

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        base_iter = self.base.references(count, seed)
        # pending[d] holds follow-ups scheduled d positions in the future.
        pending: List[List[Reference]] = [[] for _ in range(self.spec.max_gap + 1)]
        emitted = 0
        next_txn = 1
        while emitted < count:
            due = pending[0]
            if due:
                yield due.pop()
                emitted += 1
            else:
                base_ref = next(base_iter, None)
                if base_ref is None:
                    # Base exhausted early (it was asked for `count`); flush
                    # whatever follow-ups remain.
                    flat = [r for bucket in pending for r in bucket]
                    for ref in flat[:count - emitted]:
                        yield ref
                        emitted += 1
                    return
                if rng.random() < self.burst_fraction:
                    txn = next_txn
                    next_txn += 1
                    first = Reference(page=base_ref.page, kind=base_ref.kind,
                                      process_id=base_ref.process_id,
                                      txn_id=txn)
                    yield first
                    emitted += 1
                    self._schedule(first, txn, pending, rng)
                else:
                    yield base_ref
                    emitted += 1
            # Advance the schedule by one stream position.
            pending.append([])
            carried = pending.pop(0)
            pending[0].extend(carried)

    def _schedule(self, first: Reference, txn: int,
                  pending: List[List[Reference]], rng: SeededRng) -> None:
        position = 0
        for follow_up in range(self.spec.extra_references):
            position += rng.randrange(1, self.spec.max_gap + 1)
            slot = min(position, len(pending) - 1)
            kind = (AccessKind.WRITE if self.spec.write_follow_up
                    else AccessKind.READ)
            pending[slot].append(Reference(
                page=first.page, kind=kind,
                process_id=first.process_id, txn_id=txn))

    def pages(self) -> Sequence[PageId]:
        return self.base.pages()
