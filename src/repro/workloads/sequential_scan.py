"""Sequential scans and the Example 1.2 "cache swamping" scenario.

Example 1.2: "a multi-process database application with good 'locality'
... 5000 buffered pages out of 1 million disk pages get 95% of the
references ... Now if a few batch processes begin 'sequential scans'
through all pages of the database, the pages read in by the sequential
scans will replace commonly referenced pages in buffer with pages unlikely
to be referenced again."

:class:`SequentialScanWorkload` is the pure scan (each page once, in
order, optionally repeated); :class:`ScanSwampingWorkload` interleaves an
interactive hot-set stream with one or more concurrent scan processes and
is the driver of ablation bench A5, which shows LRU-1 collapsing and
LRU-2 shrugging the scan off.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import PageId, Reference
from .base import Workload

#: Process id used for the interactive (hot-set) stream.
INTERACTIVE_PROCESS = 0


class SequentialScanWorkload(Workload):
    """Scan ``n`` pages in order, cycling if more references are requested."""

    def __init__(self, n: int, first_page: PageId = 0) -> None:
        if n <= 0:
            raise ConfigurationError("scan length must be positive")
        if first_page < 0:
            raise ConfigurationError("first page must be non-negative")
        self.n = n
        self.first_page = first_page

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        for index in range(count):
            yield Reference(page=self.first_page + index % self.n)

    def pages(self) -> Sequence[PageId]:
        return range(self.first_page, self.first_page + self.n)


class ScanSwampingWorkload(Workload):
    """Hot-set locality stream disturbed by batch sequential scans.

    Parameters
    ----------
    db_pages:
        Total database size in pages (Example 1.2: one million).
    hot_pages:
        Size of the popular set (Example 1.2: 5000). Hot pages are ids
        ``0..hot_pages-1``; the interactive stream draws uniformly from
        them with probability ``hot_fraction`` and uniformly from the rest
        of the database otherwise.
    hot_fraction:
        Fraction of interactive references that hit the hot set (0.95).
    scan_processes:
        Number of concurrent batch scanners (the "few batch processes").
        Each owns a private cursor starting at a distinct offset.
    scan_share:
        Fraction of all references issued by scanners, i.e. how aggressively
        the scans compete for buffer slots.
    """

    def __init__(self, db_pages: int = 100_000, hot_pages: int = 500,
                 hot_fraction: float = 0.95, scan_processes: int = 2,
                 scan_share: float = 0.4) -> None:
        if hot_pages <= 0 or db_pages <= hot_pages:
            raise ConfigurationError("need 0 < hot_pages < db_pages")
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must lie in (0, 1]")
        if scan_processes < 0:
            raise ConfigurationError("scan_processes cannot be negative")
        if not 0.0 <= scan_share < 1.0:
            raise ConfigurationError("scan_share must lie in [0, 1)")
        if scan_processes == 0 and scan_share > 0:
            raise ConfigurationError("scan_share > 0 needs scanners")
        self.db_pages = db_pages
        self.hot_pages = hot_pages
        self.hot_fraction = hot_fraction
        self.scan_processes = scan_processes
        self.scan_share = scan_share

    def page_ids(self, count: int, seed: int = 0) -> None:
        """Always None: references carry process ids (scanner identity),
        so the stream cannot compact to bare page ids."""
        return None

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        cursors = [(p * self.db_pages) // max(1, self.scan_processes)
                   for p in range(self.scan_processes)]
        for _ in range(count):
            if self.scan_processes and rng.random() < self.scan_share:
                scanner = rng.randrange(self.scan_processes)
                page = cursors[scanner]
                cursors[scanner] = (page + 1) % self.db_pages
                yield Reference(page=page, process_id=scanner + 1)
            else:
                if rng.random() < self.hot_fraction:
                    page = rng.randrange(self.hot_pages)
                else:
                    page = self.hot_pages + rng.randrange(
                        self.db_pages - self.hot_pages)
                yield Reference(page=page, process_id=INTERACTIVE_PROCESS)

    def interactive_only(self) -> "ScanSwampingWorkload":
        """The same workload with the scanners switched off (baseline)."""
        return ScanSwampingWorkload(
            db_pages=self.db_pages, hot_pages=self.hot_pages,
            hot_fraction=self.hot_fraction, scan_processes=0, scan_share=0.0)

    def pages(self) -> Sequence[PageId]:
        return range(self.db_pages)

    def reference_probabilities(self) -> Dict[PageId, float]:
        """Marginals of the *interactive* stream (scan cursors are not IRM).

        Only valid as an A0 input when ``scan_share == 0``; the swamping
        bench uses it for the no-scan baseline.
        """
        interactive = 1.0 - self.scan_share
        hot_mass = interactive * self.hot_fraction / self.hot_pages
        cold_mass = (interactive * (1.0 - self.hot_fraction)
                     / (self.db_pages - self.hot_pages))
        probabilities = {page: hot_mass for page in range(self.hot_pages)}
        for page in range(self.hot_pages, self.db_pages):
            probabilities[page] = cold_mass
        return probabilities
