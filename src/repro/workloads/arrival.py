"""Arrival processes: reference strings with wall-clock timestamps.

The paper mostly measures time in reference counts, but two of its
arguments are wall-clock arguments: the Five Minute Rule economics and
Example 1.2's "long I/O queues build up". This module attaches simulated
arrival times (milliseconds) to any workload's reference stream so those
arguments can be exercised quantitatively:

- :class:`UniformArrivals` — a fixed reference rate (the default
  assumption behind :class:`~repro.clock.ReferenceClock`);
- :class:`PoissonArrivals` — exponentially distributed gaps at a given
  mean rate, the standard open-system model and the one that actually
  builds queues at utilizations below 1;
- :func:`drive_with_latency` — feed a timed stream through a simulator
  and a :class:`~repro.storage.latency.DiskQueue`, returning hit ratio
  plus latency statistics, the measurement behind the swamping example.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

from ..errors import ConfigurationError
from ..stats import SeededRng, StreamingMoments, derive_seed
from ..storage.latency import DiskQueue, DiskServiceModel
from ..types import Reference
from .base import Workload

#: One timed reference: (arrival time in simulated ms, the reference).
TimedReference = Tuple[float, Reference]


class UniformArrivals:
    """Constant-rate arrivals: one reference every 1/rate milliseconds."""

    def __init__(self, workload: Workload,
                 references_per_ms: float = 0.13) -> None:
        if references_per_ms <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.workload = workload
        self.references_per_ms = references_per_ms

    def timed_references(self, count: int,
                         seed: int = 0) -> Iterator[TimedReference]:
        """Yield (arrival_ms, reference) pairs."""
        gap = 1.0 / self.references_per_ms
        for index, reference in enumerate(
                self.workload.references(count, seed)):
            yield index * gap, reference


class PoissonArrivals:
    """Poisson arrivals: i.i.d. exponential gaps with the given mean rate."""

    def __init__(self, workload: Workload,
                 references_per_ms: float = 0.13) -> None:
        if references_per_ms <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.workload = workload
        self.references_per_ms = references_per_ms

    def timed_references(self, count: int,
                         seed: int = 0) -> Iterator[TimedReference]:
        """Yield (arrival_ms, reference) pairs with exponential gaps."""
        rng = SeededRng(derive_seed(seed, 71))
        now = 0.0
        for reference in self.workload.references(count, seed):
            # Inverse-CDF exponential; guard log(0).
            u = max(rng.random(), 1e-12)
            now += -math.log(u) / self.references_per_ms
            yield now, reference


class LatencyReport:
    """Results of a timed simulation run."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.request_latency_ms = StreamingMoments()
        self.miss_response_ms = StreamingMoments()

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over the timed run."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def drive_with_latency(simulator, timed_references,
                       service_model: DiskServiceModel = None
                       ) -> LatencyReport:
    """Run a timed stream through a simulator and a disk queue.

    Hits cost zero I/O latency; each miss submits a disk request at its
    arrival time and experiences queueing + service delay. The report's
    ``request_latency_ms`` averages over *all* requests — the end-user
    response time the paper's Example 1.2 is about.
    """
    queue = DiskQueue(service_model or DiskServiceModel())
    report = LatencyReport()
    for arrival_ms, reference in timed_references:
        outcome = simulator.access(reference)
        if outcome.hit:
            report.hits += 1
            report.request_latency_ms.add(0.0)
        else:
            report.misses += 1
            response = queue.submit(reference.page, arrival_ms)
            report.miss_response_ms.add(response)
            report.request_latency_ms.add(response)
    return report
