"""Zipfian random access of Section 4.2.

The paper (following [CKS] and Knuth) defines the skew through a
self-similar CDF: "the probability for referencing a page with page number
less than or equal to i is (i/N)^(log alpha / log beta)", so that "a
fraction alpha of the references accesses a fraction beta of the N pages
(and the same relationship holds recursively)". Table 4.2 uses
alpha = 0.8, beta = 0.2 — the classic 80-20 rule.

Sampling is exact and O(1) per reference by CDF inversion:
``F(i) = (i/N)**theta`` with ``theta = log(alpha)/log(beta)`` inverts to
``i = ceil(N * u**(1/theta))`` for uniform ``u``.

Page ids are 1-based (1..N) to keep the paper's "page number <= i"
formula literal; :meth:`reference_probabilities` returns the exact
per-page masses ``F(i) - F(i-1)``.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterator, Sequence

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import PageId, Reference
from . import vectorized
from .base import Workload


def zipf_theta(alpha: float, beta: float) -> float:
    """The paper's skew exponent log(alpha)/log(beta).

    alpha = beta gives theta = 1 (uniform); alpha -> 1 with small beta
    gives theta -> 0 (extreme skew).
    """
    if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
        raise ConfigurationError("alpha and beta must lie strictly in (0, 1)")
    return math.log(alpha) / math.log(beta)


def zipfian_probabilities(n: int, alpha: float = 0.8,
                          beta: float = 0.2) -> Dict[PageId, float]:
    """Exact per-page probabilities under the self-similar CDF."""
    if n <= 0:
        raise ConfigurationError("page count must be positive")
    theta = zipf_theta(alpha, beta)
    probabilities: Dict[PageId, float] = {}
    previous = 0.0
    for i in range(1, n + 1):
        current = (i / n) ** theta
        probabilities[i] = current - previous
        previous = current
    return probabilities


class ZipfianWorkload(Workload):
    """Independent references with the paper's self-similar Zipfian skew."""

    def __init__(self, n: int = 1000, alpha: float = 0.8,
                 beta: float = 0.2) -> None:
        if n <= 0:
            raise ConfigurationError("page count must be positive")
        self.n = n
        self.alpha = alpha
        self.beta = beta
        self.theta = zipf_theta(alpha, beta)
        self._inverse_exponent = 1.0 / self.theta

    def sample_page(self, rng: SeededRng) -> PageId:
        """Draw one page by inverse-CDF; ids are 1..N."""
        u = rng.random()
        # u == 0.0 would map to page 0; clamp into the support.
        page = math.ceil(self.n * (u ** self._inverse_exponent))
        return min(self.n, max(1, page))

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        for _ in range(count):
            yield Reference(page=self.sample_page(rng))

    def page_ids(self, count: int, seed: int = 0) -> array:
        """Bulk inverse-CDF sampling into a preallocated ``array('q')``.

        Draws exactly one uniform variate per reference, in the same
        order as :meth:`references`, so the stream is bit-identical to
        draining the generator for the same seed — just without a
        generator frame, method dispatch, or ``Reference`` object per
        sample. Large requests go through the numpy-vectorized
        generator (:mod:`repro.workloads.vectorized`), which is
        property-tested stream-identical to this loop.
        """
        batched = vectorized.zipfian_page_ids(self, count, seed)
        if batched is not None:
            return batched
        rng = SeededRng(seed)
        random_ = rng.random
        ceil = math.ceil
        n = self.n
        inv = self._inverse_exponent
        out = array("q", bytes(8 * count))
        for i in range(count):
            page = ceil(n * random_() ** inv)
            out[i] = n if page > n else (1 if page < 1 else page)
        return out

    def pages(self) -> Sequence[PageId]:
        return range(1, self.n + 1)

    def reference_probabilities(self) -> Dict[PageId, float]:
        return zipfian_probabilities(self.n, self.alpha, self.beta)

    def hottest_pages(self, fraction: float) -> Sequence[PageId]:
        """The hottest ``fraction`` of pages (they absorb ~alpha^depth mass)."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must lie in [0, 1]")
        return range(1, 1 + int(round(self.n * fraction)))
