"""Workload interface.

A workload is a reproducible source of page reference strings: given a
seed and a length it yields :class:`~repro.types.Reference` objects.
Synthetic workloads that satisfy the Independent Reference Model also
expose their true reference-probability vector, which is what the A0
oracle (Definition 3.1) and the Section 3 Bayesian analysis consume.
"""

from __future__ import annotations

import abc
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import OracleError
from ..types import AccessKind, PageId, Reference


class Workload(abc.ABC):
    """A reproducible generator of page reference strings."""

    @abc.abstractmethod
    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        """Yield ``count`` references, deterministically for a given seed."""

    def pages(self) -> Sequence[PageId]:
        """The page universe the workload may touch (best effort)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not enumerate its page universe")

    def page_ids(self, count: int, seed: int = 0) -> Optional[array]:
        """Materialize ``count`` references straight into an ``array('q')``.

        The bulk analogue of :meth:`references` for metadata-free
        workloads: same pages, same order, same RNG consumption for a
        given seed, but no per-reference :class:`~repro.types.Reference`
        object is ever built. Returns None when the stream carries
        metadata (writes, process/transaction ids) that a bare page-id
        array cannot represent — callers then fall back to
        :meth:`references`.

        This default drains :meth:`references` through
        :func:`compact_reference_pages`; subclasses with cheap samplers
        override it with a direct fill loop (and metadata-carrying
        generators override it to return None without generating).
        """
        return compact_reference_pages(self.references(count, seed=seed))

    def reference_probabilities(self) -> Dict[PageId, float]:
        """True per-page reference probabilities (IRM workloads only).

        Raises :class:`~repro.errors.OracleError` when the workload is not
        an Independent Reference Model source (e.g. trace replay), since
        then no stationary vector exists for A0 to use.
        """
        raise OracleError(
            f"{type(self).__name__} has no stationary probability vector")


class SyntheticWorkload(Workload):
    """Base for IRM workloads defined by an explicit probability vector.

    Subclasses implement :meth:`reference_probabilities` (and usually a
    faster direct sampler); the default :meth:`references` samples i.i.d.
    from that vector by inverse-CDF over a precomputed cumulative table.
    """

    _cdf_cache: Optional[List[float]] = None
    _page_cache: Optional[List[PageId]] = None

    def _tables(self) -> "tuple[List[PageId], List[float]]":
        if self._cdf_cache is None or self._page_cache is None:
            probabilities = self.reference_probabilities()
            pages = sorted(probabilities)
            cdf: List[float] = []
            acc = 0.0
            for page in pages:
                acc += probabilities[page]
            # Renormalize against floating error, then build the CDF.
            total = acc
            acc = 0.0
            for page in pages:
                acc += probabilities[page] / total
                cdf.append(acc)
            cdf[-1] = 1.0
            self._page_cache = pages
            self._cdf_cache = cdf
        return self._page_cache, self._cdf_cache

    def sample_page(self, rng) -> PageId:
        """Draw one page from the stationary distribution."""
        import bisect
        pages, cdf = self._tables()
        return pages[bisect.bisect_left(cdf, rng.random())]

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        from ..stats import SeededRng
        rng = SeededRng(seed)
        for _ in range(count):
            yield Reference(page=self.sample_page(rng))

    def page_ids(self, count: int, seed: int = 0) -> array:
        """Bulk sampling: identical stream to :meth:`references`, no
        generator frames or ``Reference`` objects — one ``sample_page``
        call per slot of a preallocated array."""
        from ..stats import SeededRng
        rng = SeededRng(seed)
        sample = self.sample_page
        out = array("q", bytes(8 * count))
        for i in range(count):
            out[i] = sample(rng)
        return out

    def pages(self) -> Sequence[PageId]:
        pages, _ = self._tables()
        return pages


def materialize(workload: Workload, count: int,
                seed: int = 0) -> List[Reference]:
    """Fully expand a workload into a list (needed by the Belady oracle)."""
    return list(workload.references(count, seed))


def compact_reference_pages(
        references: Iterable[Reference]) -> Optional[array]:
    """Compact a reference stream to an ``array('q')`` of page ids.

    Returns the array only when every reference is *plain* — a read with
    no process/transaction annotation — so that the page id alone
    reconstructs the reference exactly. Streams carrying writes or
    process ids (the OLTP trace) return None and must stay as full
    :class:`~repro.types.Reference` sequences.
    """
    pages = array("q")
    append = pages.append
    for ref in references:
        if (ref.kind is not AccessKind.READ or ref.process_id is not None
                or ref.txn_id is not None):
            return None
        append(ref.page)
    return pages
