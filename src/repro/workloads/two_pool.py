"""The two-pool workload of Section 4.1 (modelling Example 1.1).

"We considered two pools of disk pages, Pool 1 with N1 pages and Pool 2
with N2 pages, with N1 < N2. ... alternating references are made to Pool 1
and Pool 2; then a page from that pool is randomly chosen. Thus each page
of Pool 1 has a probability of reference beta_1 = 1/(2*N1) ... and each
page of Pool 2 has probability beta_2 = 1/(2*N2)."

This models the B-tree-leaf / record-page alternation I1, R1, I2, R2, ...
of Example 1.1. Pool 1 pages are ids ``0 .. N1-1``; Pool 2 pages are ids
``N1 .. N1+N2-1``.

Strict alternation is *not* an Independent Reference Model string (the
pool sequence is deterministic), but the per-page marginal probabilities
are exactly the IRM vector above, which is what A0 consumes; the paper
measures A0 on the same alternating string. A ``strict_alternation=False``
mode draws the pool per reference with probability 1/2 each, giving a true
IRM source for the Section 3 analysis tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from ..errors import ConfigurationError
from ..stats import SeededRng
from ..types import PageId, Reference
from .base import Workload


class TwoPoolWorkload(Workload):
    """Alternating references to a hot pool and a cold pool."""

    def __init__(self, n1: int = 100, n2: int = 10_000,
                 strict_alternation: bool = True) -> None:
        if n1 <= 0 or n2 <= 0:
            raise ConfigurationError("pool sizes must be positive")
        if n1 >= n2:
            raise ConfigurationError(
                "the paper requires N1 < N2 (hot pool smaller than cold)")
        self.n1 = n1
        self.n2 = n2
        self.strict_alternation = strict_alternation

    def references(self, count: int, seed: int = 0) -> Iterator[Reference]:
        rng = SeededRng(seed)
        for index in range(count):
            if self.strict_alternation:
                use_pool_1 = index % 2 == 0
            else:
                use_pool_1 = rng.random() < 0.5
            if use_pool_1:
                page: PageId = rng.randrange(self.n1)
            else:
                page = self.n1 + rng.randrange(self.n2)
            yield Reference(page=page)

    def pages(self) -> Sequence[PageId]:
        return range(self.n1 + self.n2)

    def pool_of(self, page: PageId) -> int:
        """1 for hot-pool pages, 2 for cold-pool pages."""
        if not 0 <= page < self.n1 + self.n2:
            raise ConfigurationError(f"page {page} outside the workload")
        return 1 if page < self.n1 else 2

    def reference_probabilities(self) -> Dict[PageId, float]:
        beta_1 = 1.0 / (2.0 * self.n1)
        beta_2 = 1.0 / (2.0 * self.n2)
        probabilities: Dict[PageId, float] = {}
        for page in range(self.n1):
            probabilities[page] = beta_1
        for page in range(self.n1, self.n1 + self.n2):
            probabilities[page] = beta_2
        return probabilities

    # -- paper protocol constants ------------------------------------------------

    @property
    def warmup_references(self) -> int:
        """The paper drops the first 10 * N1 references."""
        return 10 * self.n1

    @property
    def measured_references(self) -> int:
        """The paper measures the next 30 * N1 references."""
        return 30 * self.n1
