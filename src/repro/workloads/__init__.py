"""Workload generators producing page reference strings.

Each generator models one of the access patterns the paper evaluates or
motivates:

- :class:`~repro.workloads.two_pool.TwoPoolWorkload` — Section 4.1 / Example
  1.1 (alternating index/record references).
- :class:`~repro.workloads.zipfian.ZipfianWorkload` — Section 4.2 (80-20
  self-similar skew).
- :class:`~repro.workloads.oltp.BankOLTPWorkload` — Section 4.3 substitute
  (synthetic CODASYL bank trace; see DESIGN.md §3 for the calibration).
- :class:`~repro.workloads.sequential_scan.ScanSwampingWorkload` — Example
  1.2 (sequential scans swamping a hot set).
- :class:`~repro.workloads.hotspot.MovingHotspotWorkload` — evolving access
  patterns for the adaptivity ablation.
- :class:`~repro.workloads.correlated.CorrelatedReferenceWrapper` — injects
  the Section 2.1.1 correlated reference-pair types into any base stream.
- :mod:`~repro.workloads.mixed` — interleaving / concatenation combinators.
"""

from .base import SyntheticWorkload, Workload, materialize
from .two_pool import TwoPoolWorkload
from .zipfian import ZipfianWorkload, zipf_theta, zipfian_probabilities
from .sequential_scan import ScanSwampingWorkload, SequentialScanWorkload
from .hotspot import MovingHotspotWorkload
from .oltp import BankOLTPWorkload
from .correlated import BurstSpec, CorrelatedReferenceWrapper
from .tpca import CustomerLookupWorkload
from .replay import TraceReplayWorkload
from .mixed import concatenate, interleave, ProbabilisticMix

__all__ = [
    "Workload",
    "SyntheticWorkload",
    "materialize",
    "TwoPoolWorkload",
    "ZipfianWorkload",
    "zipf_theta",
    "zipfian_probabilities",
    "SequentialScanWorkload",
    "ScanSwampingWorkload",
    "MovingHotspotWorkload",
    "BankOLTPWorkload",
    "BurstSpec",
    "CorrelatedReferenceWrapper",
    "CustomerLookupWorkload",
    "TraceReplayWorkload",
    "concatenate",
    "interleave",
    "ProbabilisticMix",
]
