"""Command-line interface: regenerate any paper artifact.

Examples::

    repro table4.1                 # the two-pool experiment
    repro table4.2 --scale 2       # Zipfian, longer windows
    repro table4.3 --scale 0.3     # OLTP trace, shortened
    repro table4.2 --metrics-out run.jsonl --timeline
    repro trace-stats              # Section 4.3 trace characterization
    repro ablation k-sweep         # any DESIGN.md ablation by name
    repro list                     # what can be run

(or ``python -m repro ...`` without installing the entry point.)

Observability: every table and ablation command accepts
``--metrics-out PATH`` (stream structured JSONL events — accesses,
evictions with backward K-distance, history purges, run snapshots, and
the sliding-window hit-ratio series; schema in docs/observability.md)
and ``--timeline`` (render an ASCII chart of windowed hit ratio over
logical time after the table). Progress narration is itself an event
stream: ``--quiet`` just leaves the console sink unattached, so it
silences tables, ablations, and trace-stats uniformly.

Parallelism: ``--jobs N`` fans the sweep grid over N worker processes
(:mod:`repro.sim.parallel`); results are identical to a serial run, and
progress still narrates one line per completed cell. See
docs/performance.md for the engine's observability trade-offs.

Fault tolerance: failing sweep cells are retried with backoff and
crashed worker pools are rebuilt automatically. ``--checkpoint PATH``
records completed cells to a JSONL ledger as they finish; adding
``--resume`` on a later invocation skips the recorded cells and appends
the rest — an interrupted sweep (Ctrl-C exits with code 130 after
salvaging completed cells) picks up where it left off and produces the
identical table. See the "Fault tolerance" section of
docs/performance.md.

Live telemetry: ``--serve-metrics PORT`` exposes the run's metrics
registry as Prometheus text on ``localhost:PORT/metrics`` (plus
``/healthz``) for the whole command, with worker counters, histogram
buckets, and gauges merged in as sweep cells complete;
``--sample-resources SECONDS`` adds a periodic RSS/CPU/GC/sink-depth
sampler. ``repro top`` renders a live terminal dashboard over either a
``/metrics`` endpoint or a ``--metrics-out`` file, and ``repro perf``
diffs the latest ``BENCH_history.jsonl`` record against its baseline
window (non-zero exit on regression). See the "Live telemetry" section
of docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack, contextmanager
from typing import Iterator, List, Optional, Tuple

from .analysis import profile_trace
from .errors import ConfigurationError
from .experiments import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    PAPER_TABLE_4_3,
    comparison_table,
    table_4_1_spec,
    table_4_2_spec,
    table_4_3_spec,
)
from .experiments.ablations import ABLATIONS
from .obs import (
    ConsoleProgressSink,
    EventDispatcher,
    HitRatioWindowRecorder,
    JsonlSink,
    ProgressEvent,
    SnapshotEvent,
    TimelineSink,
)
from .obs import runtime as obs_runtime
from .obs import trace as obs_trace
from .obs import perf as obs_perf
from .obs import top as obs_top
from .obs.registry import MetricsRegistry
from .obs.telemetry import MetricsServer, ResourceSampler
from .obs.trace import Tracer, write_chrome_trace
from .sim import (
    CellExecutionError,
    SweepCheckpoint,
    SweepInterrupted,
    default_checkpoint,
    default_jobs,
    explain_eviction,
    run_experiment,
)
from .sim.explain import EXPLAIN_WORKLOADS
from .workloads import BankOLTPWorkload
from .workloads.oltp import FIVE_MINUTE_WINDOW_REFERENCES, PAPER_TRACE_LENGTH

#: JSONL access-event sampling for CLI runs: decision events (evictions,
#: purges, snapshots, window samples) are always written; raw accesses are
#: thinned to keep multi-million-reference sweeps to tractable file sizes.
METRICS_ACCESS_SAMPLE = 100

#: Sliding hit-ratio window (references) and sampling stride for the
#: windowed series behind ``--metrics-out`` / ``--timeline``.
METRICS_WINDOW = 1000
METRICS_STRIDE = 250


@contextmanager
def _observability(quiet: bool,
                   metrics_out: Optional[str] = None,
                   timeline: bool = False,
                   trace_out: Optional[str] = None,
                   serve_metrics: Optional[int] = None,
                   sample_resources: Optional[float] = None
                   ) -> Iterator[Tuple[EventDispatcher,
                                       Optional[TimelineSink]]]:
    """Build, activate, and tear down the command's event dispatcher.

    The dispatcher is made ambient (:func:`repro.obs.activate`) so
    simulators built anywhere below — including inside ablation
    functions that never see a parameter — emit through it. On exit a
    ``phase="final"`` snapshot is emitted and file sinks are closed.
    With ``trace_out`` an ambient :class:`~repro.obs.trace.Tracer` is
    activated alongside, and the recorded span tree (including spans
    relayed from forked sweep workers) is written as Chrome trace-event
    JSON when the command finishes. ``serve_metrics`` keeps a
    ``/metrics`` + ``/healthz`` endpoint up for the command's whole
    extent; ``sample_resources`` runs the periodic
    :class:`~repro.obs.telemetry.ResourceSampler` beside it.
    """
    dispatcher = EventDispatcher()
    if not quiet:
        dispatcher.attach(ConsoleProgressSink())
    timeline_sink: Optional[TimelineSink] = None
    if metrics_out or timeline:
        dispatcher.attach(HitRatioWindowRecorder(
            dispatcher, window=METRICS_WINDOW, stride=METRICS_STRIDE))
    if timeline:
        timeline_sink = dispatcher.attach(TimelineSink())
    if metrics_out:
        dispatcher.attach(JsonlSink.open(
            metrics_out, access_every=METRICS_ACCESS_SAMPLE))
    if metrics_out or serve_metrics is not None or sample_resources:
        # A registry rides along so the final snapshot carries protocol
        # totals — accumulated locally in serial runs, merged from
        # worker registries under --jobs N — and so the live endpoint
        # and sampler have an instrument surface to publish into.
        dispatcher.metrics = MetricsRegistry()
    server: Optional[MetricsServer] = None
    sampler: Optional[ResourceSampler] = None
    tracer: Optional[Tracer] = Tracer() if trace_out else None
    # Everything from the first daemon-thread start to the last command
    # output runs under one try/finally: a command that raises (or a
    # sampler that fails to construct after the server bound its port)
    # must never leak a live endpoint thread or a sampling thread.
    try:
        if serve_metrics is not None:
            assert dispatcher.metrics is not None
            server = MetricsServer(dispatcher.metrics, port=serve_metrics)
            server.start()
            print(f"serving /metrics on {server.url}", file=sys.stderr)
        if sample_resources:
            assert dispatcher.metrics is not None
            sampler = ResourceSampler(dispatcher.metrics,
                                      interval=sample_resources,
                                      dispatcher=dispatcher)
            sampler.start()
        with obs_runtime.activate(dispatcher):
            if tracer is not None:
                with obs_trace.activate(tracer):
                    yield dispatcher, timeline_sink
            else:
                yield dispatcher, timeline_sink
        if dispatcher.active:
            counters = (dispatcher.metrics.snapshot()
                        if dispatcher.metrics is not None else {})
            dispatcher.emit(SnapshotEvent(time=None, phase="final",
                                          counters=counters))
    finally:
        if sampler is not None:
            sampler.stop()
        if server is not None:
            server.stop()
        dispatcher.close()
    if tracer is not None and trace_out:
        write_chrome_trace(trace_out, tracer)
        print(f"trace written to {trace_out}", file=sys.stderr)
    if metrics_out:
        print(f"metrics written to {metrics_out}", file=sys.stderr)


def _progress_to(dispatcher: EventDispatcher):
    """A progress callback that narrates through the event stream."""
    def emitter(line: str) -> None:
        dispatcher.emit(ProgressEvent(message=line))
    return emitter


def _open_checkpoint(path: Optional[str], resume: bool,
                     narrate) -> Optional[SweepCheckpoint]:
    """Open the ``--checkpoint`` ledger (resuming when asked)."""
    if path is None:
        return None
    checkpoint = SweepCheckpoint(path, resume=resume)
    if resume and checkpoint.resumed_cells:
        narrate(f"resuming from {path}: "
                f"{checkpoint.resumed_cells} checkpointed cell(s)")
    return checkpoint


def _report_sweep_failure(exc: Exception) -> int:
    """Render a salvaged-sweep exit: 130 for interrupts, 1 for failures."""
    if isinstance(exc, SweepInterrupted):
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    print(f"error: {exc}", file=sys.stderr)
    return 1


def _run_table(number: str, scale: float, repetitions: Optional[int],
               quiet: bool, compare: bool, chart: bool,
               metrics_out: Optional[str], timeline: bool,
               jobs: int = 1, trace_out: Optional[str] = None,
               checkpoint_path: Optional[str] = None,
               resume: bool = False,
               serve_metrics: Optional[int] = None,
               sample_resources: Optional[float] = None) -> int:
    builders = {
        "4.1": (table_4_1_spec, PAPER_TABLE_4_1, 3),
        "4.2": (table_4_2_spec, PAPER_TABLE_4_2, 3),
        "4.3": (table_4_3_spec, PAPER_TABLE_4_3, 1),
    }
    builder, paper_rows, default_reps = builders[number]
    reps = repetitions if repetitions is not None else default_reps
    spec = builder(scale=scale, repetitions=reps)
    with _observability(quiet, metrics_out, timeline, trace_out,
                        serve_metrics,
                        sample_resources) as (obs, timeline_sink):
        narrate = _progress_to(obs)
        with ExitStack() as stack:
            checkpoint = _open_checkpoint(checkpoint_path, resume, narrate)
            if checkpoint is not None:
                stack.enter_context(checkpoint)
            try:
                result = run_experiment(spec, progress=narrate,
                                        observability=obs, jobs=jobs,
                                        checkpoint=checkpoint)
            except (SweepInterrupted, CellExecutionError) as exc:
                return _report_sweep_failure(exc)
        if compare:
            print(comparison_table(result, paper_rows).render())
        else:
            print(result.to_table().render())
        if chart:
            from .sim import chart_experiment
            print()
            print(chart_experiment(result))
        if timeline_sink is not None:
            print()
            print(timeline_sink.render())
    return 0


def _run_trace_stats(scale: float, quiet: bool) -> int:
    with _observability(quiet) as (obs, _):
        narrate = _progress_to(obs)
        workload = BankOLTPWorkload()
        count = int(PAPER_TRACE_LENGTH * scale)
        narrate(f"generating {count} OLTP references ...")
        references = list(workload.references(count, seed=0))
        narrate("profiling the trace ...")
        profile = profile_trace(references, FIVE_MINUTE_WINDOW_REFERENCES)
        print("Synthetic OLTP trace characterization "
              "(compare paper Section 4.3 prose):")
        for line in profile.summary_lines():
            print(f"  {line}")
    return 0


def _run_ablation(name: str, quiet: bool,
                  metrics_out: Optional[str], timeline: bool,
                  jobs: int = 1, trace_out: Optional[str] = None,
                  checkpoint_path: Optional[str] = None,
                  resume: bool = False,
                  serve_metrics: Optional[int] = None,
                  sample_resources: Optional[float] = None) -> int:
    try:
        ablation = ABLATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ABLATIONS))
        print(f"unknown ablation {name!r}; known: {known}", file=sys.stderr)
        return 2
    with _observability(quiet, metrics_out, timeline, trace_out,
                        serve_metrics,
                        sample_resources) as (obs, timeline_sink):
        narrate = _progress_to(obs)
        narrate(f"running ablation {name} ...")
        # Ablations build their sweeps internally; the ambient defaults
        # route --jobs and --checkpoint to any sweep_buffer_sizes call
        # below (each internal grid keyed by its own fingerprint).
        with ExitStack() as stack:
            stack.enter_context(default_jobs(jobs))
            checkpoint = _open_checkpoint(checkpoint_path, resume, narrate)
            if checkpoint is not None:
                stack.enter_context(checkpoint)
                stack.enter_context(default_checkpoint(checkpoint))
            try:
                print(ablation().render())
            except (SweepInterrupted, CellExecutionError) as exc:
                return _report_sweep_failure(exc)
        if timeline_sink is not None:
            print()
            print(timeline_sink.render())
    return 0


def _list_targets() -> int:
    print("tables:     table4.1  table4.2  table4.3")
    print("analysis:   trace-stats  explain")
    print("report:     report [--ablations] [--output FILE]")
    print("telemetry:  top (--url|--port|--file)  perf [--history FILE]")
    print("service:    serve-bench (--shards --sessions --tenants "
          "--quota ...)")
    print("ablations:  " + "  ".join(sorted(ABLATIONS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the LRU-K paper's tables and ablations.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="stream observability events (JSONL) to this file")
        command_parser.add_argument(
            "--timeline", action="store_true",
            help="render a windowed hit-ratio timeline after the output")
        command_parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for the sweep grid (default 1 = serial; "
                 "results are identical either way)")
        command_parser.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="write a Chrome trace-event JSON span timeline "
                 "(sweep -> cell -> simulate -> policy-hook; loadable in "
                 "Perfetto), including spans from --jobs workers")
        command_parser.add_argument(
            "--checkpoint", default=None, metavar="PATH",
            help="record completed sweep cells to this JSONL ledger as "
                 "they finish (survives crashes and Ctrl-C)")
        command_parser.add_argument(
            "--resume", action="store_true",
            help="skip cells already recorded in --checkpoint and append "
                 "the rest (requires --checkpoint)")
        command_parser.add_argument(
            "--serve-metrics", type=int, default=None, metavar="PORT",
            help="serve live Prometheus text on localhost:PORT/metrics "
                 "(and /healthz) for the whole command; 0 picks a free "
                 "port. Scrape with curl or watch with `repro top`")
        command_parser.add_argument(
            "--sample-resources", type=float, default=None,
            metavar="SECONDS",
            help="publish process gauges (RSS, CPU, GC, sink depths) "
                 "into the metrics registry every SECONDS")

    for number in ("4.1", "4.2", "4.3"):
        table = sub.add_parser(f"table{number}",
                               help=f"regenerate paper Table {number}")
        table.add_argument("--scale", type=float, default=1.0,
                           help="protocol length multiplier (default 1.0)")
        table.add_argument("--repetitions", type=int, default=None,
                           help="seeded repetitions to average")
        table.add_argument("--quiet", action="store_true",
                           help="suppress progress narration on stderr")
        table.add_argument("--compare", action="store_true",
                           help="render side-by-side with the paper's numbers")
        table.add_argument("--chart", action="store_true",
                           help="append an ASCII hit-ratio chart")
        add_obs_flags(table)

    stats = sub.add_parser("trace-stats",
                           help="characterize the synthetic OLTP trace")
    stats.add_argument("--scale", type=float, default=1.0)
    stats.add_argument("--quiet", action="store_true",
                       help="suppress progress narration on stderr")

    ablation = sub.add_parser("ablation", help="run a DESIGN.md ablation")
    ablation.add_argument("name", help="ablation name (see `repro list`)")
    ablation.add_argument("--quiet", action="store_true",
                          help="suppress progress narration on stderr")
    add_obs_flags(ablation)

    explain = sub.add_parser(
        "explain",
        help="replay a (workload, seed, capacity) cell and explain why "
             "a page was evicted (candidates, CRP, Belady regret)")
    explain.add_argument("--workload", default="zipfian",
                         choices=sorted(EXPLAIN_WORKLOADS),
                         help="named workload to replay (default zipfian)")
    explain.add_argument("--seed", type=int, default=0,
                         help="workload seed (default 0)")
    explain.add_argument("--capacity", type=int, required=True,
                         help="buffer slots B")
    explain.add_argument("--page", type=int, required=True,
                         help="the evicted page to explain")
    explain.add_argument("--at", type=int, default=None, metavar="T",
                         help="1-based reference time of the eviction "
                              "(default: the page's latest eviction)")
    explain.add_argument("--refs", type=int, default=None, metavar="N",
                         help="replay length (default 20000, extended to "
                              "cover --at)")
    explain.add_argument("--k", type=int, default=2,
                         help="LRU-K history depth (default 2)")
    explain.add_argument("--crp", type=int, default=0,
                         help="correlated reference period (default 0)")
    explain.add_argument("--rip", type=int, default=None,
                         help="retained information period (default: keep "
                              "all history)")
    explain.add_argument("--top", type=int, default=8,
                         help="candidates to show per decision (default 8)")
    explain.add_argument("--no-belady", action="store_true",
                         help="skip the Belady-regret annotation (faster)")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a --serve-metrics endpoint "
             "or a --metrics-out JSONL file")
    top_source = top.add_mutually_exclusive_group(required=True)
    top_source.add_argument("--url", default=None, metavar="URL",
                            help="metrics endpoint base URL or /metrics URL")
    top_source.add_argument("--port", type=int, default=None, metavar="N",
                            help="shorthand for --url http://127.0.0.1:N")
    top_source.add_argument("--file", default=None, metavar="PATH",
                            help="read the last snapshot of a "
                                 "--metrics-out JSONL file instead")
    top.add_argument("--interval", type=float, default=1.0,
                     help="poll/repaint interval in seconds (default 1.0)")
    top.add_argument("--once", action="store_true",
                     help="render a single plain frame and exit "
                          "(no ANSI clears; scriptable)")
    top.add_argument("--frames", type=int, default=None, metavar="N",
                     help="render N frames (scrolling, no clears) and exit")

    serve = sub.add_parser(
        "serve-bench",
        help="drive the concurrent multi-tenant buffer service with "
             "threaded sessions; reports aggregate and per-tenant hit "
             "ratios plus p50/p99/p999 request latency (docs/service.md)")
    serve.add_argument("--shards", type=int, default=2, metavar="N",
                       help="independent buffer-pool shards (default 2)")
    serve.add_argument("--sessions", type=int, default=8, metavar="N",
                       help="concurrent session threads (default 8)")
    serve.add_argument("--tenants", type=int, default=2, metavar="N",
                       help="tenants to spread the sessions over "
                            "round-robin (default 2)")
    serve.add_argument("--refs", type=int, default=10_000, metavar="N",
                       help="page references per session (default 10000)")
    serve.add_argument("--capacity", type=int, default=256,
                       help="total buffer frames across all shards "
                            "(default 256)")
    serve.add_argument("--k", type=int, default=2,
                       help="LRU-K history depth for the per-shard "
                            "policies (default 2)")
    serve.add_argument("--quota", type=int, default=None, metavar="FRAMES",
                       help="per-tenant frame quota; over-quota tenants "
                            "missing into a full shard evict their own "
                            "LRU page first (default: no quotas)")
    serve.add_argument("--workload", default="zipfian",
                       choices=sorted(EXPLAIN_WORKLOADS),
                       help="named workload each session replays, with "
                            "per-session seeds (default zipfian)")
    serve.add_argument("--seed", type=int, default=0,
                       help="base seed; session i uses seed+i (default 0)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress progress narration on stderr")
    serve.add_argument("--serve-metrics", type=int, default=None,
                       metavar="PORT",
                       help="serve the run's service.* instruments live "
                            "on localhost:PORT/metrics; 0 picks a free "
                            "port. Watch with `repro top`")
    serve.add_argument("--sample-resources", type=float, default=None,
                       metavar="SECONDS",
                       help="publish process gauges (RSS, CPU, GC) every "
                            "SECONDS while the bench runs")
    serve.add_argument("--hold", type=float, default=0.0, metavar="SECONDS",
                       help="keep the process (and any --serve-metrics "
                            "endpoint) alive SECONDS after the report, "
                            "so scrapers can read the final counters")

    perf = sub.add_parser(
        "perf",
        help="diff the latest BENCH_history.jsonl record against its "
             "baseline window; non-zero exit on regression")
    perf.add_argument("--history", default=None, metavar="PATH",
                      help="history ledger (default: $REPRO_BENCH_HISTORY "
                           "or ./BENCH_history.jsonl)")
    perf.add_argument("--bench", default="a12c",
                      help="bench whose records to inspect (default a12c)")
    perf.add_argument("--metric", default="lruk_kernel",
                      help="metric to gate on (default lruk_kernel "
                           "refs/sec)")
    perf.add_argument("--threshold", type=float, default=0.10,
                      help="allowed fractional drop vs the baseline "
                           "median (default 0.10)")
    perf.add_argument("--window", type=int, default=5,
                      help="baseline window: measured records preceding "
                           "the latest (default 5)")

    report = sub.add_parser(
        "report", help="regenerate the full reproduction report (Markdown)")
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--table-scale", type=float, default=1.0)
    report.add_argument("--oltp-scale", type=float, default=0.25)
    report.add_argument("--repetitions", type=int, default=2)
    report.add_argument("--ablations", action="store_true",
                        help="include the A1-A10 ablation tables")
    report.add_argument("--quiet", action="store_true",
                        help="suppress progress narration on stderr")

    trace = sub.add_parser(
        "trace",
        help="bake and inspect columnar on-disk reference traces "
             "(zero-copy mmap format; see docs/performance.md)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    bake = trace_sub.add_parser(
        "bake",
        help="materialize a named workload into a columnar trace file")
    bake.add_argument("output", help="destination trace file path")
    bake.add_argument("--workload", default="zipfian",
                      choices=sorted(EXPLAIN_WORKLOADS),
                      help="named workload to materialize (default zipfian)")
    bake.add_argument("--refs", type=int, default=1_000_000, metavar="N",
                      help="trace length in references (default 1000000)")
    bake.add_argument("--seed", type=int, default=0,
                      help="workload seed (default 0)")
    info = trace_sub.add_parser(
        "info", help="print a trace file's header and a page-id preview")
    info.add_argument("path", help="trace file to inspect")

    sub.add_parser("list", help="list runnable targets")
    return parser


def _run_serve_bench(args: argparse.Namespace) -> int:
    import time

    from .core.lruk import LRUKPolicy
    from .service import ShardedBufferManager, run_load
    from .sim.explain import make_workload

    if args.tenants <= 0:
        print("error: --tenants must be positive", file=sys.stderr)
        return 2
    tenants = {f"tenant{index}": make_workload(args.workload)
               for index in range(args.tenants)}
    quotas = ({name: args.quota for name in tenants}
              if args.quota is not None else None)
    with _observability(args.quiet, serve_metrics=args.serve_metrics,
                        sample_resources=args.sample_resources) as (obs, _):
        narrate = _progress_to(obs)
        # The endpoint registry (when --serve-metrics/--sample-resources
        # created one) doubles as the manager's, so a live scrape and the
        # printed report read the same service.* instruments.
        try:
            manager = ShardedBufferManager(
                args.capacity, shards=args.shards,
                policy_factory=lambda: LRUKPolicy(k=args.k),
                quotas=quotas, registry=obs.metrics)
            narrate(f"serving {args.sessions} session(s) x {args.refs} "
                    f"refs over {args.shards} shard(s), "
                    f"{args.tenants} tenant(s) ...")
            report = run_load(manager, tenants, sessions=args.sessions,
                              references=args.refs, seed=args.seed)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        if args.hold > 0:
            narrate(f"holding for {args.hold:.1f}s (scrape window) ...")
            time.sleep(args.hold)
    return 0


def _run_trace_bake(workload_name: str, refs: int, seed: int,
                    output: str) -> int:
    import time

    from .sim.explain import make_workload
    from .storage.columnar import bake_trace

    if refs <= 0:
        print("error: --refs must be positive", file=sys.stderr)
        return 2
    workload = make_workload(workload_name)
    start = time.perf_counter()
    try:
        nbytes = bake_trace(output, workload, refs, seed=seed)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    rate = refs / elapsed if elapsed > 0 else float("inf")
    print(f"baked {refs} references -> {output} ({nbytes} bytes, "
          f"{elapsed:.2f}s, {rate / 1e6:.2f}M refs/s)")
    return 0


def _run_trace_info(path: str) -> int:
    from .errors import TraceCorruptionError
    from .storage.columnar import COLUMNAR_VERSION, TraceFile

    try:
        with TraceFile(path) as handle:
            pages = handle.page_ids()
            preview = ", ".join(str(page) for page in pages[:8])
            if len(pages) > 8:
                preview += ", ..."
            print(f"path:        {path}")
            print(f"format:      columnar v{COLUMNAR_VERSION}")
            print(f"fingerprint: {handle.fingerprint or '(none)'}")
            print(f"seed:        {handle.seed}")
            print(f"references:  {handle.count}")
            print(f"pages:       [{preview}]")
    except (TraceCorruptionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and args.checkpoint is None:
        parser.error("--resume requires --checkpoint PATH")
    if args.command == "list":
        return _list_targets()
    if args.command == "trace":
        if args.trace_command == "bake":
            return _run_trace_bake(args.workload, args.refs, args.seed,
                                   args.output)
        return _run_trace_info(args.path)
    if args.command == "trace-stats":
        return _run_trace_stats(args.scale, args.quiet)
    if args.command == "ablation":
        return _run_ablation(args.name, args.quiet,
                             args.metrics_out, args.timeline,
                             jobs=args.jobs, trace_out=args.trace_out,
                             checkpoint_path=args.checkpoint,
                             resume=args.resume,
                             serve_metrics=args.serve_metrics,
                             sample_resources=args.sample_resources)
    if args.command == "serve-bench":
        return _run_serve_bench(args)
    if args.command == "top":
        url = args.url
        if args.port is not None:
            url = f"http://127.0.0.1:{args.port}"
        try:
            return obs_top.run_top(url=url, file=args.file,
                                   interval=args.interval,
                                   frames=args.frames, once=args.once)
        except ConfigurationError as exc:
            parser.error(str(exc))
    if args.command == "perf":
        history = args.history or obs_perf.default_history_path()
        records = obs_perf.load_history(history, bench=args.bench)
        verdict = obs_perf.check_regression(
            records, args.metric, threshold=args.threshold,
            window=args.window)
        print(obs_perf.render_report(records, verdict))
        return verdict.exit_code
    if args.command == "explain":
        report = explain_eviction(
            args.workload, args.seed, args.capacity, args.page,
            at=args.at, references=args.refs, k=args.k,
            correlated_reference_period=args.crp,
            retained_information_period=args.rip,
            top_candidates=args.top, belady=not args.no_belady)
        print(report.render())
        return 0 if report.found else 1
    if args.command == "report":
        from .experiments.report import generate_report
        with _observability(args.quiet) as (obs, _):
            text = generate_report(table_scale=args.table_scale,
                                   oltp_scale=args.oltp_scale,
                                   repetitions=args.repetitions,
                                   include_ablations=args.ablations,
                                   progress=_progress_to(obs))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"report written to {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0
    number = args.command.removeprefix("table")
    return _run_table(number, args.scale, args.repetitions,
                      args.quiet, args.compare, args.chart,
                      args.metrics_out, args.timeline, jobs=args.jobs,
                      trace_out=args.trace_out,
                      checkpoint_path=args.checkpoint, resume=args.resume,
                      serve_metrics=args.serve_metrics,
                      sample_resources=args.sample_resources)


if __name__ == "__main__":
    raise SystemExit(main())
