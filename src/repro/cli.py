"""Command-line interface: regenerate any paper artifact.

Examples::

    repro table4.1                 # the two-pool experiment
    repro table4.2 --scale 2       # Zipfian, longer windows
    repro table4.3 --scale 0.3     # OLTP trace, shortened
    repro trace-stats              # Section 4.3 trace characterization
    repro ablation k-sweep         # any DESIGN.md ablation by name
    repro list                     # what can be run

(or ``python -m repro ...`` without installing the entry point.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import profile_trace
from .experiments import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    PAPER_TABLE_4_3,
    comparison_table,
    table_4_1_spec,
    table_4_2_spec,
    table_4_3_spec,
)
from .experiments.ablations import ABLATIONS
from .sim import run_experiment
from .workloads import BankOLTPWorkload
from .workloads.oltp import FIVE_MINUTE_WINDOW_REFERENCES, PAPER_TRACE_LENGTH


def _progress(line: str) -> None:
    print(f"  .. {line}", file=sys.stderr)


def _run_table(number: str, scale: float, repetitions: Optional[int],
               quiet: bool, compare: bool, chart: bool) -> int:
    builders = {
        "4.1": (table_4_1_spec, PAPER_TABLE_4_1, 3),
        "4.2": (table_4_2_spec, PAPER_TABLE_4_2, 3),
        "4.3": (table_4_3_spec, PAPER_TABLE_4_3, 1),
    }
    builder, paper_rows, default_reps = builders[number]
    reps = repetitions if repetitions is not None else default_reps
    spec = builder(scale=scale, repetitions=reps)
    result = run_experiment(spec, progress=None if quiet else _progress)
    if compare:
        print(comparison_table(result, paper_rows).render())
    else:
        print(result.to_table().render())
    if chart:
        from .sim import chart_experiment
        print()
        print(chart_experiment(result))
    return 0


def _run_trace_stats(scale: float) -> int:
    workload = BankOLTPWorkload()
    count = int(PAPER_TRACE_LENGTH * scale)
    references = list(workload.references(count, seed=0))
    profile = profile_trace(references, FIVE_MINUTE_WINDOW_REFERENCES)
    print("Synthetic OLTP trace characterization "
          "(compare paper Section 4.3 prose):")
    for line in profile.summary_lines():
        print(f"  {line}")
    return 0


def _run_ablation(name: str) -> int:
    try:
        ablation = ABLATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ABLATIONS))
        print(f"unknown ablation {name!r}; known: {known}", file=sys.stderr)
        return 2
    print(ablation().render())
    return 0


def _list_targets() -> int:
    print("tables:     table4.1  table4.2  table4.3")
    print("analysis:   trace-stats")
    print("report:     report [--ablations] [--output FILE]")
    print("ablations:  " + "  ".join(sorted(ABLATIONS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the LRU-K paper's tables and ablations.")
    sub = parser.add_subparsers(dest="command", required=True)

    for number in ("4.1", "4.2", "4.3"):
        table = sub.add_parser(f"table{number}",
                               help=f"regenerate paper Table {number}")
        table.add_argument("--scale", type=float, default=1.0,
                           help="protocol length multiplier (default 1.0)")
        table.add_argument("--repetitions", type=int, default=None,
                           help="seeded repetitions to average")
        table.add_argument("--quiet", action="store_true",
                           help="suppress per-cell progress on stderr")
        table.add_argument("--compare", action="store_true",
                           help="render side-by-side with the paper's numbers")
        table.add_argument("--chart", action="store_true",
                           help="append an ASCII hit-ratio chart")

    stats = sub.add_parser("trace-stats",
                           help="characterize the synthetic OLTP trace")
    stats.add_argument("--scale", type=float, default=1.0)

    ablation = sub.add_parser("ablation", help="run a DESIGN.md ablation")
    ablation.add_argument("name", help="ablation name (see `repro list`)")

    report = sub.add_parser(
        "report", help="regenerate the full reproduction report (Markdown)")
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--table-scale", type=float, default=1.0)
    report.add_argument("--oltp-scale", type=float, default=0.25)
    report.add_argument("--repetitions", type=int, default=2)
    report.add_argument("--ablations", action="store_true",
                        help="include the A1-A10 ablation tables")

    sub.add_parser("list", help="list runnable targets")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _list_targets()
    if args.command == "trace-stats":
        return _run_trace_stats(args.scale)
    if args.command == "ablation":
        return _run_ablation(args.name)
    if args.command == "report":
        from .experiments.report import generate_report
        text = generate_report(table_scale=args.table_scale,
                               oltp_scale=args.oltp_scale,
                               repetitions=args.repetitions,
                               include_ablations=args.ablations,
                               progress=_progress)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"report written to {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0
    number = args.command.removeprefix("table")
    return _run_table(number, args.scale, args.repetitions,
                      args.quiet, args.compare, args.chart)


if __name__ == "__main__":
    raise SystemExit(main())
