"""HIST/LAST history control blocks and the Retained Information store.

Section 2.1.3 of the paper defines two data structures:

- ``HIST(p)`` — "the history control block of page p; it contains the
  times of the K most recent references to page p, discounting correlated
  references: HIST(p,1) denotes the last reference, HIST(p,2) the second
  to the last reference, etc."
- ``LAST(p)`` — "the time of the most recent reference to page p,
  regardless of whether this is a correlated reference or not."

Crucially (Section 2.1.2, the *Page Reference Retained Information
Problem*), these blocks outlive page residence: they are kept for the
Retained Information Period (RIP) after the page's most recent access, and
"an asynchronous demon process should purge history control blocks that
are no longer justified under the retained information criterion".
:class:`HistoryStore` implements that store, with the purge demon exposed
both as an explicit :meth:`HistoryStore.purge` call and as an amortized
automatic sweep.

Timestamps follow the paper's convention: logical reference-string
subscripts, 1-based; the value 0 in a HIST slot means "no recorded
reference" and therefore an infinite backward distance.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..types import PageId

#: Backward K-distance of a page lacking K recorded references
#: (paper Definition 2.1: "= infinity, if p does not appear at least K
#: times in r1, r2, ..., rt").
INFINITE_DISTANCE = float("inf")


class HistoryBlock:
    """One page's HIST/LAST control block.

    ``hist[i]`` is HIST(p, i+1): ``hist[0]`` the most recent *uncorrelated*
    reference time, ``hist[k-1]`` the K-th most recent. Zero means unknown.
    ``last`` is LAST(p).
    """

    __slots__ = ("hist", "last")

    def __init__(self, k: int, now: int = 0) -> None:
        if k <= 0:
            raise ConfigurationError("history depth K must be positive")
        self.hist: List[int] = [0] * k
        self.last: int = now
        if now:
            self.hist[0] = now

    @property
    def k(self) -> int:
        """History depth K of this block."""
        return len(self.hist)

    def kth_time(self) -> int:
        """HIST(p, K): time of the K-th most recent uncorrelated reference."""
        return self.hist[-1]

    def backward_distance(self, now: int) -> float:
        """Backward K-distance b_t(p, K) per Definition 2.1."""
        kth = self.hist[-1]
        if kth == 0:
            return INFINITE_DISTANCE
        return now - kth

    def record_uncorrelated(self, now: int) -> None:
        """Close the current correlated period and record a new reference.

        This is the Figure 2.1 hit-path update: the period
        ``LAST(p) - HIST(p,1)`` that the just-ended burst spanned is added
        to every older history entry, collapsing the burst to an instant,
        then the new reference becomes HIST(p,1).
        """
        hist = self.hist
        if len(hist) == 2:
            # K=2 (the paper's recommended setting, and the dominant bench
            # configuration): the shifted entry collapses algebraically —
            # HIST(p,2) = HIST(p,1) + (LAST(p) - HIST(p,1)) = LAST(p) when
            # HIST(p,1) is recorded, else stays unknown. `hist[0] and
            # self.last` encodes exactly that without the shift loop.
            hist[1] = hist[0] and self.last
            hist[0] = now
            self.last = now
            return
        correlation_period = self.last - hist[0]
        for i in range(len(hist) - 1, 0, -1):
            if hist[i - 1]:
                hist[i] = hist[i - 1] + correlation_period
            else:
                hist[i] = 0
        hist[0] = now
        self.last = now

    def record_correlated(self, now: int) -> None:
        """A reference within the Correlated Reference Period: only LAST moves."""
        self.last = now

    def record_readmission(self, now: int) -> None:
        """Figure 2.1 miss-path update for a page with surviving history.

        The history entries shift without a correlation adjustment: the
        page was dropped from buffer, so its previous correlated period is
        already closed.
        """
        hist = self.hist
        if len(hist) == 2:
            # K=2: plain two-slot shift, no loop.
            hist[1] = hist[0]
            hist[0] = now
            self.last = now
            return
        for i in range(len(hist) - 1, 0, -1):
            hist[i] = hist[i - 1]
        hist[0] = now
        self.last = now

    def __repr__(self) -> str:
        return f"HistoryBlock(hist={self.hist}, last={self.last})"


class HistoryStore:
    """All pages' history blocks, with Retained Information purging.

    Parameters
    ----------
    k:
        History depth of the blocks created by :meth:`get_or_create`.
    retained_information_period:
        Blocks of *non-resident* pages whose LAST is more than this many
        logical references in the past are purged. ``None`` disables
        purging (the idealized Section 3 analysis).
    purge_interval:
        Run the amortized purge sweep at most once per this many
        :meth:`touch` notifications (the "asynchronous demon" cadence).
    """

    def __init__(self, k: int,
                 retained_information_period: Optional[int] = None,
                 purge_interval: int = 256) -> None:
        if k <= 0:
            raise ConfigurationError("history depth K must be positive")
        if (retained_information_period is not None
                and retained_information_period <= 0):
            raise ConfigurationError(
                "retained information period must be positive (or None)")
        if purge_interval <= 0:
            raise ConfigurationError("purge interval must be positive")
        self.k = k
        self.retained_information_period = retained_information_period
        self.purge_interval = purge_interval
        self._blocks: Dict[PageId, HistoryBlock] = {}
        # Expiry min-heap of (last, page); entries are lazily validated.
        self._expiry: List[Tuple[int, PageId]] = []
        self._touches_since_purge = 0
        self.purged_blocks = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, page: PageId) -> bool:
        return page in self._blocks

    def get(self, page: PageId) -> Optional[HistoryBlock]:
        """The page's block, or None when unknown/purged."""
        return self._blocks.get(page)

    def get_or_create(self, page: PageId) -> Tuple[HistoryBlock, bool]:
        """Return ``(block, created)``; a created block is all-zero."""
        block = self._blocks.get(page)
        if block is not None:
            return block, False
        block = HistoryBlock(self.k)
        self._blocks[page] = block
        return block, True

    def touch(self, page: PageId, is_resident: Callable[[PageId], bool]) -> int:
        """Note that a page's LAST advanced; drives the amortized demon.

        ``is_resident`` lets the purge sweep skip blocks whose page is in
        buffer — those are always retained (they back live replacement
        decisions). Returns how many blocks the amortized sweep purged
        (0 when the demon did not run), so callers can report demon
        activity without polling.
        """
        block = self._blocks.get(page)
        if block is None:
            return 0
        if self.retained_information_period is None:
            return 0
        heapq.heappush(self._expiry, (block.last, page))
        self._touches_since_purge += 1
        if self._touches_since_purge >= self.purge_interval:
            return self.purge(block.last, is_resident)
        return 0

    def purge(self, now: int, is_resident: Callable[[PageId], bool]) -> int:
        """Purge expired non-resident blocks; returns how many were dropped.

        This is the paper's "asynchronous demon process"; the simulator
        normally relies on the amortized sweep in :meth:`touch` but tests
        and long-idle workloads may call it directly.
        """
        self._touches_since_purge = 0
        rip = self.retained_information_period
        if rip is None:
            return 0
        dropped = 0
        postponed: List[Tuple[int, PageId]] = []
        while self._expiry and self._expiry[0][0] + rip < now:
            last, page = heapq.heappop(self._expiry)
            block = self._blocks.get(page)
            if block is None or block.last != last:
                continue  # stale heap entry: the page was touched again
            if is_resident(page):
                # Resident blocks are always retained; keep the entry so the
                # page is reconsidered once it has been evicted.
                postponed.append((last, page))
                continue
            del self._blocks[page]
            dropped += 1
        for entry in postponed:
            heapq.heappush(self._expiry, entry)
        self.purged_blocks += dropped
        return dropped

    def drop(self, page: PageId) -> None:
        """Remove a block unconditionally (used by bounded-memory mode)."""
        self._blocks.pop(page, None)

    def pages(self) -> Iterator[PageId]:
        """Iterate over pages that currently have a block."""
        return iter(self._blocks)

    def clear(self) -> None:
        """Forget all history (fresh run)."""
        self._blocks.clear()
        self._expiry.clear()
        self._touches_since_purge = 0
        self.purged_blocks = 0
