"""The LRU-K page replacement algorithm (paper Section 2, Figure 2.1).

LRU-K drops the resident page whose *Backward K-distance* — the distance
back to its K-th most recent uncorrelated reference — is largest
(Definition 2.2), thereby estimating each page's reference interarrival
time from its last K references instead of only its last one (classical
LRU = LRU-1).

This implementation is a faithful rendering of the Figure 2.1 pseudo-code
with the two Section 2.1 refinements:

- **Correlated Reference Period (CRP)** — references within ``crp``
  logical time units of LAST(p) are treated as correlated: they advance
  LAST(p) but do not create history entries, and when the burst ends its
  duration is subtracted out of the interarrival estimate (the Figure 2.1
  ``correlation_period_of_referenced_page`` shift). Pages inside their CRP
  are also *ineligible* for replacement ("the system should not drop a
  page immediately after its first reference").
- **Retained Information Period (RIP)** — HIST blocks survive eviction
  for ``retained_information_period`` time units past LAST(p) and are then
  purged by the demon in :class:`~repro.core.history.HistoryStore`.

Victim selection
----------------
``selection="scan"`` is the literal Figure 2.1 loop: O(B) over resident
pages, choosing the minimum HIST(q, K) among eligible pages.

``selection="heap"`` (default) is the production path the paper alludes to
("finding the page with the maximum Backward K-distance would actually be
based on a search tree"): a lazy min-heap keyed by
``(HIST(q,K), HIST(q,1), q)``. HIST(q,K) only changes when a page receives
an uncorrelated reference, so entries stay valid between accesses and
victim choice is O(log B) amortized. The two selectors are decision-
equivalent (property-tested) because they share the same total order:

- primary key HIST(q, K): 0 (= infinite backward distance) sorts first,
  exactly Definition 2.2's "maximum Backward K-distance";
- secondary key HIST(q, 1): among the infinite-distance pages this is the
  paper's suggested "classical LRU ... as a subsidiary policy", applied to
  uncorrelated reference times.

When *no* resident page is eligible (every page is inside its CRP — only
possible when the buffer is small relative to the burst working set), the
algorithm must still free a frame; we fall back to evicting the page with
the smallest LAST(q), i.e. the page whose correlated burst has been idle
longest, and count the event in :class:`LRUKStats.forced_evictions`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import ConfigurationError, NoEvictableFrameError
from ..obs.events import EvictionDecisionEvent, PurgeEvent
from ..obs.provenance import (
    CandidateInfo,
    EvictionDecision,
    ProvenanceRecorder,
)
from ..policies.base import NO_EXCLUSIONS, ReplacementPolicy, register_policy_factory
from ..types import PageId
from .history import HistoryBlock, HistoryStore, INFINITE_DISTANCE

#: Lazy-heap compaction slack: the heap is rebuilt from live resident
#: entries once stale entries exceed ~2x the live population plus this
#: constant (which keeps tiny buffers from compacting constantly).
HEAP_COMPACT_SLACK = 64


@dataclass
class LRUKStats:
    """Bookkeeping counters exposed for analysis and ablation benches."""

    uncorrelated_references: int = 0
    correlated_references: int = 0
    admissions: int = 0
    evictions: int = 0
    infinite_distance_evictions: int = 0
    forced_evictions: int = 0
    heap_compactions: int = 0

    @property
    def history_informed_evictions(self) -> int:
        """Evictions of pages that had a full K-history."""
        return self.evictions - self.infinite_distance_evictions


class LRUKPolicy(ReplacementPolicy):
    """LRU-K replacement (Definition 2.2 + Figure 2.1).

    Parameters
    ----------
    k:
        History depth. ``k=1`` is classical LRU; the paper advocates
        ``k=2`` "as a generally efficient policy".
    correlated_reference_period:
        CRP in logical references; 0 disables time-out correlation (every
        reference is uncorrelated), matching the Section 3 analysis and
        the synthetic experiments.
    retained_information_period:
        RIP in logical references; None retains history forever.
    selection:
        ``"heap"`` (default, O(log B)) or ``"scan"`` (literal Figure 2.1).
    max_history_blocks:
        Optional hard bound on retained HIST blocks (the paper's Section 5
        "open issue" of history memory); oldest-LAST blocks of non-resident
        pages are dropped beyond the bound.
    """

    name = "lru-k"

    def __init__(self, k: int = 2,
                 correlated_reference_period: int = 0,
                 retained_information_period: Optional[int] = None,
                 selection: str = "heap",
                 max_history_blocks: Optional[int] = None,
                 distinguish_processes: bool = False) -> None:
        super().__init__()
        if k <= 0:
            raise ConfigurationError("K must be a positive integer")
        if correlated_reference_period < 0:
            raise ConfigurationError("CRP cannot be negative")
        if selection not in ("heap", "scan"):
            raise ConfigurationError("selection must be 'heap' or 'scan'")
        if max_history_blocks is not None and max_history_blocks <= 0:
            raise ConfigurationError("max_history_blocks must be positive")
        self.k = k
        self.crp = correlated_reference_period
        self.selection = selection
        self.max_history_blocks = max_history_blocks
        # Section 2.1.1: "It is clearly possible to distinguish processes
        # making page references; for simplicity, however, we will assume
        # ... references are not distinguished by process." The paper's
        # simple mode is the default; with distinguish_processes=True a
        # reference within the CRP only counts as correlated when it comes
        # from the same process as the page's previous reference
        # (inter-process re-references — pair type (4) — stay independent).
        self.distinguish_processes = distinguish_processes
        # observe() only stashes the issuing process id; on metadata-free
        # streams there is nothing to stash, so drivers' fast paths may
        # skip the hook unless process-aware correlation is on.
        self.observe_optional = not distinguish_processes
        self._last_process: Dict[PageId, Optional[int]] = {}
        self._current_process: Optional[int] = None
        self.history = HistoryStore(
            k, retained_information_period=retained_information_period)
        self.stats = LRUKStats()
        #: Eviction decision provenance, opt-in: the un-instrumented
        #: victim-selection path pays exactly this one None-check (see
        #: :mod:`repro.obs.provenance`).
        self.provenance: Optional[ProvenanceRecorder] = None
        #: page -> residency began from a retained HIST block (Section
        #: 2.1.2); maintained only while provenance is attached.
        self._retained_admissions: Dict[PageId, bool] = {}
        # Lazy victim heap: (HIST(q,K), HIST(q,1), page).
        self._heap: List[Tuple[int, int, PageId]] = []
        # Bounded-memory mode: LRU order of history blocks (by LAST).
        self._block_lru: List[Tuple[int, PageId]] = []

    # -- reference processing (Figure 2.1) -------------------------------------

    def observe(self, reference, now: int) -> None:
        """Stash the issuing process for process-aware correlation."""
        self._current_process = reference.process_id

    def _is_correlated(self, page: PageId, block: HistoryBlock,
                       now: int) -> bool:
        """Time-Out Correlation test, optionally process-aware."""
        if now - block.last > self.crp:
            return False
        if not self.distinguish_processes:
            return True
        previous = self._last_process.get(page)
        return (previous is not None
                and previous == self._current_process)

    def on_hit(self, page: PageId, now: int) -> None:
        """The "p is already in the buffer" branch of Figure 2.1."""
        super().on_hit(page, now)
        block = self.history.get(page)
        if block is None:
            # Cannot happen through the public protocol (resident pages
            # always have blocks), but recover defensively.
            block, _ = self.history.get_or_create(page)
            block.record_uncorrelated(now)
            self._push(page, block)
        elif not self._is_correlated(page, block, now):
            # "a new, uncorrelated reference"
            block.record_uncorrelated(now)
            self.stats.uncorrelated_references += 1
            self._push(page, block)
        else:
            # "a correlated reference"
            block.record_correlated(now)
            self.stats.correlated_references += 1
        if self.distinguish_processes:
            self._last_process[page] = self._current_process
        self._after_touch(page, block)

    def on_admit(self, page: PageId, now: int) -> None:
        """The fetch path of Figure 2.1 (after the victim was dropped)."""
        super().on_admit(page, now)
        block, created = self.history.get_or_create(page)
        if created:
            # "initialize history control block": HIST(p,i)=0 for i>=2.
            block.hist[0] = now
            block.last = now
        else:
            # "else for i := 2 to K do HIST(p,i) := HIST(p,i-1)"
            block.record_readmission(now)
        self.stats.admissions += 1
        self.stats.uncorrelated_references += 1
        if self.provenance is not None:
            self._retained_admissions[page] = not created
        if self.distinguish_processes:
            self._last_process[page] = self._current_process
        self._push(page, block)
        self._after_touch(page, block)

    def on_evict(self, page: PageId, now: int) -> None:
        super().on_evict(page, now)
        self.stats.evictions += 1
        block = self.history.get(page)
        if block is not None and block.kth_time() == 0:
            self.stats.infinite_distance_evictions += 1
        # The HIST block deliberately survives: Retained Information.

    # -- victim selection -------------------------------------------------------

    def choose_victim(self, now: int,
                      incoming: Optional[PageId] = None,
                      exclude: FrozenSet[PageId] = NO_EXCLUSIONS) -> PageId:
        self._check_candidates(exclude)
        if self.provenance is not None:
            return self._choose_with_provenance(now, incoming, exclude)
        if self.selection == "scan":
            victim = self._choose_by_scan(now, exclude)
        else:
            victim = self._choose_by_heap(now, exclude)
        if victim is None:
            victim = self._forced_choice(now, exclude)
        return victim

    def _choose_by_scan(self, now: int,
                        exclude: FrozenSet[PageId]) -> Optional[PageId]:
        """The literal Figure 2.1 selection loop (reference implementation)."""
        victim: Optional[PageId] = None
        best: Tuple[float, float] = (INFINITE_DISTANCE, INFINITE_DISTANCE)
        for q in self._resident:
            if q in exclude:
                continue
            block = self.history.get(q)
            if block is None:
                continue
            if now - block.last <= self.crp:
                continue  # inside its Correlated Reference Period
            key = (float(block.kth_time()), float(block.hist[0]))
            if key < best or victim is None:
                best = key
                victim = q
        return victim

    def _choose_by_heap(self, now: int,
                        exclude: FrozenSet[PageId]) -> Optional[PageId]:
        """Search-tree selection: lazy min-heap over (HIST(q,K), HIST(q,1))."""
        set_aside: List[Tuple[int, int, PageId]] = []
        victim: Optional[PageId] = None
        while self._heap:
            kth, first, page = heapq.heappop(self._heap)
            block = self.history.get(page)
            stale = (page not in self._resident
                     or block is None
                     or block.kth_time() != kth
                     or block.hist[0] != first)
            if stale:
                continue
            set_aside.append((kth, first, page))
            if page in exclude:
                continue
            if now - block.last <= self.crp:
                continue  # protected by the Correlated Reference Period
            victim = page
            break
        for entry in set_aside:
            heapq.heappush(self._heap, entry)
        return victim

    def _choose_with_provenance(self, now: int,
                                incoming: Optional[PageId],
                                exclude: FrozenSet[PageId]) -> PageId:
        """Enumerating victim selection with a full decision record.

        Decision-identical to both production selectors: all three share
        the (HIST(q,K), HIST(q,1)) total order, and uncorrelated
        reference times are unique so ties cannot occur. Only runs while
        a :class:`~repro.obs.provenance.ProvenanceRecorder` is attached.
        """
        recorder = self.provenance
        assert recorder is not None
        eligible: List[Tuple[int, int, PageId]] = []
        crp_protected: List[PageId] = []
        excluded_total = 0
        for q in self._resident:
            if q in exclude:
                excluded_total += 1
                continue
            block = self.history.get(q)
            if block is None:
                continue
            if now - block.last <= self.crp:
                crp_protected.append(q)
                continue
            eligible.append((block.kth_time(), block.hist[0], q))
        forced = not eligible
        if forced:
            victim = self._forced_choice(now, exclude)
        else:
            victim = min(eligible)[2]

        eligible.sort()
        candidates: List[CandidateInfo] = []
        for kth, first, page in eligible[:recorder.top_candidates]:
            candidates.append(CandidateInfo(
                page=page, kth_time=kth, last_uncorrelated=first,
                backward_k_distance=(None if kth == 0
                                     else float(now - kth)),
                chosen=page == victim))
        if not any(info.chosen for info in candidates):
            block = self.history.get(victim)
            kth = block.kth_time() if block is not None else 0
            first = block.hist[0] if block is not None else 0
            candidates.append(CandidateInfo(
                page=victim, kth_time=kth, last_uncorrelated=first,
                backward_k_distance=(None if kth == 0
                                     else float(now - kth)),
                crp_protected=victim in crp_protected, chosen=True))

        victim_block = self.history.get(victim)
        decision = EvictionDecision(
            time=now,
            victim=victim,
            victim_distance=(None if victim_block is None
                             or victim_block.kth_time() == 0
                             else float(now - victim_block.kth_time())),
            victim_hist=(list(victim_block.hist) if victim_block is not None
                         else [0] * self.k),
            victim_last=victim_block.last if victim_block is not None else 0,
            candidates=candidates,
            considered=len(eligible),
            crp_excluded=sorted(crp_protected)[:recorder.top_candidates],
            crp_excluded_total=len(crp_protected),
            excluded_total=excluded_total,
            forced=forced,
            retained_history=self._retained_admissions.get(victim, False),
            incoming=incoming,
        )
        recorder.record(decision, resident=self._resident, exclude=exclude)
        obs = self.observability
        if obs is not None and obs.has_sinks:
            obs.emit(EvictionDecisionEvent.from_decision(decision))
        return victim

    def _forced_choice(self, now: int, exclude: FrozenSet[PageId]) -> PageId:
        """Every candidate is CRP-protected: evict the stalest burst."""
        victim: Optional[PageId] = None
        best_last = None
        for q in self._resident:
            if q in exclude:
                continue
            block = self.history.get(q)
            last = block.last if block is not None else 0
            if best_last is None or last < best_last:
                best_last = last
                victim = q
        if victim is None:
            raise NoEvictableFrameError("all resident pages are excluded")
        self.stats.forced_evictions += 1
        return victim

    # -- introspection ------------------------------------------------------------

    def backward_k_distance(self, page: PageId, now: int) -> float:
        """b_t(page, K) per Definition 2.1 (infinity when unknown)."""
        block = self.history.get(page)
        if block is None:
            return INFINITE_DISTANCE
        return block.backward_distance(now)

    def history_block(self, page: PageId) -> Optional[HistoryBlock]:
        """The page's HIST/LAST block, if retained."""
        return self.history.get(page)

    @property
    def retained_blocks(self) -> int:
        """Number of history control blocks currently in memory."""
        return len(self.history)

    def export_metrics(self, registry, prefix: str = "lruk") -> None:
        """Publish :class:`LRUKStats` and history occupancy as gauges.

        The gauges are callable-backed so they keep reading the *live*
        counters even across :meth:`reset` (which replaces the stats
        object). Registered names: every ``LRUKStats`` field plus
        ``history_informed_evictions``, ``retained_history_blocks`` and
        ``purged_history_blocks``, all under ``{prefix}.``.
        """
        for spec in fields(LRUKStats):
            registry.gauge(f"{prefix}.{spec.name}",
                           lambda name=spec.name: getattr(self.stats, name))
        registry.gauge(f"{prefix}.history_informed_evictions",
                       lambda: self.stats.history_informed_evictions)
        registry.gauge(f"{prefix}.retained_history_blocks",
                       lambda: len(self.history))
        registry.gauge(f"{prefix}.purged_history_blocks",
                       lambda: self.history.purged_blocks)

    def make_kernel(self, capacity: int):
        """Fused whole-trace kernel (see :mod:`repro.core.kernel`).

        Offered only for configurations the fused loop replicates
        bit-identically: heap selection, no process-aware correlation, no
        bounded history memory, no provenance recorder, and a fresh
        (no-residents) policy. Everything else returns None and is driven
        through the object path.
        """
        from .kernel import make_lruk_kernel
        return make_lruk_kernel(self, capacity)

    def make_batch_kernel(self, capacity: int):
        """Run-skipping batch kernel (see :mod:`repro.core.kernel`).

        Offered for the scalar-kernel configurations minus a configured
        Retained Information purge demon (inherently per-touch), and —
        as a dispatch heuristic — only with a positive CRP: with
        ``crp=0`` every hit is uncorrelated and the run decomposition
        degenerates to the scalar event loop with extra numpy overhead.
        The kernel function itself handles ``crp=0`` correctly (the
        equivalence tests exercise it via ``make_lruk_batch_kernel``
        directly).
        """
        if not self.crp:
            return None
        from .kernel import make_lruk_batch_kernel
        return make_lruk_batch_kernel(self, capacity)

    # -- internals ------------------------------------------------------------------

    def _push(self, page: PageId, block: HistoryBlock) -> None:
        heap = self._heap
        heapq.heappush(heap, (block.kth_time(), block.hist[0], page))
        # Every uncorrelated re-reference supersedes a page's previous
        # heap entry, so stale entries accumulate one per reference and
        # the heap would grow without bound on long runs. Rebuild from
        # the live resident set once stale entries dominate.
        if len(heap) > 2 * len(self._resident) + HEAP_COMPACT_SLACK:
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Rebuild the lazy victim heap with one fresh entry per resident page."""
        get = self.history.get
        heap: List[Tuple[int, int, PageId]] = []
        for page in self._resident:
            block = get(page)
            if block is not None:
                heap.append((block.kth_time(), block.hist[0], page))
        heapq.heapify(heap)
        self._heap = heap
        self.stats.heap_compactions += 1

    def _after_touch(self, page: PageId, block: HistoryBlock) -> None:
        purged = self.history.touch(page, self._resident.__contains__)
        if purged:
            obs = self.observability
            if obs is not None and obs.has_sinks:
                obs.emit(PurgeEvent(time=block.last, dropped=purged,
                                    retained=len(self.history)))
        if self.max_history_blocks is not None:
            heapq.heappush(self._block_lru, (block.last, page))
            self._enforce_block_bound()

    def _enforce_block_bound(self) -> None:
        bound = self.max_history_blocks
        assert bound is not None
        set_aside: List[Tuple[int, PageId]] = []
        while len(self.history) > bound and self._block_lru:
            last, page = heapq.heappop(self._block_lru)
            block = self.history.get(page)
            if block is None or block.last != last:
                continue  # stale
            if page in self._resident:
                set_aside.append((last, page))
                continue
            self.history.drop(page)
        for entry in set_aside:
            heapq.heappush(self._block_lru, entry)

    def reset(self) -> None:
        super().reset()
        self.history.clear()
        self.stats = LRUKStats()
        self._heap.clear()
        self._block_lru.clear()
        self._last_process.clear()
        self._current_process = None
        self._retained_admissions.clear()


def _make_lruk(**kwargs) -> LRUKPolicy:
    return LRUKPolicy(**kwargs)


register_policy_factory("lru-k", _make_lruk)
register_policy_factory("lru-2", lambda **kw: LRUKPolicy(k=2, **kw))
register_policy_factory("lru-3", lambda **kw: LRUKPolicy(k=3, **kw))
