"""The fused LRU-K simulation kernel.

This is the hot path behind every sweep cell the harness runs with the
default policy family: one function that plays an entire compact page-id
trace through the full Figure 2.1 algorithm — CRP-aware hit handling,
history shifts, lazy-heap victim selection, the forced-eviction fallback,
and the Retained Information purge demon — with every data structure
bound to a local and zero per-reference allocation.

Where :class:`~repro.core.lruk.LRUKPolicy` driven through
:meth:`~repro.sim.CacheSimulator.access_page` pays, per reference, a
clock tick, an ``observe``-skippability check, two or three policy-hook
dispatches, and two method-chained pushes (``LRUKPolicy._push`` +
``HistoryStore.touch``), the kernel pays one dict hit plus at most one
``heappush``. The K=2 history shifts are specialized to branchless
two-slot updates (see :meth:`~repro.core.history.HistoryBlock.
record_uncorrelated`); general K falls back to the block methods but
keeps the fused loop.

The kernel is *decision-identical* to the object path — same hit/miss
sequence, same evictions, same final :class:`~repro.core.lruk.LRUKStats`,
same retained-history population, same heap multiset — which is
property-tested against the object path in ``tests/sim/test_kernels.py``.
Configurations the fused loop does not replicate (the literal Figure 2.1
scan selector, process-aware correlation, bounded history memory, an
attached provenance recorder, or a policy that already holds residents)
yield no kernel, and the driver falls back to the object path.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NoEvictableFrameError
from ..policies.kernel import KernelResult, SimulationKernel
from ..types import PageId
from .history import HistoryBlock

__all__ = ["make_lruk_batch_kernel", "make_lruk_kernel"]


def make_lruk_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Build the fused trace runner for one LRU-K policy instance.

    Returns None whenever the configuration carries a feature the fused
    loop does not replicate — the driver then uses the object path:

    - ``selection="scan"``: the literal Figure 2.1 loop is the reference
      implementation; its heap bookkeeping diverges from the production
      selector's, so the kernel (which fuses the heap selector) would not
      leave bit-identical state behind.
    - ``distinguish_processes``: correlation then depends on per-reference
      process ids, which a bare page-id stream cannot carry.
    - ``max_history_blocks``: bounded history memory maintains a second
      block-LRU heap the kernel does not fuse.
    - an attached :class:`~repro.obs.provenance.ProvenanceRecorder`:
      kernels are observability-free by contract.
    - pre-existing residency: the kernel cannot reconstruct mid-run
      driver state.
    """
    from .lruk import HEAP_COMPACT_SLACK  # local: avoids import cycle

    if (policy.selection != "heap" or policy.distinguish_processes
            or policy.max_history_blocks is not None
            or policy.provenance is not None or policy._resident):
        return None

    k = policy.k
    crp = policy.crp
    store = policy.history
    compact_slack = HEAP_COMPACT_SLACK

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        # -- locals-bound policy state ------------------------------------
        stats = policy.stats
        blocks = store._blocks
        get_block = blocks.get
        expiry = store._expiry
        touches = store._touches_since_purge
        rip = store.retained_information_period
        purge_interval = store.purge_interval
        heap = policy._heap
        resident: Dict[PageId, int] = {}
        k2 = k == 2
        # -- locals-accumulated counters, flushed once at the end ---------
        warmup_hits = warmup_misses = hits = misses = 0
        evictions = infinite = forced = admissions = 0
        uncorrelated = correlated = compactions = purged = 0
        t = 0

        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                block = get_block(page)
                if page in resident:
                    # -- Figure 2.1, "p is already in the buffer" ---------
                    hits += 1
                    if block is None:
                        # Defensive parity with LRUKPolicy.on_hit: resident
                        # pages always have blocks through this entry point,
                        # but recover identically if not.
                        block = HistoryBlock(k)
                        blocks[page] = block
                        block.record_uncorrelated(t)
                        heappush(heap, (block.hist[-1], t, page))
                        if len(heap) > 2 * len(resident) + compact_slack:
                            heap = _compact(resident, get_block)
                            compactions += 1
                    elif t - block.last > crp:
                        # A new, uncorrelated reference.
                        if k2:
                            hist = block.hist
                            hist[1] = hist[0] and block.last
                            hist[0] = t
                            block.last = t
                            key = hist[1]
                        else:
                            block.record_uncorrelated(t)
                            key = block.hist[-1]
                        uncorrelated += 1
                        heappush(heap, (key, t, page))
                        if len(heap) > 2 * len(resident) + compact_slack:
                            heap = _compact(resident, get_block)
                            compactions += 1
                    else:
                        # A correlated reference: only LAST moves.
                        block.last = t
                        correlated += 1
                else:
                    # -- Figure 2.1, the fetch path -----------------------
                    misses += 1
                    if len(resident) >= capacity:
                        # Victim selection over the lazy heap.
                        victim = None
                        if crp:
                            set_aside: Optional[List[Tuple[int, int,
                                                           PageId]]] = None
                            while heap:
                                entry = heappop(heap)
                                kth, first, q = entry
                                b = get_block(q)
                                if (q not in resident or b is None
                                        or b.hist[-1] != kth
                                        or b.hist[0] != first):
                                    continue  # stale entry
                                if set_aside is None:
                                    set_aside = []
                                set_aside.append(entry)
                                if t - b.last <= crp:
                                    continue  # CRP-protected
                                victim = q
                                break
                            if set_aside:
                                for entry in set_aside:
                                    heappush(heap, entry)
                        else:
                            # CRP disabled: nothing is protected, so the
                            # first live entry wins and can stay in place
                            # (the object path pops it and pushes it back;
                            # the heap multiset is identical either way).
                            while heap:
                                kth, first, q = heap[0]
                                b = get_block(q)
                                if (q not in resident or b is None
                                        or b.hist[-1] != kth
                                        or b.hist[0] != first):
                                    heappop(heap)
                                    continue
                                victim = q
                                break
                        if victim is None:
                            # Forced choice: evict the stalest burst.
                            best_last = None
                            for q in resident:
                                b = get_block(q)
                                q_last = b.last if b is not None else 0
                                if best_last is None or q_last < best_last:
                                    best_last = q_last
                                    victim = q
                            if victim is None:
                                raise NoEvictableFrameError(
                                    "no resident pages to evict")
                            forced += 1
                        del resident[victim]
                        evictions += 1
                        b = get_block(victim)
                        if b is not None and b.hist[-1] == 0:
                            infinite += 1
                        # The HIST block survives: Retained Information.
                    # Admission (LRUKPolicy.on_admit).
                    if block is None:
                        # "initialize history control block"
                        block = HistoryBlock(k)
                        blocks[page] = block
                        block.hist[0] = t
                        block.last = t
                        key = block.hist[-1]
                    elif k2:
                        hist = block.hist
                        hist[1] = hist[0]
                        hist[0] = t
                        block.last = t
                        key = hist[1]
                    else:
                        block.record_readmission(t)
                        key = block.hist[-1]
                    admissions += 1
                    uncorrelated += 1
                    resident[page] = t
                    heappush(heap, (key, t, page))
                    if len(heap) > 2 * len(resident) + compact_slack:
                        heap = _compact(resident, get_block)
                        compactions += 1
                # -- HistoryStore.touch: the amortized purge demon --------
                if rip is not None:
                    heappush(expiry, (t, page))
                    touches += 1
                    if touches >= purge_interval:
                        touches = 0
                        postponed = None
                        while expiry and expiry[0][0] + rip < t:
                            entry = heappop(expiry)
                            last, q = entry
                            b = get_block(q)
                            if b is None or b.last != last:
                                continue  # stale: the page was touched again
                            if q in resident:
                                # Resident blocks are always retained.
                                if postponed is None:
                                    postponed = []
                                postponed.append(entry)
                                continue
                            del blocks[q]
                            purged += 1
                        if postponed:
                            for entry in postponed:
                                heappush(expiry, entry)
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0

        # -- flush locals back into the policy's bookkeeping --------------
        policy._resident.update(resident)
        policy._heap = heap
        store._touches_since_purge = touches
        store.purged_blocks += purged
        stats.uncorrelated_references += uncorrelated
        stats.correlated_references += correlated
        stats.admissions += admissions
        stats.evictions += evictions
        stats.infinite_distance_evictions += infinite
        stats.forced_evictions += forced
        stats.heap_compactions += compactions
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, resident, t)

    return kernel


def make_lruk_batch_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Run-skipping batch runner for LRU-K (see ``repro.policies.kernel``).

    Between two misses the resident set is frozen, so a whole window of
    references can be classified with one numpy bitmap gather. For a hit
    run the per-reference work collapses to vector arithmetic:

    - *recency* (``HistoryBlock.last``) lives in a dense int64 array
      during the run; each distinct page's final value is its last
      occurrence time, one scatter per run, with ``block.last`` flushed
      from the array once at the end;
    - *correlation* splits the run vectorially — a stable argsort groups
      occurrences by page, the gap to the previous touch (in-run
      predecessor, or the recency array for the first occurrence) against
      CRP marks each hit correlated or uncorrelated;
    - the rare *uncorrelated* hits are then replayed scalar, in global
      time order, applying exactly the scalar kernel's history shifts,
      heap pushes, and compaction checks, so the heap multiset and
      ``heap_compactions`` stay bit-identical.

    Misses run the scalar kernel's victim/admission logic verbatim, with
    ``block.last`` reads replaced by the recency array (the in-run
    authority). Declines everything the scalar kernel declines, plus a
    configured Retained Information purge demon (its amortized expiry
    heap is inherently per-touch) — the driver then falls back to the
    scalar kernel.
    """
    from ..policies import kernel as _policy_kernels
    from ..policies.kernel import (_MAX_SCAN, _MIN_SCAN, _batch_guard,
                                   batch_trace_view)
    from ..workloads.vectorized import numpy_or_none
    from .lruk import HEAP_COMPACT_SLACK

    if (policy.selection != "heap" or policy.distinguish_processes
            or policy.max_history_blocks is not None
            or policy.provenance is not None or policy._resident
            or policy.history.retained_information_period is not None):
        return None
    if numpy_or_none() is None:
        return None

    k = policy.k
    crp = policy.crp
    store = policy.history
    compact_slack = HEAP_COMPACT_SLACK

    def kernel(pages: Sequence[PageId],
               warmup: int) -> Optional[KernelResult]:
        if warmup < 0:
            return None  # scalar slicing semantics; not worth replicating
        view = batch_trace_view(pages)
        if view is None:
            return None
        np, trace = view
        universe = _batch_guard(np, trace, capacity)
        if universe is None:
            return None
        n = len(trace)
        probe = _policy_kernels.BATCH_PROBE_REFS
        if probe and n > probe and crp:
            # Estimate the uncorrelated-hit fraction on the prefix: each
            # one replays scalar bookkeeping inside the batch loop, so a
            # trace dominated by them batches at a loss.
            head_seg = trace[:probe]
            order = np.argsort(head_seg, kind="stable")
            times = order.astype(np.int64, copy=False)
            sp = head_seg[order]
            gaps = np.empty(probe, dtype=np.int64)
            gaps[0] = crp + 1
            np.subtract(times[1:], times[:-1], out=gaps[1:])
            gaps[1:][sp[1:] != sp[:-1]] = crp + 1  # first touches
            fraction = float(np.count_nonzero(gaps > crp)) / probe
            if fraction > _policy_kernels.BATCH_MAX_UNCORRELATED_FRACTION:
                return None

        stats = policy.stats
        blocks = store._blocks
        get_block = blocks.get
        heap = policy._heap
        resident: Dict[PageId, int] = {}
        resident_map = np.zeros(universe, dtype=bool)
        # The in-run authority for ``block.last``; seeded from retained
        # history, flushed back once at the end. Blocks for pages outside
        # this trace's universe are untouchable by the run and keep
        # their own ``last``.
        last_arr = np.zeros(universe, dtype=np.int64)
        for pg, blk in blocks.items():
            if 0 <= pg < universe:
                last_arr[pg] = blk.last
        k2 = k == 2
        warmup_hits = warmup_misses = hits = misses = 0
        evictions = infinite = forced = admissions = 0
        uncorrelated = correlated = compactions = 0

        def record_uncorrelated_hit(page: PageId, now: int,
                                    prev_last: int) -> None:
            """The scalar kernel's uncorrelated-hit path, history+heap."""
            nonlocal heap, compactions
            block = get_block(page)
            if block is None:
                # Unreachable from a fresh policy (every resident page
                # was admitted by this kernel); mirrors the scalar
                # recovery branch anyway.
                block = HistoryBlock(k)
                blocks[page] = block
                block.record_uncorrelated(now)
                key = block.hist[-1]
            elif k2:
                hist = block.hist
                hist[1] = hist[0] and prev_last
                hist[0] = now
                key = hist[1]
            else:
                # record_uncorrelated derives the correlation period
                # from ``self.last``, which the batch loop defers to
                # last_arr — restore the authoritative value first.
                block.last = prev_last
                block.record_uncorrelated(now)
                key = block.hist[-1]
            heappush(heap, (key, now, page))
            if len(heap) > 2 * len(resident) + compact_slack:
                heap = _compact(resident, get_block)
                compactions += 1

        def apply_run(s: int, e: int) -> None:
            """Book a pure hit run ``trace[s:e]`` (times ``s+1 .. e``)."""
            nonlocal heap, hits, uncorrelated, correlated, compactions
            m = e - s
            hits += m
            seg = trace[s:e]
            if m < 32:
                now = s
                for page in seg.tolist():
                    now += 1
                    prev_last = int(last_arr[page])
                    last_arr[page] = now
                    if now - prev_last > crp:
                        uncorrelated += 1
                        block = get_block(page)
                        if k2 and block is not None:
                            hist = block.hist
                            hist[1] = hist[0] and prev_last
                            hist[0] = now
                            heappush(heap, (hist[1], now, page))
                            if len(heap) > (2 * len(resident)
                                            + compact_slack):
                                heap = _compact(resident, get_block)
                                compactions += 1
                        else:
                            record_uncorrelated_hit(page, now, prev_last)
                    else:
                        correlated += 1
                return
            order = np.argsort(seg, kind="stable")
            sp = seg[order]
            times = order.astype(np.int64, copy=False) + (s + 1)
            head = np.empty(m, dtype=bool)
            head[0] = True
            np.not_equal(sp[1:], sp[:-1], out=head[1:])
            prev = np.empty(m, dtype=np.int64)
            prev[1:] = times[:-1]
            prev[head] = last_arr[sp[head]]
            uncorr = (times - prev) > crp
            ucount = int(uncorr.sum())
            correlated += m - ucount
            uncorrelated += ucount
            head_idx = np.nonzero(head)[0]
            tail_idx = np.empty_like(head_idx)
            tail_idx[:-1] = head_idx[1:] - 1
            tail_idx[-1] = m - 1
            last_arr[sp[head_idx]] = times[tail_idx]
            if not ucount:
                return
            sel = np.nonzero(uncorr)[0]
            # Replay history/heap effects in global time order so heap
            # growth (and therefore compaction points) matches scalar.
            sel = sel[np.argsort(times[sel], kind="stable")]
            threshold = 2 * len(resident) + compact_slack
            for now, page, prev_last in zip(times[sel].tolist(),
                                            sp[sel].tolist(),
                                            prev[sel].tolist()):
                block = get_block(page)
                if k2 and block is not None:
                    # The closure's k=2 branch inlined: this loop runs
                    # once per uncorrelated hit and dominates the batch
                    # path on burst-heavy traces.
                    hist = block.hist
                    hist[1] = hist[0] and prev_last
                    hist[0] = now
                    heappush(heap, (hist[1], now, page))
                    if len(heap) > threshold:
                        heap = _compact(resident, get_block)
                        compactions += 1
                else:
                    record_uncorrelated_hit(page, now, prev_last)

        scan = _MIN_SCAN
        boundary = min(warmup, n)
        for index, (lo, hi) in enumerate(((0, boundary), (boundary, n))):
            pos = lo
            while pos < hi:
                end = min(hi, pos + scan)
                window = trace[pos:end]
                member = resident_map[window]
                first_miss = int(member.argmin())
                if member[first_miss]:
                    first_miss = end - pos  # whole window resident
                if first_miss:
                    apply_run(pos, pos + first_miss)
                if first_miss == end - pos:
                    pos = end
                    if scan < _MAX_SCAN:
                        scan *= 2
                    continue
                if first_miss < scan // 4 and scan > _MIN_SCAN:
                    scan //= 2
                # -- the scalar kernel's fetch path, verbatim, with
                #    block.last reads replaced by last_arr ---------------
                j = pos + first_miss
                t = j + 1
                page = int(trace[j])
                misses += 1
                block = get_block(page)
                if len(resident) >= capacity:
                    victim = None
                    if crp:
                        set_aside: Optional[List[Tuple[int, int,
                                                       PageId]]] = None
                        while heap:
                            entry = heappop(heap)
                            kth, first, q = entry
                            b = get_block(q)
                            if (q not in resident or b is None
                                    or b.hist[-1] != kth
                                    or b.hist[0] != first):
                                continue  # stale entry
                            if set_aside is None:
                                set_aside = []
                            set_aside.append(entry)
                            if t - int(last_arr[q]) <= crp:
                                continue  # CRP-protected
                            victim = q
                            break
                        if set_aside:
                            for entry in set_aside:
                                heappush(heap, entry)
                    else:
                        while heap:
                            kth, first, q = heap[0]
                            b = get_block(q)
                            if (q not in resident or b is None
                                    or b.hist[-1] != kth
                                    or b.hist[0] != first):
                                heappop(heap)
                                continue
                            victim = q
                            break
                    if victim is None:
                        best_last = None
                        for q in resident:
                            b = get_block(q)
                            q_last = int(last_arr[q]) if b is not None else 0
                            if best_last is None or q_last < best_last:
                                best_last = q_last
                                victim = q
                        if victim is None:
                            raise NoEvictableFrameError(
                                "no resident pages to evict")
                        forced += 1
                    del resident[victim]
                    resident_map[victim] = False
                    evictions += 1
                    b = get_block(victim)
                    if b is not None and b.hist[-1] == 0:
                        infinite += 1
                if block is None:
                    block = HistoryBlock(k)
                    blocks[page] = block
                    block.hist[0] = t
                    key = block.hist[-1]
                elif k2:
                    hist = block.hist
                    hist[1] = hist[0]
                    hist[0] = t
                    key = hist[1]
                else:
                    block.record_readmission(t)
                    key = block.hist[-1]
                last_arr[page] = t
                admissions += 1
                uncorrelated += 1
                resident[page] = t
                resident_map[page] = True
                heappush(heap, (key, t, page))
                if len(heap) > 2 * len(resident) + compact_slack:
                    heap = _compact(resident, get_block)
                    compactions += 1
                pos = j + 1
            if index == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0

        # -- flush: recency array back into the blocks, locals into the
        #    policy — exactly the scalar kernel's final state ------------
        for pg, blk in blocks.items():
            if 0 <= pg < universe:
                blk.last = int(last_arr[pg])
        policy._resident.update(resident)
        policy._heap = heap
        stats.uncorrelated_references += uncorrelated
        stats.correlated_references += correlated
        stats.admissions += admissions
        stats.evictions += evictions
        stats.infinite_distance_evictions += infinite
        stats.forced_evictions += forced
        stats.heap_compactions += compactions
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, resident, n)

    return kernel


def _compact(resident: Dict[PageId, int], get_block) -> list:
    """Rebuild the lazy victim heap from the live resident population.

    Mirrors ``LRUKPolicy._compact_heap``; iteration order differs from
    the policy's set but heapify over the same entry multiset yields the
    same pop sequence, so decisions are unaffected.
    """
    heap = []
    append = heap.append
    for page in resident:
        block = get_block(page)
        if block is not None:
            append((block.hist[-1], block.hist[0], page))
    heapify(heap)
    return heap
