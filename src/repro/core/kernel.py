"""The fused LRU-K simulation kernel.

This is the hot path behind every sweep cell the harness runs with the
default policy family: one function that plays an entire compact page-id
trace through the full Figure 2.1 algorithm — CRP-aware hit handling,
history shifts, lazy-heap victim selection, the forced-eviction fallback,
and the Retained Information purge demon — with every data structure
bound to a local and zero per-reference allocation.

Where :class:`~repro.core.lruk.LRUKPolicy` driven through
:meth:`~repro.sim.CacheSimulator.access_page` pays, per reference, a
clock tick, an ``observe``-skippability check, two or three policy-hook
dispatches, and two method-chained pushes (``LRUKPolicy._push`` +
``HistoryStore.touch``), the kernel pays one dict hit plus at most one
``heappush``. The K=2 history shifts are specialized to branchless
two-slot updates (see :meth:`~repro.core.history.HistoryBlock.
record_uncorrelated`); general K falls back to the block methods but
keeps the fused loop.

The kernel is *decision-identical* to the object path — same hit/miss
sequence, same evictions, same final :class:`~repro.core.lruk.LRUKStats`,
same retained-history population, same heap multiset — which is
property-tested against the object path in ``tests/sim/test_kernels.py``.
Configurations the fused loop does not replicate (the literal Figure 2.1
scan selector, process-aware correlation, bounded history memory, an
attached provenance recorder, or a policy that already holds residents)
yield no kernel, and the driver falls back to the object path.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NoEvictableFrameError
from ..policies.kernel import KernelResult, SimulationKernel
from ..types import PageId
from .history import HistoryBlock

__all__ = ["make_lruk_kernel"]


def make_lruk_kernel(policy, capacity: int) -> Optional[SimulationKernel]:
    """Build the fused trace runner for one LRU-K policy instance.

    Returns None whenever the configuration carries a feature the fused
    loop does not replicate — the driver then uses the object path:

    - ``selection="scan"``: the literal Figure 2.1 loop is the reference
      implementation; its heap bookkeeping diverges from the production
      selector's, so the kernel (which fuses the heap selector) would not
      leave bit-identical state behind.
    - ``distinguish_processes``: correlation then depends on per-reference
      process ids, which a bare page-id stream cannot carry.
    - ``max_history_blocks``: bounded history memory maintains a second
      block-LRU heap the kernel does not fuse.
    - an attached :class:`~repro.obs.provenance.ProvenanceRecorder`:
      kernels are observability-free by contract.
    - pre-existing residency: the kernel cannot reconstruct mid-run
      driver state.
    """
    from .lruk import HEAP_COMPACT_SLACK  # local: avoids import cycle

    if (policy.selection != "heap" or policy.distinguish_processes
            or policy.max_history_blocks is not None
            or policy.provenance is not None or policy._resident):
        return None

    k = policy.k
    crp = policy.crp
    store = policy.history
    compact_slack = HEAP_COMPACT_SLACK

    def kernel(pages: Sequence[PageId], warmup: int) -> KernelResult:
        # -- locals-bound policy state ------------------------------------
        stats = policy.stats
        blocks = store._blocks
        get_block = blocks.get
        expiry = store._expiry
        touches = store._touches_since_purge
        rip = store.retained_information_period
        purge_interval = store.purge_interval
        heap = policy._heap
        resident: Dict[PageId, int] = {}
        k2 = k == 2
        # -- locals-accumulated counters, flushed once at the end ---------
        warmup_hits = warmup_misses = hits = misses = 0
        evictions = infinite = forced = admissions = 0
        uncorrelated = correlated = compactions = purged = 0
        t = 0

        for boundary, segment in enumerate((pages[:warmup], pages[warmup:])):
            for page in segment:
                t += 1
                block = get_block(page)
                if page in resident:
                    # -- Figure 2.1, "p is already in the buffer" ---------
                    hits += 1
                    if block is None:
                        # Defensive parity with LRUKPolicy.on_hit: resident
                        # pages always have blocks through this entry point,
                        # but recover identically if not.
                        block = HistoryBlock(k)
                        blocks[page] = block
                        block.record_uncorrelated(t)
                        heappush(heap, (block.hist[-1], t, page))
                        if len(heap) > 2 * len(resident) + compact_slack:
                            heap = _compact(resident, get_block)
                            compactions += 1
                    elif t - block.last > crp:
                        # A new, uncorrelated reference.
                        if k2:
                            hist = block.hist
                            hist[1] = hist[0] and block.last
                            hist[0] = t
                            block.last = t
                            key = hist[1]
                        else:
                            block.record_uncorrelated(t)
                            key = block.hist[-1]
                        uncorrelated += 1
                        heappush(heap, (key, t, page))
                        if len(heap) > 2 * len(resident) + compact_slack:
                            heap = _compact(resident, get_block)
                            compactions += 1
                    else:
                        # A correlated reference: only LAST moves.
                        block.last = t
                        correlated += 1
                else:
                    # -- Figure 2.1, the fetch path -----------------------
                    misses += 1
                    if len(resident) >= capacity:
                        # Victim selection over the lazy heap.
                        victim = None
                        if crp:
                            set_aside: Optional[List[Tuple[int, int,
                                                           PageId]]] = None
                            while heap:
                                entry = heappop(heap)
                                kth, first, q = entry
                                b = get_block(q)
                                if (q not in resident or b is None
                                        or b.hist[-1] != kth
                                        or b.hist[0] != first):
                                    continue  # stale entry
                                if set_aside is None:
                                    set_aside = []
                                set_aside.append(entry)
                                if t - b.last <= crp:
                                    continue  # CRP-protected
                                victim = q
                                break
                            if set_aside:
                                for entry in set_aside:
                                    heappush(heap, entry)
                        else:
                            # CRP disabled: nothing is protected, so the
                            # first live entry wins and can stay in place
                            # (the object path pops it and pushes it back;
                            # the heap multiset is identical either way).
                            while heap:
                                kth, first, q = heap[0]
                                b = get_block(q)
                                if (q not in resident or b is None
                                        or b.hist[-1] != kth
                                        or b.hist[0] != first):
                                    heappop(heap)
                                    continue
                                victim = q
                                break
                        if victim is None:
                            # Forced choice: evict the stalest burst.
                            best_last = None
                            for q in resident:
                                b = get_block(q)
                                q_last = b.last if b is not None else 0
                                if best_last is None or q_last < best_last:
                                    best_last = q_last
                                    victim = q
                            if victim is None:
                                raise NoEvictableFrameError(
                                    "no resident pages to evict")
                            forced += 1
                        del resident[victim]
                        evictions += 1
                        b = get_block(victim)
                        if b is not None and b.hist[-1] == 0:
                            infinite += 1
                        # The HIST block survives: Retained Information.
                    # Admission (LRUKPolicy.on_admit).
                    if block is None:
                        # "initialize history control block"
                        block = HistoryBlock(k)
                        blocks[page] = block
                        block.hist[0] = t
                        block.last = t
                        key = block.hist[-1]
                    elif k2:
                        hist = block.hist
                        hist[1] = hist[0]
                        hist[0] = t
                        block.last = t
                        key = hist[1]
                    else:
                        block.record_readmission(t)
                        key = block.hist[-1]
                    admissions += 1
                    uncorrelated += 1
                    resident[page] = t
                    heappush(heap, (key, t, page))
                    if len(heap) > 2 * len(resident) + compact_slack:
                        heap = _compact(resident, get_block)
                        compactions += 1
                # -- HistoryStore.touch: the amortized purge demon --------
                if rip is not None:
                    heappush(expiry, (t, page))
                    touches += 1
                    if touches >= purge_interval:
                        touches = 0
                        postponed = None
                        while expiry and expiry[0][0] + rip < t:
                            entry = heappop(expiry)
                            last, q = entry
                            b = get_block(q)
                            if b is None or b.last != last:
                                continue  # stale: the page was touched again
                            if q in resident:
                                # Resident blocks are always retained.
                                if postponed is None:
                                    postponed = []
                                postponed.append(entry)
                                continue
                            del blocks[q]
                            purged += 1
                        if postponed:
                            for entry in postponed:
                                heappush(expiry, entry)
            if boundary == 0:
                warmup_hits, warmup_misses = hits, misses
                hits = misses = 0

        # -- flush locals back into the policy's bookkeeping --------------
        policy._resident.update(resident)
        policy._heap = heap
        store._touches_since_purge = touches
        store.purged_blocks += purged
        stats.uncorrelated_references += uncorrelated
        stats.correlated_references += correlated
        stats.admissions += admissions
        stats.evictions += evictions
        stats.infinite_distance_evictions += infinite
        stats.forced_evictions += forced
        stats.heap_compactions += compactions
        return KernelResult(warmup_hits, warmup_misses, hits, misses,
                            evictions, resident, t)

    return kernel


def _compact(resident: Dict[PageId, int], get_block) -> list:
    """Rebuild the lazy victim heap from the live resident population.

    Mirrors ``LRUKPolicy._compact_heap``; iteration order differs from
    the policy's set but heapify over the same entry multiset yields the
    same pop sequence, so decisions are unaffected.
    """
    heap = []
    append = heap.append
    for page in resident:
        block = get_block(page)
        if block is not None:
            append((block.hist[-1], block.hist[0], page))
    heapify(heap)
    return heap
