"""The paper's primary contribution: the LRU-K replacement algorithm.

Public surface:

- :class:`~repro.core.lruk.LRUKPolicy` — the LRU-K algorithm of Figure 2.1
  with Correlated Reference Period, Retained Information Period, and
  O(log B) victim selection (``selection="heap"``) or the literal Figure
  2.1 linear scan (``selection="scan"``).
- :class:`~repro.core.history.HistoryStore` / :class:`~repro.core.history.HistoryBlock`
  — the HIST(p)/LAST(p) control blocks with RIP-driven purging.
- :mod:`~repro.core.tuning` — Five Minute Rule helpers for sizing the CRP
  and RIP (Section 2.1.2).
"""

from .history import HistoryBlock, HistoryStore, INFINITE_DISTANCE
from .kernel import make_lruk_kernel
from .lruk import LRUKPolicy, LRUKStats
from .tuning import (
    five_minute_rule_interarrival,
    suggest_retained_information_period,
    suggest_correlated_reference_period,
)

__all__ = [
    "HistoryBlock",
    "HistoryStore",
    "INFINITE_DISTANCE",
    "LRUKPolicy",
    "LRUKStats",
    "make_lruk_kernel",
    "five_minute_rule_interarrival",
    "suggest_retained_information_period",
    "suggest_correlated_reference_period",
]
