"""Five Minute Rule sizing helpers (paper Section 2.1.2, [GRAYPUT]).

The paper sizes its two knobs from Gray & Putzolu's Five Minute Rule:

- "The cost/benefit tradeoff for keeping a 4 Kbyte page p in memory
  buffers is an interarrival time I_p of about 100 seconds."
- "the Retained Information Period should be about twice this period,
  since we are measuring how far back we need to go to see *two*
  references before we drop the page. So a canonical value ... could be
  about 200 seconds."
- A canonical Correlated Reference Period "might be 5 seconds".

These helpers compute those canonical values — in seconds, or converted to
logical references through a :class:`~repro.clock.ReferenceClock` — plus
the economic break-even interarrival time for arbitrary page sizes and
price assumptions, so the rule generalizes beyond its 1987 constants.
"""

from __future__ import annotations

from typing import Optional

from ..clock import ReferenceClock
from ..errors import ConfigurationError

#: The paper's canonical values, in seconds.
CANONICAL_BREAK_EVEN_SECONDS = 100.0
CANONICAL_RETAINED_INFORMATION_SECONDS = 200.0
CANONICAL_CORRELATED_REFERENCE_SECONDS = 5.0


def five_minute_rule_interarrival(
        page_size_bytes: int = 4096,
        disk_cost_per_access_per_second: float = 2000.0 / 15.0,
        memory_cost_per_megabyte: float = 5.0 * 1024.0 / 15.0) -> float:
    """Break-even interarrival time (seconds) for keeping a page resident.

    Gray & Putzolu's tradeoff: a page is worth caching when the disk-arm
    rent saved by its access rate exceeds the memory rent of its frame:

        break_even = disk_cost_per_access_per_sec / memory_cost_per_page

    The defaults reproduce the 1987 numbers (≈ $2,000 per access/second of
    disk arm, ≈ $5/KB... scaled to ≈ 100 s for a 4 KB page); callers supply
    modern prices to move the threshold.
    """
    if page_size_bytes <= 0:
        raise ConfigurationError("page size must be positive")
    if disk_cost_per_access_per_second <= 0 or memory_cost_per_megabyte <= 0:
        raise ConfigurationError("costs must be positive")
    memory_cost_per_page = (memory_cost_per_megabyte
                            * page_size_bytes / (1024.0 * 1024.0))
    return disk_cost_per_access_per_second / memory_cost_per_page


def suggest_retained_information_period(
        break_even_seconds: float = CANONICAL_BREAK_EVEN_SECONDS,
        k: int = 2,
        clock: Optional[ReferenceClock] = None) -> "float | int":
    """RIP suggestion: K times the break-even interarrival time.

    For LRU-2 this is the paper's "about twice this period" (200 s); the
    generalization multiplies by K because the K-th most recent reference
    of a page worth caching lies about K interarrival times back. With a
    ``clock`` the result is converted to logical references.
    """
    if break_even_seconds <= 0:
        raise ConfigurationError("break-even time must be positive")
    if k <= 0:
        raise ConfigurationError("K must be positive")
    seconds = float(k) * break_even_seconds
    if clock is None:
        return seconds
    return clock.seconds_to_references(seconds)


def suggest_correlated_reference_period(
        seconds: float = CANONICAL_CORRELATED_REFERENCE_SECONDS,
        clock: Optional[ReferenceClock] = None) -> "float | int":
    """CRP suggestion: the paper's canonical 5 seconds.

    With a ``clock`` the result is converted to logical references.
    """
    if seconds < 0:
        raise ConfigurationError("CRP cannot be negative")
    if clock is None:
        return seconds
    return clock.seconds_to_references(seconds)
