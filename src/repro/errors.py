"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the package
layout: buffer-manager errors, storage errors, database-engine errors,
and simulation/configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or configured with invalid parameters."""


class PolicyError(ReproError):
    """A replacement policy was driven through an illegal state transition."""


class NoEvictableFrameError(PolicyError):
    """A victim was requested but no resident page may be evicted.

    Raised by the buffer pool when every frame is pinned, or by a policy
    when its candidate set is empty.
    """


class BufferError_(ReproError):
    """Base class for buffer-manager errors.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`BufferError`.
    """


class PageNotResidentError(BufferError_, KeyError):
    """An operation required a page to be resident in the pool but it was not."""


class PagePinnedError(BufferError_):
    """An operation (eviction, shrink) hit a pinned page."""


class InvalidPinError(BufferError_):
    """A page was unpinned more times than it was pinned."""


class StorageError(ReproError):
    """Base class for simulated-disk errors."""


class PageNotAllocatedError(StorageError, KeyError):
    """A read or write addressed a page id that was never allocated."""


class TraceFormatError(StorageError, ValueError):
    """A trace file could not be parsed."""


class TraceCorruptionError(TraceFormatError):
    """A binary trace file is structurally damaged.

    Raised by :mod:`repro.storage.columnar` when a file's magic, version,
    or payload length contradicts its header — a truncated or corrupted
    trace must never be silently read as a shorter one.
    """


class DatabaseError(ReproError):
    """Base class for the miniature database engine."""


class RecordNotFoundError(DatabaseError, KeyError):
    """A key lookup found no matching record."""


class DuplicateKeyError(DatabaseError, ValueError):
    """An insert collided with an existing unique key."""


class PageOverflowError(DatabaseError):
    """A record does not fit on a slotted page."""


class TransactionError(DatabaseError):
    """A transaction was used after commit/abort, or nested illegally."""


class TransactionAborted(DatabaseError):
    """Control-flow exception signalling a (possibly injected) abort."""


class SimulationError(ReproError):
    """The simulation harness was misused (e.g. measuring before warm-up)."""


class OracleError(SimulationError):
    """An oracle policy (Belady, A0) was used without its required knowledge."""
