"""Statistics utilities used throughout the simulator and analysis code."""

from .streaming import StreamingMoments, StreamingMinMax
from .histogram import Histogram, IntervalHistogram
from .confidence import ConfidenceInterval, mean_confidence_interval
from .sampling import SeededRng, derive_seed, spawn_rngs, ReservoirSampler

__all__ = [
    "StreamingMoments",
    "StreamingMinMax",
    "Histogram",
    "IntervalHistogram",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "SeededRng",
    "derive_seed",
    "spawn_rngs",
    "ReservoirSampler",
]
