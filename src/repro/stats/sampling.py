"""Deterministic random-number management and sampling helpers.

Every stochastic component in the library takes an explicit seed or RNG;
nothing touches the global :mod:`random` state. :func:`spawn_rngs` fans a
master seed out into independent per-component generators so that, e.g.,
the two-pool workload and an abort-injection process evolve independently
and reproducibly.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, List, Optional, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")

#: Alias making signatures self-documenting: a seeded stdlib generator.
SeededRng = random.Random

# A large odd multiplier decorrelates child seeds derived from consecutive
# master seeds (SplitMix-style stream separation).
_STREAM_SALT = 0x9E3779B97F4A7C15


def spawn_rngs(seed: int, count: int) -> List[SeededRng]:
    """Derive ``count`` independent generators from one master seed."""
    if count < 0:
        raise ConfigurationError("cannot spawn a negative number of RNGs")
    return [SeededRng((seed * _STREAM_SALT + index) & (2 ** 64 - 1))
            for index in range(count)]


def derive_seed(seed: int, stream: int) -> int:
    """Derive a child seed for a named stream index."""
    return (seed * _STREAM_SALT + stream) & (2 ** 64 - 1)


class ReservoirSampler(Generic[T]):
    """Uniform k-sample over a stream of unknown length (Algorithm R).

    Used by trace analytics to keep a bounded sample of interarrival
    intervals from multi-hundred-thousand-reference traces.
    """

    def __init__(self, capacity: int, rng: Optional[SeededRng] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = rng if rng is not None else SeededRng(0)
        self._seen = 0
        self._sample: List[T] = []

    def add(self, item: T) -> None:
        """Offer one stream element to the reservoir."""
        self._seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._sample[slot] = item

    def extend(self, items: Iterable[T]) -> None:
        """Offer many stream elements."""
        for item in items:
            self.add(item)

    @property
    def seen(self) -> int:
        """Total elements offered so far."""
        return self._seen

    @property
    def sample(self) -> List[T]:
        """A copy of the current sample (size <= capacity)."""
        return list(self._sample)
