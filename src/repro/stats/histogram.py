"""Histograms for interarrival-time and queue-length distributions.

Two flavours:

- :class:`Histogram` — fixed uniform bins over a known range, used for
  bounded quantities such as hit ratios and queue lengths.
- :class:`IntervalHistogram` — geometric (power-of-two) bins over the
  positive integers, used for reference interarrival times, which span many
  orders of magnitude (the whole point of LRU-K is that interarrival times
  differ by factors of hundreds between page pools).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError


class Histogram:
    """Fixed-width binned counts over ``[low, high)``.

    Out-of-range observations are clamped into the first/last bin so that
    totals are preserved (important when the histogram feeds a quantile
    estimate).
    """

    def __init__(self, low: float, high: float, bins: int) -> None:
        if not (high > low):
            raise ConfigurationError("histogram range must be non-empty")
        if bins <= 0:
            raise ConfigurationError("histogram needs at least one bin")
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self._counts = [0] * bins
        self._total = 0

    def add(self, value: float) -> None:
        """Count one observation, clamping into range."""
        index = int((value - self.low) / self._width)
        index = max(0, min(self.bins - 1, index))
        self._counts[index] += 1
        self._total += 1

    @property
    def total(self) -> int:
        """Total observations counted."""
        return self._total

    @property
    def counts(self) -> List[int]:
        """A copy of the per-bin counts."""
        return list(self._counts)

    def merge_counts(self, counts: List[int]) -> None:
        """Fold another same-shaped histogram's per-bin counts into this one.

        Bin counts are sums, so the merge is exact and order-independent
        — how forked sweep workers' histogram state reaches the parent.
        """
        if len(counts) != self.bins:
            raise ConfigurationError(
                f"cannot merge {len(counts)} bins into {self.bins}")
        for index, count in enumerate(counts):
            if count < 0:
                raise ConfigurationError("bin counts cannot be negative")
            self._counts[index] += count
            self._total += count

    def bin_edges(self) -> List[float]:
        """The bins+1 edges of the histogram."""
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def quantile(self, q: float) -> float:
        """Approximate the q-quantile by linear interpolation within a bin."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self._total == 0:
            return self.low
        target = q * self._total
        cumulative = 0
        for i, count in enumerate(self._counts):
            if cumulative + count >= target and count > 0:
                within = (target - cumulative) / count
                return self.low + (i + within) * self._width
            cumulative += count
        return self.high


class IntervalHistogram:
    """Geometric histogram over positive integer intervals.

    Bin ``k`` covers ``[2**k, 2**(k+1))``; interval 0 values (correlated
    references collapsed to an instant) get a dedicated bin.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._zero = 0
        self._total = 0

    def add(self, interval: int) -> None:
        """Count one interarrival interval (non-negative)."""
        if interval < 0:
            raise ConfigurationError("intervals cannot be negative")
        self._total += 1
        if interval == 0:
            self._zero += 1
            return
        bucket = interval.bit_length() - 1
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    @property
    def total(self) -> int:
        """Total observations counted."""
        return self._total

    @property
    def zero_count(self) -> int:
        """How many intervals were exactly zero (collapsed correlated refs)."""
        return self._zero

    def buckets(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(low, high, count)`` per non-empty geometric bucket."""
        for bucket in sorted(self._counts):
            low = 1 << bucket
            high = (1 << (bucket + 1)) - 1
            yield low, high, self._counts[bucket]

    def fraction_at_most(self, interval: int) -> float:
        """Fraction of observations with interval <= the given value.

        Conservative: a bucket counts only when its *upper* edge is within
        the bound, so the result is a lower bound on the true CDF. Used by
        the Five Minute Rule census, where under-counting resident-worthy
        pages is the safe direction.
        """
        if self._total == 0:
            return 0.0
        covered = self._zero
        for low, high, count in self.buckets():
            if high <= interval:
                covered += count
        return covered / self._total

    def mean(self) -> float:
        """Approximate mean using bucket geometric midpoints."""
        if self._total == 0:
            return 0.0
        acc = 0.0
        for low, high, count in self.buckets():
            acc += math.sqrt(low * high) * count
        return acc / self._total
