"""Single-pass streaming statistics.

The simulator processes reference strings of hundreds of thousands of
elements; all aggregate statistics (hit ratios per window, interarrival
moments, queue lengths) are computed in one pass with O(1) state using
Welford's online algorithm.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple


class StreamingMoments:
    """Online mean/variance via Welford's algorithm.

    Numerically stable for long streams; supports merging partial results
    from independent repetitions (Chan et al. parallel variant).
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two independent streams into a fresh accumulator."""
        merged = StreamingMoments()
        if self._count == 0:
            merged._count, merged._mean, merged._m2 = (
                other._count, other._mean, other._m2)
            return merged
        if other._count == 0:
            merged._count, merged._mean, merged._m2 = (
                self._count, self._mean, self._m2)
            return merged
        count = self._count + other._count
        delta = other._mean - self._mean
        merged._count = count
        merged._mean = self._mean + delta * other._count / count
        merged._m2 = (self._m2 + other._m2
                      + delta * delta * self._count * other._count / count)
        return merged

    def state(self) -> Tuple[int, float, float]:
        """The raw ``(count, mean, m2)`` accumulator state.

        A picklable snapshot for process-boundary relays; feed it to
        :meth:`restore` on the far side and merge as usual.
        """
        return (self._count, self._mean, self._m2)

    @classmethod
    def restore(cls, state: Tuple[int, float, float]) -> "StreamingMoments":
        """Rebuild an accumulator from a :meth:`state` snapshot."""
        count, mean, m2 = state
        moments = cls()
        moments._count = int(count)
        moments._mean = float(mean)
        moments._m2 = float(m2)
        return moments

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two observations."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean; 0.0 when empty."""
        if self._count == 0:
            return 0.0
        return self.stddev / math.sqrt(self._count)

    def __repr__(self) -> str:
        return (f"StreamingMoments(count={self._count}, mean={self._mean:.6g}, "
                f"stddev={self.stddev:.6g})")


class StreamingMinMax:
    """Track the extremes of a stream in O(1) state."""

    __slots__ = ("_minimum", "_maximum", "_count")

    def __init__(self) -> None:
        self._minimum: Optional[float] = None
        self._maximum: Optional[float] = None
        self._count = 0

    def add(self, value: float) -> None:
        """Fold one observation."""
        self._count += 1
        if self._minimum is None or value < self._minimum:
            self._minimum = value
        if self._maximum is None or value > self._maximum:
            self._maximum = value

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._count

    @property
    def minimum(self) -> Optional[float]:
        """Smallest observation, or None when empty."""
        return self._minimum

    @property
    def maximum(self) -> Optional[float]:
        """Largest observation, or None when empty."""
        return self._maximum

    @property
    def span(self) -> float:
        """max - min; 0.0 when fewer than one observation."""
        if self._minimum is None or self._maximum is None:
            return 0.0
        return self._maximum - self._minimum
