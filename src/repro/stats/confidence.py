"""Confidence intervals for repeated simulation runs.

The experiment runner repeats every (workload, policy, buffer-size) cell
over independent seeds and reports the mean hit ratio with a normal-theory
confidence interval. We use Student-t critical values from a small built-in
table (no scipy dependency in the core library), which is ample for the
3-30 repetitions typical of the harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

# Two-sided Student-t critical values at 95% confidence, by degrees of
# freedom. Beyond the table we fall back to the normal quantile 1.96.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_critical_95(dof: int) -> float:
    """Two-sided 95% Student-t critical value for the given dof."""
    if dof <= 0:
        raise ConfigurationError("degrees of freedom must be positive")
    if dof in _T_95:
        return _T_95[dof]
    for threshold in sorted(_T_95):
        if dof <= threshold:
            return _T_95[threshold]
    return 1.96


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric half-width at 95% confidence."""

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when a value lies inside the interval."""
        return self.low <= value <= self.high

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True when two intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.count})"


def mean_confidence_interval(values: Sequence[float]) -> ConfidenceInterval:
    """95% confidence interval on the mean of independent observations.

    A single observation yields a zero-width interval (the harness treats a
    one-repetition run as a point estimate).
    """
    n = len(values)
    if n == 0:
        raise ConfigurationError("cannot build an interval from no data")
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, count=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stderr = math.sqrt(variance / n)
    return ConfidenceInterval(
        mean=mean,
        half_width=_t_critical_95(n - 1) * stderr,
        count=n,
    )
