"""Buffer-pool statistics."""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields


@dataclass
class BufferStats:
    """Counters the buffer pool maintains across its lifetime."""

    logical_reads: int = 0
    logical_writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    flushes: int = 0

    @property
    def references(self) -> int:
        """Total logical page requests."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served without a physical read."""
        if self.references == 0:
            return 0.0
        return self.hits / self.references

    @property
    def physical_reads(self) -> int:
        """Disk reads implied by misses (one per miss)."""
        return self.misses

    @property
    def physical_writes(self) -> int:
        """Disk writes: dirty evictions plus explicit flushes."""
        return self.dirty_evictions + self.flushes

    def reset(self) -> None:
        """Restore every field to its declared default.

        Iterates the dataclass fields instead of a hand-maintained list,
        so counters added later (e.g. by the observability layer) cannot
        be silently missed at a measurement-window boundary.
        """
        for spec in fields(self):
            if spec.default is not MISSING:
                setattr(self, spec.name, spec.default)
            elif spec.default_factory is not MISSING:
                setattr(self, spec.name, spec.default_factory())
