"""Buffer manager: frames, pins, dirty write-back, pluggable replacement.

This is the heavyweight counterpart of :class:`repro.sim.CacheSimulator`:
real page contents move between a :class:`repro.storage.SimulatedDisk` and
a fixed set of frames, with pin/unpin discipline and write-back of dirty
victims — the substrate the miniature database engine (:mod:`repro.db`)
runs on.
"""

from .frame import Frame
from .stats import BufferStats
from .pool import BufferPool, PinnedPage, TraceRecorder

__all__ = ["Frame", "BufferStats", "BufferPool", "PinnedPage", "TraceRecorder"]
