"""Buffer frames: one memory slot holding one disk page image."""

from __future__ import annotations

from typing import Optional

from ..errors import InvalidPinError
from ..storage.page import DiskPage
from ..types import PageId


class Frame:
    """A buffer slot: page image + pin count + dirty flag.

    Pin discipline: a frame with ``pin_count > 0`` must not be evicted;
    every ``pin()`` must be matched by exactly one ``unpin()``.
    """

    __slots__ = ("frame_id", "page", "pin_count", "dirty", "admitted_at")

    def __init__(self, frame_id: int) -> None:
        self.frame_id = frame_id
        self.page: Optional[DiskPage] = None
        self.pin_count = 0
        self.dirty = False
        self.admitted_at = 0

    @property
    def is_free(self) -> bool:
        """True when no page occupies this frame."""
        return self.page is None

    @property
    def page_id(self) -> Optional[PageId]:
        """The id of the occupying page, or None when free."""
        return None if self.page is None else self.page.page_id

    def load(self, page: DiskPage, now: int) -> None:
        """Install a freshly read page image."""
        self.page = page
        self.pin_count = 0
        self.dirty = False
        self.admitted_at = now

    def pin(self) -> None:
        """Take a pin; the frame becomes ineligible for eviction."""
        self.pin_count += 1

    def unpin(self, dirty: bool = False) -> None:
        """Release a pin, optionally marking the page modified."""
        if self.pin_count <= 0:
            raise InvalidPinError(
                f"frame {self.frame_id} unpinned more than pinned")
        self.pin_count -= 1
        if dirty:
            self.dirty = True

    def clear(self) -> Optional[DiskPage]:
        """Empty the frame, returning the page image it held."""
        page = self.page
        self.page = None
        self.pin_count = 0
        self.dirty = False
        return page

    def __repr__(self) -> str:
        return (f"Frame(id={self.frame_id}, page={self.page_id}, "
                f"pins={self.pin_count}, dirty={self.dirty})")
