"""The buffer pool.

A fixed set of :class:`~repro.buffer.frame.Frame` objects fronting a
:class:`~repro.storage.disk.SimulatedDisk`, with:

- a page table (page id -> frame) for O(1) lookup;
- pin/unpin discipline — pinned frames are passed to the replacement
  policy as exclusions, so no policy can evict a page in use;
- dirty tracking and write-back on eviction (the Figure 2.1 "if victim is
  dirty then write victim back into the database" step);
- a pluggable :class:`~repro.policies.base.ReplacementPolicy` driven
  through the same event protocol as the lightweight cache simulator;
- an optional reference-trace observer so database-engine executions can
  be captured as reference strings and replayed through the policy-level
  simulator (how the TPC-A example produces its workload).

The convenience context manager :class:`PinnedPage` makes the common
"fetch, use, unpin" sequence exception-safe.

Concurrency contract: a ``BufferPool`` is **single-caller**. It shares
its policy's thread-confinement rules (see :mod:`repro.policies.base`)
and adds its own unguarded state — the page table, frame pins, the
logical clock, and the stats block. Callers that want concurrency must
serialize every method call externally; the supported way is
:class:`repro.service.ShardedBufferManager`, which confines each pool
(and its policy, clock, and disk) to one shard lock. Event sinks are
likewise single-threaded, so concurrent pools must not share an
observability dispatcher.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..clock import LogicalClock
from ..errors import (
    ConfigurationError,
    NoEvictableFrameError,
    PageNotResidentError,
)
from ..obs import runtime as obs_runtime
from ..obs.dispatcher import EventDispatcher
from ..obs.events import (
    AccessEvent,
    EvictionEvent,
    FlushEvent,
    victim_telemetry,
)
from ..policies.base import ReplacementPolicy
from ..storage.disk import SimulatedDisk
from ..storage.page import DiskPage
from ..types import AccessKind, PageId, Reference
from .frame import Frame
from .stats import BufferStats

#: Observer invoked once per logical page request.
TraceObserver = Callable[[Reference], None]


class TraceRecorder:
    """A simple observer that accumulates the reference string."""

    def __init__(self) -> None:
        self.references: List[Reference] = []

    def __call__(self, reference: Reference) -> None:
        self.references.append(reference)

    def __len__(self) -> int:
        return len(self.references)

    def pages(self) -> List[PageId]:
        """The page-id projection of the recorded string."""
        return [ref.page for ref in self.references]


class BufferPool:
    """A database buffer pool over a simulated disk."""

    def __init__(self, disk: SimulatedDisk, policy: ReplacementPolicy,
                 capacity: int,
                 observer: Optional[TraceObserver] = None,
                 observability: Optional[EventDispatcher] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError("buffer pool capacity must be positive")
        self.disk = disk
        self.policy = policy
        self.capacity = capacity
        self.observer = observer
        self._obs = obs_runtime.resolve(observability)
        if self._obs is not None and hasattr(policy, "bind_observability"):
            policy.bind_observability(self._obs)
        self.clock = LogicalClock()
        self.stats = BufferStats()
        self._frames = [Frame(i) for i in range(capacity)]
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._page_table: Dict[PageId, int] = {}
        # Session context: default process/txn annotation for references
        # issued by engine code that does not thread ids explicitly.
        self._context_process: Optional[int] = None
        self._context_txn: Optional[int] = None

    def set_context(self, process_id: Optional[int] = None,
                    txn_id: Optional[int] = None) -> None:
        """Annotate subsequent references with a process/transaction.

        Database-engine layers (heap files, B-trees) fetch pages without
        knowing who asked; the workload driver sets the session context
        around each transaction so the captured reference string carries
        the Section 2.1.1 metadata.
        """
        self._context_process = process_id
        self._context_txn = txn_id

    def clear_context(self) -> None:
        """Remove the session annotation."""
        self._context_process = None
        self._context_txn = None

    # -- inspection -------------------------------------------------------------

    @property
    def resident_pages(self) -> frozenset:
        """Snapshot of resident page ids."""
        return frozenset(self._page_table)

    def is_resident(self, page_id: PageId) -> bool:
        """True when the page occupies a frame."""
        return page_id in self._page_table

    def frame_of(self, page_id: PageId) -> Frame:
        """The frame holding a resident page."""
        try:
            return self._frames[self._page_table[page_id]]
        except KeyError:
            raise PageNotResidentError(page_id) from None

    def pin_count(self, page_id: PageId) -> int:
        """Current pin count of a resident page (0 if clean of pins)."""
        return self.frame_of(page_id).pin_count

    # -- the core fetch path ------------------------------------------------------

    def fetch(self, page_id: PageId, pin: bool = True,
              kind: AccessKind = AccessKind.READ,
              process_id: Optional[int] = None,
              txn_id: Optional[int] = None) -> Frame:
        """Request a page: hit or fault it in, optionally taking a pin.

        This is the single entry point for all logical page access; it
        notifies the observer, drives the replacement policy, and performs
        physical I/O through the disk.
        """
        now = self.clock.tick()
        if process_id is None:
            process_id = self._context_process
        if txn_id is None:
            txn_id = self._context_txn
        reference = Reference(page=page_id, kind=kind,
                              process_id=process_id, txn_id=txn_id)
        if self.observer is not None:
            self.observer(reference)
        if kind is AccessKind.WRITE:
            self.stats.logical_writes += 1
        else:
            self.stats.logical_reads += 1

        self.policy.observe(reference, now)
        frame_index = self._page_table.get(page_id)
        if frame_index is not None:
            frame = self._frames[frame_index]
            self.stats.hits += 1
            self.policy.on_hit(page_id, now)
        else:
            frame = self._allocate_frame(page_id, now)
            frame.load(self.disk.read(page_id), now)
            self._page_table[page_id] = frame.frame_id
            self.stats.misses += 1
            self.policy.on_admit(page_id, now)

        if pin:
            frame.pin()
        if kind is AccessKind.WRITE:
            frame.dirty = True
        obs = self._obs
        if obs is not None and obs.has_sinks:
            obs.emit(AccessEvent(time=now, page=page_id,
                                 hit=frame_index is not None,
                                 write=kind is AccessKind.WRITE))
        return frame

    def _allocate_frame(self, incoming: PageId, now: int) -> Frame:
        if self._free:
            return self._frames[self._free.pop()]
        pinned = frozenset(
            frame.page_id for frame in self._frames
            if frame.pin_count > 0 and frame.page_id is not None)
        if len(pinned) >= self.capacity:
            raise NoEvictableFrameError(
                "every frame is pinned; cannot fault a new page in")
        victim = self.policy.choose_victim(now, incoming=incoming,
                                           exclude=pinned)
        return self._evict(victim, now)

    def _evict(self, victim: PageId, now: int) -> Frame:
        frame = self.frame_of(victim)
        obs = self._obs
        if obs is not None and obs.has_sinks:
            distance, informed = victim_telemetry(self.policy, victim, now)
            obs.emit(EvictionEvent(time=now, victim=victim,
                                   dirty=frame.dirty,
                                   backward_k_distance=distance,
                                   history_informed=informed))
        self.policy.on_evict(victim, now)
        del self._page_table[victim]
        self.stats.evictions += 1
        if frame.dirty:
            self.stats.dirty_evictions += 1
            page = frame.page
            assert page is not None
            self.disk.write(page)
        frame.clear()
        return frame

    # -- pins, writes, flushes ------------------------------------------------------

    def unpin(self, page_id: PageId, dirty: bool = False) -> None:
        """Release one pin on a resident page."""
        self.frame_of(page_id).unpin(dirty)

    def write_payload(self, page_id: PageId, payload: bytes) -> None:
        """Replace a resident, pinned page's payload and mark it dirty."""
        frame = self.frame_of(page_id)
        page = frame.page
        assert page is not None
        frame.page = page.with_payload(payload)
        frame.dirty = True

    def flush(self, page_id: PageId) -> bool:
        """Write a resident page back to disk if dirty; True when written."""
        frame = self.frame_of(page_id)
        if not frame.dirty:
            return False
        page = frame.page
        assert page is not None
        self.disk.write(page)
        frame.dirty = False
        self.stats.flushes += 1
        obs = self._obs
        if obs is not None and obs.has_sinks:
            obs.emit(FlushEvent(time=self.clock.now, page=page_id))
        return True

    def flush_all(self) -> int:
        """Write back every dirty frame; returns how many were written."""
        flushed = 0
        obs = self._obs
        emit = obs is not None and obs.has_sinks
        for frame in self._frames:
            if frame.page is not None and frame.dirty:
                self.disk.write(frame.page)
                frame.dirty = False
                self.stats.flushes += 1
                flushed += 1
                if emit and frame.page_id is not None:
                    obs.emit(FlushEvent(time=self.clock.now,
                                        page=frame.page_id))
        return flushed

    def evict_page(self, page_id: PageId) -> None:
        """Force a specific (unpinned) page out, write-back included."""
        frame = self.frame_of(page_id)
        if frame.pin_count > 0:
            raise NoEvictableFrameError(
                f"page {page_id} is pinned {frame.pin_count} time(s)")
        now = self.clock.now
        evicted = self._evict(page_id, now)
        self._free.append(evicted.frame_id)

    def pinned_page(self, page_id: PageId,
                    kind: AccessKind = AccessKind.READ) -> "PinnedPage":
        """Context-managed fetch: pins on entry, unpins on exit."""
        return PinnedPage(self, page_id, kind)


class PinnedPage:
    """``with pool.pinned_page(pid) as frame: ...`` — exception-safe pinning."""

    def __init__(self, pool: BufferPool, page_id: PageId,
                 kind: AccessKind = AccessKind.READ) -> None:
        self._pool = pool
        self._page_id = page_id
        self._kind = kind
        self._frame: Optional[Frame] = None
        self.mark_dirty = False

    def __enter__(self) -> Frame:
        self._frame = self._pool.fetch(self._page_id, pin=True,
                                       kind=self._kind)
        return self._frame

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._frame is not None
        self._pool.unpin(self._page_id, dirty=self.mark_dirty)
