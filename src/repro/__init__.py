"""repro — a reproduction of O'Neil, O'Neil & Weikum (SIGMOD 1993),
"The LRU-K Page Replacement Algorithm For Database Disk Buffering".

Quickstart::

    from repro import LRUKPolicy, CacheSimulator
    from repro.workloads import TwoPoolWorkload

    workload = TwoPoolWorkload(n1=100, n2=10_000)
    simulator = CacheSimulator(LRUKPolicy(k=2), capacity=100)
    simulator.run(workload.references(10_000, seed=1))
    simulator.start_measurement()
    simulator.run(workload.references(30_000, seed=2))
    print(f"LRU-2 hit ratio: {simulator.hit_ratio:.3f}")

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the LRU-K algorithm itself;
- :mod:`repro.policies` — LRU/LFU/FIFO/CLOCK/GCLOCK/LRD/Working-Set
  baselines, A0 and Belady oracles, 2Q/ARC lineage;
- :mod:`repro.buffer` — a full buffer manager (pins, dirty write-back);
- :mod:`repro.storage` — simulated disk, service times, trace files;
- :mod:`repro.db` — miniature database engine (B-tree, heap files,
  transactions, CODASYL network schema) for realistic reference strings;
- :mod:`repro.workloads` — the paper's workload generators;
- :mod:`repro.sim` — measurement protocol, sweeps, B(1)/B(2);
- :mod:`repro.analysis` — the Section 3 mathematics and analytic models;
- :mod:`repro.experiments` — ready-made specs for Tables 4.1/4.2/4.3;
- :mod:`repro.obs` — structured events, metrics registry, windowed
  hit-ratio recording, JSONL/ring/timeline sinks, latency profiling.
"""

from . import policies  # registers baseline policies
from . import core      # registers lru-k / lru-2 / lru-3
from .core import LRUKPolicy, LRUKStats
from .policies import (
    A0Policy,
    ARCPolicy,
    BeladyPolicy,
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    available_policies,
    make_policy,
)
from .buffer import BufferPool, TraceRecorder
from .storage import SimulatedDisk
from .sim import CacheSimulator
from .types import AccessKind, PageId, Reference
from . import obs
from .obs import EventDispatcher, MetricsRegistry, ProfiledPolicy

__version__ = "1.0.0"

__all__ = [
    "LRUKPolicy",
    "LRUKStats",
    "A0Policy",
    "ARCPolicy",
    "BeladyPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "TwoQPolicy",
    "ReplacementPolicy",
    "available_policies",
    "make_policy",
    "BufferPool",
    "TraceRecorder",
    "SimulatedDisk",
    "CacheSimulator",
    "AccessKind",
    "PageId",
    "Reference",
    "obs",
    "EventDispatcher",
    "MetricsRegistry",
    "ProfiledPolicy",
    "__version__",
]
