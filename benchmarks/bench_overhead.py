"""A12 — bookkeeping overhead ("fairly simple and incurs little
bookkeeping overhead", paper Sections 1.2 / 2.1.3).

Run with::

    pytest benchmarks/bench_overhead.py --benchmark-only -s

Two views of the same claim:

- A12 measures mean per-reference processing cost for every registered
  policy on an identical Zipfian stream — LRU-2's overhead should be a
  small constant factor over classical LRU, not an asymptotic blow-up,
  thanks to the heap-backed victim selection (the literal Figure 2.1
  scan is bench A10's subject).
- A12b wraps each policy in :class:`repro.obs.ProfiledPolicy` and
  reports the p50/p95/p99 latency of every protocol hook (``observe`` /
  ``on_hit`` / ``on_admit`` / ``choose_victim`` / ``on_evict``). A mean
  can hide tail spikes in the lazy heap; the distribution cannot.
"""

from __future__ import annotations

import time

from repro.core import LRUKPolicy
from repro.obs import PROFILED_HOOKS, ProfiledPolicy
from repro.policies import make_policy
from repro.sim import CacheSimulator, Table
from repro.workloads import ZipfianWorkload

from .conftest import emit

CAPACITY = 500
REFERENCES = 60_000
#: Hook-profiling stream length: timing every hook roughly doubles the
#: per-reference cost, so the distributional bench uses a shorter stream.
PROFILE_REFERENCES = 20_000

#: (label, factory) — one row each; capacity-aware policies get CAPACITY.
CONFIGS = (
    ("LRU-1", lambda: make_policy("lru")),
    ("LRU-2", lambda: LRUKPolicy(k=2)),
    ("LRU-2 +CRP", lambda: LRUKPolicy(k=2, correlated_reference_period=8)),
    ("LRU-3", lambda: LRUKPolicy(k=3)),
    ("LFU", lambda: make_policy("lfu")),
    ("FIFO", lambda: make_policy("fifo")),
    ("CLOCK", lambda: make_policy("clock")),
    ("GCLOCK", lambda: make_policy("gclock")),
    ("2Q", lambda: make_policy("2q", capacity=CAPACITY)),
    ("ARC", lambda: make_policy("arc", capacity=CAPACITY)),
    ("SLRU", lambda: make_policy("slru", capacity=CAPACITY)),
    ("FBR", lambda: make_policy("fbr", capacity=CAPACITY)),
)


def _run_overhead() -> Table:
    workload = ZipfianWorkload(n=20_000)
    references = list(workload.references(REFERENCES, seed=9))
    table = Table(
        title=f"A12 — per-reference policy overhead "
              f"(B={CAPACITY}, Zipfian N=20k, {REFERENCES} refs)",
        columns=["policy", "us/ref", "vs LRU-1"])
    timings = {}
    for label, factory in CONFIGS:
        simulator = CacheSimulator(factory(), CAPACITY)
        started = time.perf_counter()
        for reference in references:
            simulator.access(reference)
        timings[label] = ((time.perf_counter() - started)
                          / REFERENCES * 1e6)
    base = timings["LRU-1"]
    for label, _ in CONFIGS:
        table.add_row(label, timings[label], timings[label] / base)
    return table


def _run_hook_profiles() -> Table:
    """Drive every policy through a profiled simulator; tabulate tails."""
    workload = ZipfianWorkload(n=20_000)
    references = list(workload.references(PROFILE_REFERENCES, seed=9))
    table = Table(
        title=f"A12b — per-hook latency distribution, microseconds "
              f"(B={CAPACITY}, Zipfian N=20k, {PROFILE_REFERENCES} refs)",
        columns=["policy", "hook", "calls", "p50 us", "p95 us", "p99 us"])
    for label, factory in CONFIGS:
        profiled = ProfiledPolicy(factory())
        simulator = CacheSimulator(profiled, CAPACITY)
        for reference in references:
            simulator.access(reference)
        report = profiled.report()
        for hook in PROFILED_HOOKS:
            summary = report.get(hook)
            if summary is None:
                continue
            table.add_row(label, hook, int(summary["count"]),
                          summary["p50"], summary["p95"], summary["p99"])
    return table


def test_a12_bookkeeping_overhead(benchmark):
    table = benchmark.pedantic(_run_overhead, rounds=1, iterations=1)
    emit("A12 — bookkeeping overhead", table.render())
    factors = {row[0]: row[2] for row in table.rows}
    # "little bookkeeping overhead": LRU-2 within a small constant factor
    # of classical LRU on the same stream.
    assert factors["LRU-2"] < 5.0
    assert factors["LRU-3"] < 6.0


def test_a12b_hook_latency_profile(benchmark):
    table = benchmark.pedantic(_run_hook_profiles, rounds=1, iterations=1)
    emit("A12b — per-hook latency distribution", table.render())
    by_policy = {}
    for policy, hook, calls, p50, p95, p99 in table.rows:
        assert calls > 0
        assert 0.0 <= p50 <= p95 <= p99
        by_policy.setdefault(policy, set()).add(hook)
    # Every policy exercised the full protocol on this stream.
    for policy, hooks in by_policy.items():
        assert hooks == set(PROFILED_HOOKS), (policy, hooks)
