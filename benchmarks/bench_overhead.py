"""A12 — bookkeeping overhead ("fairly simple and incurs little
bookkeeping overhead", paper Sections 1.2 / 2.1.3).

Run with::

    pytest benchmarks/bench_overhead.py --benchmark-only -s

Two views of the same claim:

- A12 measures mean per-reference processing cost for every registered
  policy on an identical Zipfian stream — LRU-2's overhead should be a
  small constant factor over classical LRU, not an asymptotic blow-up,
  thanks to the heap-backed victim selection (the literal Figure 2.1
  scan is bench A10's subject).
- A12b wraps each policy in :class:`repro.obs.ProfiledPolicy` and
  reports the p50/p95/p99 latency of every protocol hook (``observe`` /
  ``on_hit`` / ``on_admit`` / ``choose_victim`` / ``on_evict``). A mean
  can hide tail spikes in the lazy heap; the distribution cannot.
- A12c measures raw references/second for LRU-K's two victim selectors
  (heap vs literal Figure 2.1 scan), for the pre-normalized fast integer
  path, and for the fused simulation kernels
  (:mod:`repro.policies.kernel`), and writes the numbers to
  ``BENCH_overhead.json`` so CI can archive a perf trajectory (see
  docs/performance.md). The kernel rows gate CI: ``lruk_kernel`` must
  reach 1.5x ``lruk_heap`` (locally the target is 2x). The batch rows
  (``lru1_batch`` / ``lruk_batch``) run the run-skipping batch kernels
  on hit-dominated traces — a hot Zipfian for LRU-1 and a
  burst-expanded (correlated-reference) Zipfian for LRU-K — alongside
  scalar-kernel rows on the *same* traces (``*_kernel_hot``) for an
  honest same-trace comparison; ``trace_bake_refs_per_sec`` times
  ``repro trace bake`` materialization into the columnar format. Batch
  rows require numpy; without it the payload records a
  ``skipped_reason`` instead.
- A12d times a 4-policy x 4-capacity Table 4.2 sweep serially and under
  ``jobs=4``; on a multicore machine the parallel engine must deliver a
  >= 3x wall-clock speedup. Single-core machines record a
  ``skipped_reason`` instead of a meaningless speedup verdict; the
  payload also carries ``efficiency`` (speedup per usable core).
"""

from __future__ import annotations

import json
import os
import time

from repro.core import LRUKPolicy
from repro.obs import PROFILED_HOOKS, ProfiledPolicy
from repro.obs import perf as obs_perf
from repro.policies import make_policy
from repro.sim import (
    CachedTrace,
    CacheSimulator,
    PolicySpec,
    Table,
    fork_available,
    sweep_buffer_sizes,
)
from repro.workloads import ZipfianWorkload

from .conftest import bench_scale, emit

CAPACITY = 500
REFERENCES = 60_000
#: Hook-profiling stream length: timing every hook roughly doubles the
#: per-reference cost, so the distributional bench uses a shorter stream.
PROFILE_REFERENCES = 20_000

#: (label, factory) — one row each; capacity-aware policies get CAPACITY.
CONFIGS = (
    ("LRU-1", lambda: make_policy("lru")),
    ("LRU-2", lambda: LRUKPolicy(k=2)),
    ("LRU-2 +CRP", lambda: LRUKPolicy(k=2, correlated_reference_period=8)),
    ("LRU-3", lambda: LRUKPolicy(k=3)),
    ("LFU", lambda: make_policy("lfu")),
    ("FIFO", lambda: make_policy("fifo")),
    ("CLOCK", lambda: make_policy("clock")),
    ("GCLOCK", lambda: make_policy("gclock")),
    ("2Q", lambda: make_policy("2q", capacity=CAPACITY)),
    ("ARC", lambda: make_policy("arc", capacity=CAPACITY)),
    ("SLRU", lambda: make_policy("slru", capacity=CAPACITY)),
    ("FBR", lambda: make_policy("fbr", capacity=CAPACITY)),
)


def _run_overhead() -> Table:
    workload = ZipfianWorkload(n=20_000)
    references = list(workload.references(REFERENCES, seed=9))
    table = Table(
        title=f"A12 — per-reference policy overhead "
              f"(B={CAPACITY}, Zipfian N=20k, {REFERENCES} refs)",
        columns=["policy", "us/ref", "vs LRU-1"])
    timings = {}
    for label, factory in CONFIGS:
        simulator = CacheSimulator(factory(), CAPACITY)
        started = time.perf_counter()
        for reference in references:
            simulator.access(reference)
        timings[label] = ((time.perf_counter() - started)
                          / REFERENCES * 1e6)
    base = timings["LRU-1"]
    for label, _ in CONFIGS:
        table.add_row(label, timings[label], timings[label] / base)
    return table


def _run_hook_profiles() -> Table:
    """Drive every policy through a profiled simulator; tabulate tails."""
    workload = ZipfianWorkload(n=20_000)
    references = list(workload.references(PROFILE_REFERENCES, seed=9))
    table = Table(
        title=f"A12b — per-hook latency distribution, microseconds "
              f"(B={CAPACITY}, Zipfian N=20k, {PROFILE_REFERENCES} refs)",
        columns=["policy", "hook", "calls", "p50 us", "p95 us", "p99 us"])
    for label, factory in CONFIGS:
        profiled = ProfiledPolicy(factory())
        simulator = CacheSimulator(profiled, CAPACITY)
        for reference in references:
            simulator.access(reference)
        report = profiled.report()
        for hook in PROFILED_HOOKS:
            summary = report.get(hook)
            if summary is None:
                continue
            table.add_row(label, hook, int(summary["count"]),
                          summary["p50"], summary["p95"], summary["p99"])
    return table


def test_a12_bookkeeping_overhead(benchmark):
    table = benchmark.pedantic(_run_overhead, rounds=1, iterations=1)
    emit("A12 — bookkeeping overhead", table.render())
    factors = {row[0]: row[2] for row in table.rows}
    # "little bookkeeping overhead": LRU-2 within a small constant factor
    # of classical LRU on the same stream.
    assert factors["LRU-2"] < 5.0
    assert factors["LRU-3"] < 6.0


def _json_artifact_path() -> str:
    """Where A12c/A12d persist machine-readable numbers (CI uploads it)."""
    default = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_overhead.json")
    return os.environ.get("REPRO_BENCH_JSON", default)


#: Schema version stamped into every BENCH_*.json payload, so trend
#: tooling comparing artifacts across commits can detect shape changes
#: instead of mis-joining fields. Bump when a payload's keys change.
#: v3: a12c gained lruk_kernel/lru1_kernel rows; a12d gained
#: jobs/efficiency/skipped_reason.
#: v4: a12d speedup/efficiency are null when skipped_reason is present
#: (an unmeasurable run must not look like a sub-1.0 regression).
#: v5: top-level machine block (hostname/cpu_count/python); a12c gained
#: batch-kernel rows (lru1_batch/lruk_batch + same-trace *_kernel_hot
#: baselines, batch_trace config, numpy flag) and
#: trace_bake_refs_per_sec.
BENCH_JSON_VERSION = 5


def _machine_block() -> dict:
    """Identify the box a payload was measured on.

    Perf numbers from different machines must never be compared as a
    trend; the trajectory tooling uses this block to partition records
    before diffing.
    """
    import platform
    import socket

    return {"hostname": socket.gethostname(),
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version()}


def _history_path() -> str:
    """The perf-trajectory ledger lives next to the JSON artifact."""
    return os.environ.get(
        "REPRO_BENCH_HISTORY",
        os.path.join(os.path.dirname(_json_artifact_path()),
                     obs_perf.HISTORY_FILENAME))


def _merge_json_artifact(payload: dict) -> None:
    """Merge a result block into the JSON artifact (bench order agnostic)."""
    path = _json_artifact_path()
    record = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            record = {}
    record.update(payload)
    record["version"] = BENCH_JSON_VERSION
    record["machine"] = _machine_block()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _throughput(policy, pages) -> float:
    """Drive the fast integer path; references per second."""
    simulator = CacheSimulator(policy, CAPACITY)
    access_page = simulator.access_page
    started = time.perf_counter()
    for page in pages:
        access_page(page)
    return len(pages) / (time.perf_counter() - started)


def _kernel_throughput(policy, pages, capacity: int = CAPACITY) -> float:
    """Drive the fused scalar kernel directly; references per second."""
    kernel = policy.make_kernel(capacity)
    assert kernel is not None, "scalar kernel unavailable"
    started = time.perf_counter()
    kernel(pages, 0)
    return len(pages) / (time.perf_counter() - started)


def _batch_throughput(policy, pages, capacity: int) -> float:
    """Drive the run-skipping batch kernel; references per second."""
    kernel = policy.make_batch_kernel(capacity)
    assert kernel is not None, "batch kernel unavailable"
    started = time.perf_counter()
    result = kernel(pages, 0)
    elapsed = time.perf_counter() - started
    assert result is not None, "batch kernel declined the trace"
    return len(pages) / elapsed


#: The batch-kernel bench regime: hit-dominated traces over a small page
#: universe at near-universe capacity, where run skipping has runs to
#: skip. LRU-K additionally gets correlated bursts (each independent
#: draw re-referenced BURST times, the paper's Section 2.1.1 pairs) and
#: a CRP spanning them, the configuration CRP exists for.
BATCH_UNIVERSE = 1_000
BATCH_CAPACITY = 990
BATCH_BURST = 5
BATCH_CRP = 10


def _run_batch_throughput(count: int) -> "tuple[dict, dict]":
    """Batch-kernel rows: rates dict + the trace-config payload block."""
    from array import array

    # Long enough that the ~capacity compulsory misses of the cold start
    # stop dominating run length; at bench scale 1.0 the steady-state
    # miss ratio on this trace is ~0.1%, i.e. runs of ~700 hits.
    hot_count = max(1_000_000, count)
    hot = ZipfianWorkload(n=BATCH_UNIVERSE)
    hot_pages = hot.page_ids(hot_count, seed=9)
    draws = hot.page_ids(hot_count // BATCH_BURST, seed=10)
    burst_pages = array(
        "q", (page for page in draws for _ in range(BATCH_BURST)))

    def lruk():
        return LRUKPolicy(k=2, correlated_reference_period=BATCH_CRP)

    rates = {
        "lru1_batch": _batch_throughput(
            make_policy("lru"), hot_pages, BATCH_CAPACITY),
        "lru1_kernel_hot": _kernel_throughput(
            make_policy("lru"), hot_pages, BATCH_CAPACITY),
        "lruk_batch": _batch_throughput(
            lruk(), burst_pages, BATCH_CAPACITY),
        "lruk_kernel_hot": _kernel_throughput(
            lruk(), burst_pages, BATCH_CAPACITY),
    }
    config = {"universe": BATCH_UNIVERSE, "capacity": BATCH_CAPACITY,
              "references": hot_count, "burst": BATCH_BURST,
              "crp": BATCH_CRP,
              "note": "batch/_hot rows share these hit-dominated traces; "
                      "kernel rows above use the colder Zipfian N=20k"}
    return rates, config


def _bake_throughput(count: int) -> float:
    """Time `repro trace bake` materialization; references per second."""
    import tempfile

    from repro.storage.columnar import bake_trace

    workload = ZipfianWorkload(n=BATCH_UNIVERSE)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as directory:
        destination = os.path.join(directory, "bench.rtrc")
        started = time.perf_counter()
        bake_trace(destination, workload, count, seed=9)
        return count / (time.perf_counter() - started)


def _run_selector_throughput() -> "tuple[Table, dict]":
    """A12c: references/second, LRU-K heap vs scan vs the fused kernels."""
    count = max(10_000, int(REFERENCES * bench_scale(1.0)))
    workload = ZipfianWorkload(n=20_000)
    references = list(workload.references(count, seed=9))
    trace = CachedTrace.from_references(references)
    pages = trace.page_ids()

    rates = {
        "lruk_heap": _throughput(LRUKPolicy(k=2, selection="heap"), pages),
        "lruk_scan": _throughput(LRUKPolicy(k=2, selection="scan"), pages),
        "lru1": _throughput(make_policy("lru"), pages),
        "lruk_kernel": _kernel_throughput(LRUKPolicy(k=2), pages),
        "lru1_kernel": _kernel_throughput(make_policy("lru"), pages),
    }
    # The pre-fast-path baseline: the same stream as Reference objects
    # through the dispatching access() entry point.
    simulator = CacheSimulator(LRUKPolicy(k=2), CAPACITY)
    started = time.perf_counter()
    for reference in trace.references():
        simulator.access(reference)
    rates["lruk_heap_reference_objects"] = (
        count / (time.perf_counter() - started))

    from repro.workloads.vectorized import numpy_or_none

    payload = {"a12c": {"references": count, "capacity": CAPACITY,
                        "numpy": numpy_or_none() is not None,
                        "refs_per_sec": rates}}
    if numpy_or_none() is not None:
        batch_rates, batch_config = _run_batch_throughput(count)
        rates.update(batch_rates)
        payload["a12c"]["batch_trace"] = batch_config
    else:
        payload["a12c"]["batch_skipped_reason"] = (
            "numpy unavailable: batch kernels decline, scalar kernels "
            "carry the trace")
    rates["trace_bake_refs_per_sec"] = _bake_throughput(count)

    table = Table(
        title=f"A12c — victim-selector throughput "
              f"(B={CAPACITY}, Zipfian N=20k, {count} refs; batch rows "
              f"on hit-dominated N={BATCH_UNIVERSE} traces)",
        columns=["driver", "refs/sec", "vs scan"])
    for label in ("lruk_batch", "lruk_kernel_hot", "lruk_kernel",
                  "lruk_heap", "lruk_scan", "lruk_heap_reference_objects",
                  "lru1_batch", "lru1_kernel_hot", "lru1_kernel", "lru1",
                  "trace_bake_refs_per_sec"):
        if label in rates:
            table.add_row(label, rates[label],
                          rates[label] / rates["lruk_scan"])
    return table, payload


def _run_parallel_speedup() -> "tuple[Table, dict]":
    """A12d: serial vs jobs=4 wall clock on a 4x4 Table 4.2 grid."""
    scale = bench_scale(1.0)
    workload = ZipfianWorkload(n=1000)
    specs = [PolicySpec.lru(), PolicySpec.lruk(2), PolicySpec.lruk(3),
             PolicySpec.a0()]
    capacities = [60, 100, 140, 200]
    warmup = int(10_000 * scale)
    measured = int(30_000 * scale)

    def timed(jobs: int) -> "tuple[float, list]":
        started = time.perf_counter()
        cells = sweep_buffer_sizes(workload, specs, capacities,
                                   warmup=warmup, measured=measured,
                                   seed=5, repetitions=1, jobs=jobs)
        return time.perf_counter() - started, cells

    jobs = 4
    serial_elapsed, serial_cells = timed(1)
    parallel_elapsed, parallel_cells = timed(jobs)
    assert [c.results for c in serial_cells] == \
        [c.results for c in parallel_cells], "parallel sweep diverged"
    cores = os.cpu_count() or 1
    speedup = serial_elapsed / parallel_elapsed
    # Speedup is bounded by the cores the 4 workers can actually use, so
    # normalize it: efficiency ~1.0 means perfect scaling on this box,
    # and on a single core the whole exercise measures only fork
    # overhead — record why the verdict is skipped rather than a
    # meaningless sub-1.0 "speedup".
    usable = min(jobs, cores)
    efficiency = speedup / usable
    table = Table(
        title=f"A12d — parallel sweep engine, 4 policies x 4 capacities "
              f"(Zipfian N=1000, {warmup + measured} refs/cell, "
              f"{cores} cores)",
        columns=["mode", "seconds", "speedup"])
    table.add_row("serial", serial_elapsed, 1.0)
    table.add_row(f"jobs={jobs}", parallel_elapsed, speedup)
    stats = {"cores": cores,
             "jobs": jobs,
             "references_per_cell": warmup + measured,
             "serial_seconds": serial_elapsed,
             "parallel_seconds": parallel_elapsed,
             "speedup": speedup,
             "efficiency": efficiency}
    if cores < 2:
        stats["skipped_reason"] = (
            "single-core machine: parallel speedup is unmeasurable, "
            "only the serial/parallel equivalence check ran")
    elif not fork_available():
        stats["skipped_reason"] = (
            "fork start method unavailable: sweep ran serially")
    if "skipped_reason" in stats:
        # A skipped run measured nothing: a numeric sub-1.0 "speedup"
        # here would read as a regression to any consumer that misses
        # the reason field, so the measurement columns go null.
        stats["speedup"] = None
        stats["efficiency"] = None
    return table, {"a12d": stats}


def test_a12c_selector_throughput(benchmark):
    table, payload = benchmark.pedantic(_run_selector_throughput,
                                        rounds=1, iterations=1)
    emit("A12c — victim-selector throughput", table.render())
    _merge_json_artifact(payload)
    rates = payload["a12c"]["refs_per_sec"]
    obs_perf.append_record(
        _history_path(), "a12c", dict(rates),
        meta={"references": payload["a12c"]["references"],
              "capacity": CAPACITY, "cores": os.cpu_count() or 1})
    # The heap selector must beat the O(B) scan on a B=500 buffer, and
    # the fast integer path must beat driving Reference objects.
    assert rates["lruk_heap"] > rates["lruk_scan"]
    assert rates["lruk_heap"] > rates["lruk_heap_reference_objects"]
    # The fused kernel must deliver a real multiple over the per-reference
    # object path (CI re-checks this threshold on the fresh artifact).
    assert rates["lruk_kernel"] >= 1.5 * rates["lruk_heap"], rates
    if "lruk_batch" in rates:
        # Run skipping must beat the scalar kernels: comfortably on the
        # committed cross-trace gate (CI re-checks 2x on the artifact),
        # and strictly on its own hit-dominated traces — a batch kernel
        # that loses at home is dead weight. The same-trace floor is
        # deliberately loose (1.05x) because single-shot timings on
        # small shared boxes jitter by tens of percent; the committed
        # artifact records the real ratio.
        assert rates["lruk_batch"] >= 2.0 * rates["lruk_kernel"], rates
        assert rates["lru1_batch"] >= 2.0 * rates["lru1_kernel"], rates
        assert rates["lruk_batch"] >= 1.05 * rates["lruk_kernel_hot"], rates
        assert rates["lru1_batch"] >= 1.05 * rates["lru1_kernel_hot"], rates


def test_a12d_parallel_sweep_speedup(benchmark):
    table, payload = benchmark.pedantic(_run_parallel_speedup,
                                        rounds=1, iterations=1)
    emit("A12d — parallel sweep speedup", table.render())
    _merge_json_artifact(payload)
    stats = payload["a12d"]
    meta = {"cores": stats["cores"], "jobs": stats["jobs"],
            "references_per_cell": stats["references_per_cell"]}
    if "skipped_reason" in stats:
        meta["skipped_reason"] = stats["skipped_reason"]
    obs_perf.append_record(
        _history_path(), "a12d",
        {"speedup": stats["speedup"], "efficiency": stats["efficiency"]},
        meta=meta)
    # The >= 3x target needs real cores and enough per-cell work to
    # amortize worker startup; on small machines the equivalence
    # assertion inside the run is still the functional check, and the
    # payload's skipped_reason documents why no verdict was rendered.
    if "skipped_reason" in stats:
        return
    if (fork_available() and (os.cpu_count() or 1) >= 4
            and stats["references_per_cell"] >= 20_000):
        assert stats["speedup"] >= 3.0, stats


def test_a12b_hook_latency_profile(benchmark):
    table = benchmark.pedantic(_run_hook_profiles, rounds=1, iterations=1)
    emit("A12b — per-hook latency distribution", table.render())
    by_policy = {}
    for policy, hook, calls, p50, p95, p99 in table.rows:
        assert calls > 0
        assert 0.0 <= p50 <= p95 <= p99
        by_policy.setdefault(policy, set()).add(hook)
    # Every policy exercised the full protocol on this stream.
    for policy, hooks in by_policy.items():
        assert hooks == set(PROFILED_HOOKS), (policy, hooks)
