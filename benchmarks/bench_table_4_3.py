"""Regenerate paper Table 4.3 — the OLTP trace experiment (Section 4.3).

Run with::

    pytest benchmarks/bench_table_4_3.py --benchmark-only -s

Uses the calibrated synthetic bank trace (DESIGN.md §3). The default
protocol replays a scaled trace; set ``REPRO_BENCH_SCALE=1.0`` to replay
the paper's full 470,000 references. The bench also regenerates the
paper's trace-characterization prose (skew + Five Minute census).
"""

from __future__ import annotations

from repro.analysis import profile_trace
from repro.experiments import (
    PAPER_TABLE_4_3,
    comparison_table,
    shape_check,
    table_4_3_spec,
)
from repro.sim import run_experiment
from repro.workloads import BankOLTPWorkload
from repro.workloads.oltp import (
    FIVE_MINUTE_WINDOW_REFERENCES,
    PAPER_TRACE_LENGTH,
)

from .conftest import bench_scale, emit

SCALE = bench_scale(default=0.35)


def _run_table_4_3():
    spec = table_4_3_spec(scale=SCALE)
    return run_experiment(spec)


def test_table_4_3(benchmark):
    result = benchmark.pedantic(_run_table_4_3, rounds=1, iterations=1)
    emit(f"Table 4.3 — paper vs measured (trace scale {SCALE:g})",
         comparison_table(result, PAPER_TABLE_4_3).render())

    # Shape: LRU-2 dominates LFU dominates LRU-1 at mid-range buffers;
    # everything converges by B=5000.
    check = shape_check(result, ordering=["LRU-1", "LRU-2"],
                        min_gap_at=(600, "LRU-1", "LRU-2", 0.05),
                        converges_at=(5000, "LRU-1", "LRU-2", 0.08))
    assert check.passed, check.failures
    cell_600 = next(c for c in result.cells if c.capacity == 600)
    assert cell_600.hit_ratio("LFU") > cell_600.hit_ratio("LRU-1")
    assert cell_600.hit_ratio("LRU-2") > cell_600.hit_ratio("LFU") - 0.02


def test_trace_characterization(benchmark):
    """The Section 4.3 prose statistics, recomputed on the synthetic trace."""
    def profile():
        window = int(FIVE_MINUTE_WINDOW_REFERENCES * SCALE)
        count = int(PAPER_TRACE_LENGTH * SCALE)
        refs = list(BankOLTPWorkload().references(count, seed=0))
        return profile_trace(refs, max(1, window))

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit("Section 4.3 trace characterization",
         "\n".join(result.summary_lines()))
    assert result.skew.mass_of_top_fraction(0.03) > 0.3
    assert result.skew.mass_of_top_fraction(0.65) > 0.85
