"""Regenerate paper Table 4.2 — Zipfian random access (Section 4.2).

Run with::

    pytest benchmarks/bench_table_4_2.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments import (
    PAPER_TABLE_4_2,
    comparison_table,
    shape_check,
    table_4_2_spec,
)
from repro.sim import run_experiment

from .conftest import bench_scale, emit

SCALE = max(1.0, bench_scale() * 2)


def _run_table_4_2():
    spec = table_4_2_spec(scale=SCALE, repetitions=2)
    return run_experiment(spec)


def test_table_4_2(benchmark):
    result = benchmark.pedantic(_run_table_4_2, rounds=1, iterations=1)
    emit("Table 4.2 — paper vs measured",
         comparison_table(result, PAPER_TABLE_4_2).render())

    check = shape_check(result, ordering=["LRU-1", "LRU-2", "A0"])
    assert check.passed, check.failures
    # The equi-effective advantage shrinks toward 1.0 as B approaches N.
    first = result.equi_effective_ratios[40]
    last = result.equi_effective_ratios[500]
    assert first is None or first >= 1.3
    assert last is None or last <= 1.3
