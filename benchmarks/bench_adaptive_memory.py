"""A11 — dynamic frame/history exchange (paper Section 5 future work).

Run with::

    pytest benchmarks/bench_adaptive_memory.py --benchmark-only -s

Fixed memory budget M; compare (a) all-frames LRU-1 (history-free), (b)
LRU-2 with a statically reserved history slice, swept over reservation
sizes, and (c) the adaptive exchange that re-splits M at run time. The
workload's hot set moves, so history demand varies — the regime the
paper's "better approach would be to turn buffer frames into history
control blocks dynamically" remark anticipates.
"""

from __future__ import annotations

from repro.core import LRUKPolicy
from repro.policies import LRUPolicy
from repro.sim import AdaptiveCacheSimulator, CacheSimulator, Table
from repro.workloads import MovingHotspotWorkload

from .conftest import emit

BUDGET = 100.0
BLOCK_COST = 0.02
RIP = 1_500
WARMUP = 8_000
TOTAL = 32_000


def _workload_references():
    workload = MovingHotspotWorkload(db_pages=50_000, hot_pages=60,
                                     hot_fraction=0.1, epoch_length=8_000)
    return list(workload.references(TOTAL, seed=5))


def _measure(simulator, references) -> float:
    for index, reference in enumerate(references):
        if index == WARMUP:
            simulator.start_measurement()
        simulator.access(reference)
    return simulator.hit_ratio


def _run_comparison() -> Table:
    references = _workload_references()
    table = Table(
        title=f"A11 — frame/history memory exchange (budget {BUDGET:g} "
              f"frames, block cost {BLOCK_COST:g})",
        columns=["configuration", "frames", "hit ratio"])

    baseline = CacheSimulator(LRUPolicy(), capacity=int(BUDGET))
    table.add_row("all frames, LRU-1", int(BUDGET),
                  _measure(baseline, references))

    for reserve_fraction in (0.1, 0.3, 0.5):
        reserved_blocks = int(BUDGET * reserve_fraction / BLOCK_COST)
        frames = int(BUDGET * (1.0 - reserve_fraction))
        policy = LRUKPolicy(k=2, retained_information_period=RIP,
                            max_history_blocks=reserved_blocks)
        static = CacheSimulator(policy, capacity=max(1, frames))
        table.add_row(f"static split, {reserve_fraction:.0%} history",
                      frames, _measure(static, references))

    adaptive = AdaptiveCacheSimulator(
        LRUKPolicy(k=2, retained_information_period=RIP),
        memory_budget=BUDGET, block_cost=BLOCK_COST,
        max_history_fraction=0.5, adjust_interval=32)
    ratio = _measure(adaptive, references)
    table.add_row(
        f"adaptive ({adaptive.min_capacity_seen}-"
        f"{adaptive.max_capacity_seen} frames seen)",
        adaptive.capacity, ratio)
    return table


def test_a11_adaptive_memory(benchmark):
    table = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    emit("A11 — adaptive frame/history exchange", table.render())
    ratios = {row[0]: row[2] for row in table.rows}
    adaptive_ratio = next(v for k, v in ratios.items()
                          if k.startswith("adaptive"))
    # Retained information must beat the history-free baseline, and the
    # adaptive split must be competitive with the best static split
    # without having been hand-sized.
    assert adaptive_ratio > ratios["all frames, LRU-1"]
    best_static = max(v for k, v in ratios.items()
                      if k.startswith("static"))
    assert adaptive_ratio >= best_static - 0.02
