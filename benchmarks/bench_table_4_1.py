"""Regenerate paper Table 4.1 — the two-pool experiment (Section 4.1).

Run with::

    pytest benchmarks/bench_table_4_1.py --benchmark-only -s

Every row of the published table is reproduced: hit ratios for LRU-1,
LRU-2, LRU-3 and A0 at B in {60..450}, plus the equi-effective ratio
B(1)/B(2). The printed comparison table puts the paper's numbers side by
side with ours.
"""

from __future__ import annotations

from repro.experiments import (
    PAPER_TABLE_4_1,
    comparison_table,
    shape_check,
    table_4_1_spec,
)
from repro.sim import run_experiment

from .conftest import bench_scale, emit

#: Protocol scale: 1.0 is the paper's exact 10*N1 / 30*N1 windows; the
#: default stretches them for tighter estimates.
SCALE = max(1.0, bench_scale() * 6)


def _run_table_4_1():
    spec = table_4_1_spec(scale=SCALE, repetitions=3)
    return run_experiment(spec)


def test_table_4_1(benchmark):
    result = benchmark.pedantic(_run_table_4_1, rounds=1, iterations=1)
    emit("Table 4.1 — paper vs measured",
         comparison_table(result, PAPER_TABLE_4_1).render())

    # Acceptance criteria (DESIGN.md §5): fail the bench if the shape broke.
    check = shape_check(result, ordering=["LRU-1", "LRU-2", "LRU-3"],
                        min_gap_at=(100, "LRU-1", "LRU-2", 0.15),
                        converges_at=(450, "LRU-2", "A0", 0.02))
    assert check.passed, check.failures
    assert result.equi_effective_ratios[100] >= 2.0
