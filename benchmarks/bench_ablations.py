"""Ablation benches A1-A10 (DESIGN.md §2).

Run with::

    pytest benchmarks/bench_ablations.py --benchmark-only -s

Each test regenerates one ablation table and asserts its expected
qualitative outcome, so a regression in any design choice fails loudly.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ablation_adaptivity,
    ablation_analytic_cross_check,
    ablation_crp_sweep,
    ablation_k_sweep,
    ablation_lineage,
    ablation_multipool,
    ablation_rip_sweep,
    ablation_scaling,
    ablation_scan_swamping,
    ablation_victim_structure,
)

from .conftest import emit


def test_a1_k_sweep(benchmark):
    """A1: K=2 captures almost all of the benefit; higher K converges to A0."""
    table = benchmark.pedantic(ablation_k_sweep, rounds=1, iterations=1)
    emit("A1 — K sweep", table.render())
    ratios = dict(zip(table.column("K"), table.column("hit ratio")))
    assert ratios[2] > ratios[1] + 0.15       # the big jump is 1 -> 2
    assert ratios[3] >= ratios[2] - 0.01      # diminishing returns
    assert abs(ratios[5] - ratios["A0"]) < 0.02


def test_a2_crp_sweep(benchmark):
    """A2: a CRP covering burst gaps improves LRU-2 under correlated refs."""
    table = benchmark.pedantic(ablation_crp_sweep, rounds=1, iterations=1)
    emit("A2 — Correlated Reference Period sweep", table.render())
    ratios = dict(zip(table.column("CRP"),
                      table.column("LRU-2 hit ratio")))
    best_with_crp = max(ratios[crp] for crp in (4, 8, 16))
    assert best_with_crp > ratios[0]          # CRP beats no-CRP
    correlated = dict(zip(table.column("CRP"),
                          table.column("correlated refs")))
    assert correlated[8] > correlated[0]      # bursts actually collapsed


def test_a3_rip_sweep(benchmark):
    """A3: RIP below the hot interarrival cripples re-learning; above, flat."""
    table = benchmark.pedantic(ablation_rip_sweep, rounds=1, iterations=1)
    emit("A3 — Retained Information Period sweep", table.render())
    ratios = dict(zip(table.column("RIP"),
                      table.column("LRU-2 hit ratio")))
    assert ratios[200] < ratios[1600] - 0.005  # too-short RIP hurts
    assert abs(ratios[6000] - ratios["inf"]) < 0.01  # plateau reached
    blocks = dict(zip(table.column("RIP"), table.column("history blocks")))
    assert blocks[1600] < blocks["inf"] / 10   # purging bounds memory


def test_a4_adaptivity(benchmark):
    """A4: after a hot-spot jump, LRU-2 recovers and LFU does not."""
    table = benchmark.pedantic(ablation_adaptivity, rounds=1, iterations=1)
    emit("A4 — adaptivity to moving hot spots", table.render())
    rows = {row[0]: row[1:] for row in table.rows}
    # In the final epoch, LRU-2 has re-adapted; LFU is still stuck on the
    # first epoch's favourites.
    assert rows["LRU-2"][-1] > rows["LFU"][-1] + 0.1
    # LFU's best epoch is its first; afterwards it never fully recovers.
    assert max(rows["LFU"][1:]) < rows["LFU"][0]


def test_a5_scan_swamping(benchmark):
    """A5: Example 1.2 — LRU-1 degrades under scans far more than LRU-2."""
    table = benchmark.pedantic(ablation_scan_swamping, rounds=1,
                               iterations=1)
    emit("A5 — sequential-scan swamping", table.render())
    degradation = dict(zip(table.column("policy"),
                           table.column("degradation")))
    assert degradation["LRU-1"] > degradation["LRU-2"] + 0.05
    assert degradation["LRU-2"] < 0.1


def test_a6_scaling(benchmark):
    """A6: the two-pool results are invariant under N1,N2,B scaling."""
    table = benchmark.pedantic(ablation_scaling, rounds=1, iterations=1)
    emit("A6 — scale invariance", table.render())
    lru2 = table.column("LRU-2")
    assert max(lru2) - min(lru2) < 0.04


def test_a7_analytic_cross_check(benchmark):
    """A7: simulation agrees with the [DANTOWS]-style analytic models."""
    table = benchmark.pedantic(ablation_analytic_cross_check, rounds=1,
                               iterations=1)
    emit("A7 — analytic cross-check", table.render())
    for row in table.rows:
        _, lru_sim, lru_ana, fifo_sim, fifo_ana, a0_sim, a0_closed = row
        assert lru_sim == pytest.approx(lru_ana, abs=0.05)
        assert fifo_sim == pytest.approx(fifo_ana, abs=0.05)
        assert a0_sim == pytest.approx(a0_closed, abs=0.05)


def test_a8_lineage(benchmark):
    """A8: LRU-2 is competitive with its 2Q/ARC descendants on OLTP."""
    table = benchmark.pedantic(ablation_lineage, rounds=1, iterations=1)
    emit("A8 — lineage comparison", table.render())
    ratios = dict(zip(table.column("policy"), table.column("hit ratio")))
    assert ratios["LRU-2"] > ratios["LRU-1"]
    # The whole frequency-aware family beats plain LRU here.
    for descendant in ("2Q", "ARC"):
        assert ratios[descendant] > ratios["LRU-1"]


def test_a9_multipool(benchmark):
    """A9: self-reliant LRU-2 approaches perfectly tuned pools and beats
    mis-tuned ones — the paper's Section 1.1 argument."""
    table = benchmark.pedantic(ablation_multipool, rounds=1, iterations=1)
    emit("A9 — manual pool tuning vs LRU-2", table.render())
    ratios = dict(zip(table.column("policy"), table.column("hit ratio")))
    assert ratios["LRU-2"] >= ratios["multi-pool (tuned)"] - 0.05
    assert ratios["LRU-2"] > ratios["multi-pool (mistuned)"] + 0.05
    assert ratios["LRU-2"] > ratios["LRU-1"]


def test_a10_victim_structure(benchmark):
    """A10: the heap selector scales; the Figure 2.1 scan does not."""
    table = benchmark.pedantic(ablation_victim_structure, rounds=1,
                               iterations=1)
    emit("A10 — victim-selection structure", table.render())
    speedups = dict(zip(table.column("B"), table.column("speedup")))
    # At the largest buffer the heap must win clearly.
    assert speedups[1600] > 2.0
