"""Benchmark harness configuration.

Every benchmark regenerates a paper artifact (table or ablation) and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
whole evaluation section. The printed tables are also what EXPERIMENTS.md
records.

Scale control: set ``REPRO_BENCH_SCALE`` (default "0.5") to trade run time
for estimate quality; 1.0 is the paper's exact protocol length for the
table benches. The pytest-benchmark timing numbers measure the *harness*
(simulator throughput), which supports ablation A10 and regression
tracking; the scientific output is the printed tables.
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float = 0.5) -> float:
    """The global scale knob for benchmark protocol lengths."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


@pytest.fixture(scope="session")
def scale() -> float:
    """Session-wide protocol scale."""
    return bench_scale()


def emit(title: str, rendered: str) -> None:
    """Print a regenerated artifact and persist it to the artifacts log.

    pytest captures stdout of passing tests, so in addition to printing
    (visible with ``-s``) every artifact is appended to
    ``bench_artifacts.txt`` next to this file's repository root — the
    regenerated tables survive a quiet benchmark run.
    """
    banner = "=" * 72
    block = f"\n{banner}\n{title}\n{banner}\n{rendered}\n"
    print(block)
    artifacts = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "bench_artifacts.txt")
    with open(artifacts, "a", encoding="utf-8") as handle:
        handle.write(block)
