"""End-to-end: scrape /metrics while a --jobs sweep is actually running."""

import threading
import time
import urllib.request

import pytest

from repro.obs import (
    EventDispatcher,
    MetricsRegistry,
    MetricsServer,
    ResourceSampler,
    parse_exposition,
)
from repro.sim import PolicySpec, fork_available, sweep_buffer_sizes
from repro.workloads import ZipfianWorkload


def _scrape(url):
    with urllib.request.urlopen(url + "/metrics", timeout=5.0) as response:
        return response.read().decode("utf-8")


@pytest.mark.skipif(not fork_available(),
                    reason="live relay needs the fork engine")
class TestLiveScrape:
    def test_mid_sweep_exposition_carries_worker_state(self):
        dispatcher = EventDispatcher()
        dispatcher.metrics = MetricsRegistry()
        workload = ZipfianWorkload(n=100)
        specs = [PolicySpec.lru(), PolicySpec.lruk(2)]
        done = threading.Event()
        failure = []

        def sweep():
            try:
                sweep_buffer_sizes(
                    workload, specs, [8, 12, 16, 24, 32, 48], warmup=2000,
                    measured=8000, seed=11, repetitions=2, jobs=2,
                    observability=dispatcher)
            except Exception as exc:  # surfaced after join
                failure.append(exc)
            finally:
                done.set()

        with MetricsServer(dispatcher.metrics) as server, \
                ResourceSampler(dispatcher.metrics, interval=0.05,
                                dispatcher=dispatcher):
            worker = threading.Thread(target=sweep)
            worker.start()
            try:
                # Poll the live endpoint until the first completed cell
                # has relayed its counters and histogram bins — i.e. a
                # scrape taken strictly mid-sweep.
                live = None
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline and not done.is_set():
                    text = _scrape(server.url)
                    exposition = parse_exposition(text)
                    if exposition.histograms.get(
                            "protocol_run_hit_ratio") is not None:
                        live = exposition
                        break
                    time.sleep(0.02)
            finally:
                worker.join(timeout=120.0)
            final = parse_exposition(_scrape(server.url))

        assert not failure, failure
        assert live is not None, "no mid-sweep scrape saw worker state"

        # Worker-relayed protocol counters were visible mid-flight...
        assert live.value("protocol.references") > 0
        assert live.value("protocol.hits") + live.value(
            "protocol.misses") > 0
        # ... with well-formed cumulative run_hit_ratio buckets ...
        series = live.histograms["protocol_run_hit_ratio"]
        assert series.count > 0
        cumulative = [count for _, count in series.buckets]
        assert cumulative == sorted(cumulative)
        assert series.buckets[-1][0] == float("inf")
        assert series.buckets[-1][1] == series.count
        # ... alongside the resilient engine's fault counters (present
        # at zero in a healthy sweep, not absent) ...
        for name in ("sweep.cell.retries", "sweep.cell.timeouts",
                     "sweep.cell.fallbacks", "sweep.cell.failures",
                     "sweep.pool.rebuilds"):
            assert live.has(name), name
            assert live.value(name) == 0.0
        # ... and grid-progress gauges tracking completion (repetitions
        # run inside a cell: 6 capacities x 2 policies = 12 cells).
        assert live.value("sweep.cells_total") == 12.0
        assert live.types["sweep_cells_total"] == "gauge"
        assert live.types["protocol_hits"] == "counter"
        assert live.types["protocol_run_hit_ratio"] == "histogram"

        # The resource sampler fed the same exposition.
        assert live.value("telemetry.samples") > 0
        assert live.value("process.cpu_seconds") > 0

        # After the sweep drains, the final scrape accounts every cell
        # and every run (2 repetitions per cell).
        assert final.value("sweep.cells_done") == 12.0
        assert final.histograms["protocol_run_hit_ratio"].count == 24
        workers = {labels["worker"]
                   for name, labels in final.labels.items()
                   if "worker" in labels}
        assert workers, "no worker-relayed gauges in the final scrape"
