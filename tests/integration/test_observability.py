"""End-to-end observability: metrics registry, events, and CLI flags."""

import json

import pytest

from repro import CacheSimulator, LRUKPolicy
from repro.cli import main
from repro.obs import (
    EventDispatcher,
    MetricsRegistry,
    RingBufferSink,
    runtime,
)
from repro.sim import measure_hit_ratio
from repro.workloads import ZipfianWorkload


def run_zipfian(policy, references=8_000, capacity=60):
    """A skewed run long enough for full-K victims to dominate."""
    workload = ZipfianWorkload(n=500)
    simulator = CacheSimulator(policy, capacity=capacity)
    simulator.run(workload.references(references, seed=7))
    return simulator


class TestLRUKMetricsExport:
    def test_history_informed_evictions_populated(self):
        policy = LRUKPolicy(k=2)
        registry = MetricsRegistry()
        policy.export_metrics(registry)
        run_zipfian(policy)
        snapshot = registry.snapshot()
        assert snapshot["lruk.evictions"] > 0
        # The headline LRU-K discriminator: most victims at steady state
        # were chosen by their real backward K-distance, not by the
        # infinite-distance (no full history) tie-break.
        assert snapshot["lruk.history_informed_evictions"] > 0
        assert (snapshot["lruk.history_informed_evictions"]
                == snapshot["lruk.evictions"]
                - snapshot["lruk.infinite_distance_evictions"])
        assert snapshot["lruk.retained_history_blocks"] > 0

    def test_gauges_survive_policy_reset(self):
        policy = LRUKPolicy(k=2)
        registry = MetricsRegistry()
        policy.export_metrics(registry)
        run_zipfian(policy, references=1_000)
        assert registry.snapshot()["lruk.admissions"] > 0
        policy.reset()
        assert registry.snapshot()["lruk.admissions"] == 0.0

    def test_purge_events_reach_the_dispatcher(self):
        # A short RIP plus >256 touches triggers the amortized purge
        # demon; the policy reports each sweep as a PurgeEvent.
        dispatcher = EventDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        policy = LRUKPolicy(k=2, retained_information_period=50)
        policy.bind_observability(dispatcher)
        run_zipfian(policy, references=4_000, capacity=20)
        purges = ring.events("purge")
        assert purges, "expected at least one purge sweep"
        assert all(event.dropped > 0 for event in purges)
        assert all(event.retained >= 0 for event in purges)


class TestRunnerSnapshots:
    def test_measurement_protocol_emits_three_phases(self):
        dispatcher = EventDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        references = list(ZipfianWorkload(n=200).references(2_000, seed=3))
        measure_hit_ratio(LRUKPolicy(k=2), references,
                          capacity=30, warmup=500,
                          observability=dispatcher)
        phases = [event.phase for event in ring.events("snapshot")]
        assert phases == ["start", "measurement", "end"]
        end = ring.events("snapshot")[-1]
        assert 0.0 <= end.counters["hit_ratio"] <= 1.0
        assert end.counters["policy.history_informed_evictions"] >= 0


class TestCliObservability:
    @pytest.fixture()
    def jsonl(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        exit_code = main(["table4.1", "--scale", "0.1",
                          "--repetitions", "1", "--quiet",
                          "--metrics-out", str(path), "--timeline"])
        assert exit_code == 0
        out = capsys.readouterr().out
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        return records, out

    def test_metrics_out_is_parseable_jsonl(self, jsonl):
        records, _ = jsonl
        kinds = {record["event"] for record in records}
        assert {"access", "eviction", "snapshot", "window"} <= kinds
        final = records[-1]
        assert final["event"] == "snapshot"
        assert final["phase"] == "final"
        assert final["time"] is None
        # --metrics-out attaches a registry, so the final snapshot
        # carries whole-command protocol totals.
        assert final["counters"]["protocol.runs"] >= 1
        assert final["counters"]["protocol.references"] > 0

    def test_records_carry_run_context(self, jsonl):
        records, _ = jsonl
        evictions = [r for r in records if r["event"] == "eviction"]
        assert evictions
        sample = evictions[0]
        assert {"policy", "capacity", "seed"} <= set(sample)
        assert "backward_k_distance" in sample
        assert "history_informed" in sample

    def test_timeline_rendered_after_the_table(self, jsonl):
        _, out = jsonl
        assert "windowed hit ratio over time" in out

    def test_ambient_dispatcher_cleared_after_cli_run(self, jsonl):
        assert runtime.current() is None
