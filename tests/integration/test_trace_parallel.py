"""Cross-process tracing and metrics relay under the parallel sweep.

The acceptance bar for the span-relay design: a sweep run with
``jobs=4`` and an active tracer must export Chrome trace-event JSON in
which worker-recorded ``simulate`` spans sit under parent-side ``cell``
envelopes, and a worker-metered sweep must merge counter deltas into the
parent registry so serial and parallel totals are identical.
"""

import json

import pytest

from repro.obs import EventDispatcher, MetricsRegistry, Tracer
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.obs.trace import write_chrome_trace
from repro.sim import PolicySpec, fork_available, sweep_buffer_sizes
from repro.workloads import ZipfianWorkload

CAPACITIES = [16, 32]
SPECS = [PolicySpec.lru(), PolicySpec.lruk(2)]


def _sweep(jobs, tracer=None, metrics=None):
    workload = ZipfianWorkload(n=250)
    dispatcher = EventDispatcher()
    dispatcher.metrics = metrics
    with obs_runtime.activate(dispatcher):
        if tracer is not None:
            with obs_trace.activate(tracer):
                return sweep_buffer_sizes(
                    workload, SPECS, CAPACITIES,
                    warmup=400, measured=1200, seed=5, jobs=jobs)
        return sweep_buffer_sizes(
            workload, SPECS, CAPACITIES,
            warmup=400, measured=1200, seed=5, jobs=jobs)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestParallelTraceRelay:
    def test_worker_spans_reparent_under_cells(self, tmp_path):
        tracer = Tracer()
        _sweep(jobs=4, tracer=tracer)

        sweep_spans = tracer.find("sweep")
        assert len(sweep_spans) == 1
        cells = tracer.find("cell")
        assert len(cells) == len(CAPACITIES) * len(SPECS)
        assert all(cell.parent_id == sweep_spans[0].span_id
                   for cell in cells)

        cell_ids = {cell.span_id for cell in cells}
        simulates = tracer.find("simulate")
        assert len(simulates) == len(cells)
        assert all(span.parent_id in cell_ids for span in simulates)
        # The relayed spans really were recorded in other processes.
        parent_pid = sweep_spans[0].pid
        assert {span.pid for span in simulates} != {parent_pid}
        # Aggregate policy-hook spans rode along and nest under simulate.
        simulate_ids = {span.span_id for span in simulates}
        hooks = tracer.find(category="policy-hook")
        assert hooks
        assert all(span.parent_id in simulate_ids for span in hooks)

    def test_chrome_export_is_valid_and_loadable(self, tmp_path):
        tracer = Tracer()
        _sweep(jobs=4, tracer=tracer)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        trace = json.loads(path.read_text())
        assert "traceEvents" in trace
        events = trace["traceEvents"]
        spans = [event for event in events if event["ph"] == "X"]
        assert {"sweep", "cell", "simulate", "warmup",
                "measure"} <= {event["name"] for event in spans}
        for event in spans:
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int)
        # One metadata track per process: the parent plus >=1 worker.
        labels = {event["args"]["name"] for event in events
                  if event["ph"] == "M"}
        assert "sweep parent" in labels
        assert any(label.startswith("worker-") for label in labels)

    def test_results_identical_with_and_without_tracing(self):
        traced = _sweep(jobs=4, tracer=Tracer())
        plain = _sweep(jobs=4)
        assert [cell.results for cell in traced] == \
            [cell.results for cell in plain]


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestParallelMetricsMerge:
    def test_worker_counter_deltas_match_serial_totals(self):
        serial = MetricsRegistry()
        _sweep(jobs=1, metrics=serial)
        parallel = MetricsRegistry()
        _sweep(jobs=4, metrics=parallel)
        serial_counts = serial.counter_values()
        assert serial_counts["protocol.runs"] == \
            len(CAPACITIES) * len(SPECS)
        # Regression: forked workers used to drop their deltas silently,
        # leaving the parallel totals at zero.
        assert parallel.counter_values() == serial_counts
