"""Integration: the full buffer pool and the policy-level simulator make
identical replacement decisions when no pins intervene.

Both drivers speak the same policy protocol; this is the test that keeps
them honest (DESIGN.md design decision 6).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.core import LRUKPolicy
from repro.policies import FIFOPolicy, LFUPolicy, LRUPolicy
from repro.sim import CacheSimulator
from repro.storage import SimulatedDisk

POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "lfu": LFUPolicy,
    "lru2": lambda: LRUKPolicy(k=2),
    "lru3-crp": lambda: LRUKPolicy(k=3, correlated_reference_period=2),
}

traces = st.lists(st.integers(min_value=0, max_value=14),
                  min_size=1, max_size=100)
capacities = st.integers(min_value=1, max_value=5)


@pytest.mark.parametrize("name", sorted(POLICIES))
@given(trace=traces, capacity=capacities)
@settings(max_examples=25, deadline=None)
def test_pool_and_simulator_agree(name, trace, capacity):
    factory = POLICIES[name]

    simulator = CacheSimulator(factory(), capacity)
    for page in trace:
        simulator.access(page)

    disk = SimulatedDisk()
    disk.allocate_many(15)
    pool = BufferPool(disk, factory(), capacity)
    for page in trace:
        pool.fetch(page, pin=False)

    assert pool.resident_pages == simulator.resident_pages
    assert pool.stats.hits == simulator.counter.hits
    assert pool.stats.misses == simulator.counter.misses
    assert pool.stats.evictions == simulator.evictions


@given(trace=traces, capacity=capacities)
@settings(max_examples=25, deadline=None)
def test_pool_physical_reads_equal_misses(trace, capacity):
    disk = SimulatedDisk()
    disk.allocate_many(15)
    pool = BufferPool(disk, LRUPolicy(), capacity)
    for page in trace:
        pool.fetch(page, pin=False)
    assert disk.stats.reads == pool.stats.misses
