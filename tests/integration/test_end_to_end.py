"""End-to-end scenarios spanning engine, trace capture, and simulation."""

import pytest

from repro.analysis import skew_profile
from repro.buffer import BufferPool, TraceRecorder
from repro.core import LRUKPolicy
from repro.db import build_customer_database
from repro.policies import LRUPolicy
from repro.sim import CacheSimulator
from repro.storage import SimulatedDisk, read_trace, write_trace


class TestExample11EndToEnd:
    """Example 1.1 executed for real: engine -> trace -> policies."""

    @pytest.fixture(scope="class")
    def captured_trace(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, LRUPolicy(), capacity=4096)
        database = build_customer_database(pool, customers=4000)
        # Snapshot the hot set BEFORE attaching the recorder: walking the
        # leaf chain is itself page traffic and must not leak in.
        hot = set([database.index.root_page_id]
                  + database.index_leaf_pages())
        recorder = TraceRecorder()
        pool.observer = recorder
        from repro.stats import SeededRng
        rng = SeededRng(13)
        for _ in range(4000):
            database.lookup(rng.randrange(4000))
        pool.observer = None
        return list(recorder.references), hot

    def test_reference_pattern_alternates(self, captured_trace):
        references, hot = captured_trace
        # Each lookup: root, leaf, record -> exactly 3 refs per lookup.
        assert len(references) == 12_000
        for i in range(0, 300, 3):
            assert references[i].page in hot        # root
            assert references[i + 1].page in hot    # leaf
            assert references[i + 2].page not in hot  # record

    def test_skew_matches_example_11_arithmetic(self, captured_trace):
        references, hot = captured_trace
        profile = skew_profile(references)
        # Index pages are ~1% of touched pages but 2/3 of references.
        assert profile.mass_of_top_fraction(
            len(hot) / profile.touched_pages) == pytest.approx(2 / 3,
                                                               abs=0.02)

    def test_lru2_keeps_leaves_lru1_does_not(self, captured_trace):
        references, hot = captured_trace
        capacity = len(hot) + 2
        residents = {}
        for name, policy in (("lru1", LRUPolicy()),
                             ("lru2", LRUKPolicy(k=2))):
            simulator = CacheSimulator(policy, capacity)
            for ref in references:
                simulator.access(ref)
            residents[name] = simulator.resident_pages
        # LRU-2 retains (almost) the whole index — a handful of record
        # pages with two recent references can transiently displace a leaf,
        # which is legitimate Definition 2.2 behaviour; LRU-1 holds a
        # recency mixture dominated by record pages.
        lru2_hot = len(residents["lru2"] & hot)
        lru1_hot = len(residents["lru1"] & hot)
        assert lru2_hot >= int(len(hot) * 0.75)
        assert lru1_hot < lru2_hot
        assert lru1_hot <= len(hot) * 0.6

    def test_trace_file_roundtrip_preserves_decisions(self, captured_trace,
                                                      tmp_path):
        references, _ = captured_trace
        path = tmp_path / "example11.trace"
        write_trace(path, references[:2000])
        replayed = list(read_trace(path))
        direct = CacheSimulator(LRUKPolicy(k=2), 16)
        for ref in references[:2000]:
            direct.access(ref)
        from_file = CacheSimulator(LRUKPolicy(k=2), 16)
        for ref in replayed:
            from_file.access(ref)
        assert direct.counter.hits == from_file.counter.hits
        assert direct.resident_pages == from_file.resident_pages


class TestPinsAgainstEviction:
    def test_pinned_working_page_survives_hostile_policy(self):
        disk = SimulatedDisk()
        disk.allocate_many(64)
        pool = BufferPool(disk, LRUKPolicy(k=2), capacity=4)
        with pool.pinned_page(0):
            for page in range(1, 40):
                pool.fetch(page, pin=False)
            assert pool.is_resident(0)
        # After unpinning, the parade can finally evict it.
        for page in range(40, 60):
            pool.fetch(page, pin=False)
        assert not pool.is_resident(0)
