"""Smoke tests: every example script runs end to end (reduced sizes).

Examples are user-facing documentation; a broken one is a broken promise.
Each test imports the script as a module and executes its ``main`` with
shrunken parameters where the script accepts them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "LRU-2 (the paper)" in out
        assert "B(1)/B(2)" in out

    def test_example_1_1(self, capsys, monkeypatch):
        module = load_example("example_1_1_btree.py")
        monkeypatch.setattr(sys, "argv",
                            ["example_1_1_btree.py", "--customers", "600",
                             "--lookups", "1500"])
        module.main()
        out = capsys.readouterr().out
        assert "index pages held" in out
        assert "LRU-2" in out

    def test_oltp_bank_trace(self, capsys, monkeypatch, tmp_path):
        module = load_example("oltp_bank_trace.py")
        monkeypatch.setattr(sys, "argv",
                            ["oltp_bank_trace.py", "--scale", "0.02",
                             "--trace-file",
                             str(tmp_path / "bank.trace")])
        module.main()
        out = capsys.readouterr().out
        assert "Trace characterization" in out
        assert "LRU-2" in out

    def test_moving_hotspot_adaptivity(self, capsys, monkeypatch):
        module = load_example("moving_hotspot_adaptivity.py")
        monkeypatch.setattr(module, "EPOCHS", 2)
        monkeypatch.setattr(module, "EPOCH_LENGTH", 4000)
        monkeypatch.setattr(module, "WINDOW", 2000)
        module.main()
        out = capsys.readouterr().out
        assert "hot set jumped" in out
        assert "LFU" in out

    def test_tuning_crp_rip(self, capsys, monkeypatch):
        module = load_example("tuning_crp_rip.py")
        module.part_2_rip()   # the cheaper half exercises both helpers
        out = capsys.readouterr().out
        assert "Five Minute Rule break-even" in out
        assert "history blocks" in out

    def test_scan_swamping(self, capsys, monkeypatch):
        module = load_example("sequential_scan_swamping.py")
        monkeypatch.setattr(module, "REFERENCES", 12_000)
        monkeypatch.setattr(module, "WARMUP", 3_000)
        monkeypatch.setattr(module, "BUFFER_PAGES", 550)
        module.main()
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "MRU" in out
