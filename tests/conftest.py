"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.policies.base import ReplacementPolicy
from repro.sim import CacheSimulator
from repro.types import PageId, Reference


def drive(policy: ReplacementPolicy, pages: Sequence[PageId],
          capacity: int) -> CacheSimulator:
    """Run a page-id sequence through a fresh simulator."""
    simulator = CacheSimulator(policy, capacity)
    for page in pages:
        simulator.access(page)
    return simulator


def hit_ratio(policy: ReplacementPolicy, pages: Sequence[PageId],
              capacity: int, warmup: int = 0) -> float:
    """Hit ratio of a page sequence with an optional warm-up prefix."""
    simulator = CacheSimulator(policy, capacity)
    for index, page in enumerate(pages):
        if index == warmup and warmup > 0:
            simulator.start_measurement()
        simulator.access(page)
    return simulator.hit_ratio


def eviction_order(policy: ReplacementPolicy, pages: Sequence[PageId],
                   capacity: int) -> List[PageId]:
    """The sequence of evicted pages a policy produces on a trace."""
    simulator = CacheSimulator(policy, capacity)
    evicted: List[PageId] = []
    for page in pages:
        outcome = simulator.access(page)
        if outcome.evicted is not None:
            evicted.append(outcome.evicted)
    return evicted


class BruteForceBackwardDistance:
    """Definition 2.1 computed directly from the raw reference string.

    Used to validate LRU-K's incremental HIST bookkeeping (with CRP=0,
    where every reference is uncorrelated).
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self.history: Dict[PageId, List[int]] = {}
        self.now = 0

    def record(self, page: PageId) -> None:
        """Append one reference (time advances by one)."""
        self.now += 1
        self.history.setdefault(page, []).append(self.now)

    def backward_k_distance(self, page: PageId) -> float:
        """b_t(p, K) per Definition 2.1."""
        times = self.history.get(page, [])
        if len(times) < self.k:
            return float("inf")
        return self.now - times[-self.k]

    def kth_most_recent_time(self, page: PageId) -> int:
        """HIST(p, K), or 0 when unknown."""
        times = self.history.get(page, [])
        if len(times) < self.k:
            return 0
        return times[-self.k]


def simulate_opt_misses(pages: Sequence[PageId], capacity: int) -> int:
    """Independent Belady simulation (miss count) for oracle tests."""
    next_use: Dict[PageId, List[int]] = {}
    for index in range(len(pages) - 1, -1, -1):
        next_use.setdefault(pages[index], []).append(index)
    resident: set = set()
    misses = 0
    for index, page in enumerate(pages):
        occurrences = next_use[page]
        occurrences.pop()  # consume this occurrence
        if page in resident:
            continue
        misses += 1
        if len(resident) >= capacity:
            # Evict the resident page whose next use is farthest.
            def next_of(candidate: PageId) -> float:
                future = next_use[candidate]
                return future[-1] if future else float("inf")
            victim = max(resident, key=next_of)
            resident.discard(victim)
        resident.add(page)
    return misses


@pytest.fixture
def two_pool_trace() -> List[PageId]:
    """A short deterministic two-pool-like trace: pages 0-4 hot, 100+ cold."""
    from repro.stats import SeededRng
    rng = SeededRng(42)
    trace: List[PageId] = []
    for index in range(2000):
        if index % 2 == 0:
            trace.append(rng.randrange(5))
        else:
            trace.append(100 + rng.randrange(500))
    return trace
