"""Tests for streaming statistics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import StreamingMinMax, StreamingMoments

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestStreamingMoments:
    def test_empty_defaults(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.mean == 0.0
        assert moments.variance == 0.0
        assert moments.stderr == 0.0

    def test_single_value(self):
        moments = StreamingMoments()
        moments.add(5.0)
        assert moments.mean == 5.0
        assert moments.variance == 0.0

    def test_known_values(self):
        moments = StreamingMoments()
        moments.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert moments.mean == pytest.approx(5.0)
        assert moments.variance == pytest.approx(32.0 / 7.0)

    @given(values=st.lists(floats, min_size=2, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_matches_two_pass_computation(self, values):
        moments = StreamingMoments()
        moments.extend(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert moments.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert moments.variance == pytest.approx(variance, rel=1e-6, abs=1e-6)

    @given(left=st.lists(floats, min_size=1, max_size=50),
           right=st.lists(floats, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenation(self, left, right):
        a = StreamingMoments()
        a.extend(left)
        b = StreamingMoments()
        b.extend(right)
        merged = a.merge(b)
        combined = StreamingMoments()
        combined.extend(left + right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean,
                                            rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance,
                                                rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        a = StreamingMoments()
        a.extend([1.0, 2.0])
        merged = a.merge(StreamingMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_stddev_is_sqrt_variance(self):
        moments = StreamingMoments()
        moments.extend([1.0, 3.0])
        assert moments.stddev == pytest.approx(math.sqrt(moments.variance))


class TestStreamingMinMax:
    def test_empty(self):
        extremes = StreamingMinMax()
        assert extremes.minimum is None
        assert extremes.maximum is None
        assert extremes.span == 0.0

    def test_tracks_extremes(self):
        extremes = StreamingMinMax()
        for value in [3.0, -1.0, 7.0, 2.0]:
            extremes.add(value)
        assert extremes.minimum == -1.0
        assert extremes.maximum == 7.0
        assert extremes.span == 8.0
        assert extremes.count == 4

    @given(values=st.lists(floats, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_builtin_min_max(self, values):
        extremes = StreamingMinMax()
        for value in values:
            extremes.add(value)
        assert extremes.minimum == min(values)
        assert extremes.maximum == max(values)
