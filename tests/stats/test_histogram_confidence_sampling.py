"""Tests for histograms, confidence intervals, and sampling helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats import (
    ConfidenceInterval,
    Histogram,
    IntervalHistogram,
    ReservoirSampler,
    SeededRng,
    mean_confidence_interval,
    spawn_rngs,
)
from repro.stats.sampling import derive_seed


class TestHistogram:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            Histogram(low=1.0, high=1.0, bins=4)
        with pytest.raises(ConfigurationError):
            Histogram(low=0.0, high=1.0, bins=0)

    def test_counts_land_in_right_bins(self):
        histogram = Histogram(low=0.0, high=10.0, bins=10)
        for value in [0.5, 1.5, 1.7, 9.9]:
            histogram.add(value)
        counts = histogram.counts
        assert counts[0] == 1
        assert counts[1] == 2
        assert counts[9] == 1

    def test_out_of_range_clamped(self):
        histogram = Histogram(low=0.0, high=1.0, bins=2)
        histogram.add(-5.0)
        histogram.add(99.0)
        assert histogram.counts == [1, 1]
        assert histogram.total == 2

    def test_quantile_interpolation(self):
        histogram = Histogram(low=0.0, high=100.0, bins=100)
        for value in range(100):
            histogram.add(value + 0.5)
        assert histogram.quantile(0.5) == pytest.approx(50.0, abs=1.5)
        assert histogram.quantile(0.9) == pytest.approx(90.0, abs=1.5)

    def test_bin_edges(self):
        histogram = Histogram(low=0.0, high=4.0, bins=4)
        assert histogram.bin_edges() == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestIntervalHistogram:
    def test_zero_intervals_counted_separately(self):
        histogram = IntervalHistogram()
        histogram.add(0)
        histogram.add(0)
        histogram.add(5)
        assert histogram.zero_count == 2
        assert histogram.total == 3

    def test_geometric_buckets(self):
        histogram = IntervalHistogram()
        for interval in [1, 2, 3, 4, 7, 8, 100]:
            histogram.add(interval)
        buckets = dict((low, count)
                       for low, high, count in histogram.buckets())
        assert buckets[1] == 1        # [1,1]
        assert buckets[2] == 2        # [2,3]
        assert buckets[4] == 2        # [4,7]
        assert buckets[8] == 1        # [8,15]
        assert buckets[64] == 1       # [64,127]

    def test_fraction_at_most_is_conservative(self):
        histogram = IntervalHistogram()
        for interval in [1, 2, 4, 1000]:
            histogram.add(interval)
        assert histogram.fraction_at_most(7) == pytest.approx(3 / 4)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            IntervalHistogram().add(-1)

    def test_mean_approximation(self):
        histogram = IntervalHistogram()
        for _ in range(100):
            histogram.add(16)
        assert histogram.mean() == pytest.approx(16.0, rel=0.4)


class TestConfidence:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])

    def test_single_observation_zero_width(self):
        interval = mean_confidence_interval([0.4])
        assert interval.mean == 0.4
        assert interval.half_width == 0.0

    def test_identical_observations_zero_width(self):
        interval = mean_confidence_interval([0.3] * 5)
        assert interval.half_width == pytest.approx(0.0)

    def test_known_t_interval(self):
        # n=4, mean 2.5, sample sd sqrt(5/3); t(3)=3.182.
        interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert interval.mean == pytest.approx(2.5)
        expected_half = 3.182 * (5 / 3) ** 0.5 / 2.0
        assert interval.half_width == pytest.approx(expected_half, rel=1e-3)

    def test_contains_and_overlaps(self):
        a = ConfidenceInterval(mean=0.5, half_width=0.1, count=3)
        b = ConfidenceInterval(mean=0.65, half_width=0.1, count=3)
        assert a.contains(0.45)
        assert not a.contains(0.7)
        assert a.overlaps(b)
        assert not a.overlaps(
            ConfidenceInterval(mean=0.9, half_width=0.05, count=3))

    def test_more_data_narrows_interval(self):
        wide = mean_confidence_interval([0.1, 0.5, 0.9])
        narrow = mean_confidence_interval([0.1, 0.5, 0.9] * 10)
        assert narrow.half_width < wide.half_width


class TestSampling:
    def test_spawn_rngs_independent_and_deterministic(self):
        first = [rng.random() for rng in spawn_rngs(42, 3)]
        second = [rng.random() for rng in spawn_rngs(42, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_derive_seed_stable(self):
        assert derive_seed(1, 2) == derive_seed(1, 2)
        assert derive_seed(1, 2) != derive_seed(1, 3)

    def test_spawn_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            spawn_rngs(0, -1)

    def test_reservoir_keeps_everything_under_capacity(self):
        sampler = ReservoirSampler(capacity=10, rng=SeededRng(1))
        sampler.extend(range(5))
        assert sorted(sampler.sample) == [0, 1, 2, 3, 4]

    def test_reservoir_bounded(self):
        sampler = ReservoirSampler(capacity=10, rng=SeededRng(1))
        sampler.extend(range(1000))
        assert len(sampler.sample) == 10
        assert sampler.seen == 1000

    @given(seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_reservoir_is_roughly_uniform(self, seed):
        # Sample 50 of 500; the mean sampled value should be near 250.
        sampler = ReservoirSampler(capacity=50, rng=SeededRng(seed))
        sampler.extend(range(500))
        mean = sum(sampler.sample) / 50
        assert 130 < mean < 370
