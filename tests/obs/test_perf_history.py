"""BENCH_history.jsonl ledger + repro perf regression verdicts."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs import append_record, check_regression, load_history
from repro.obs.perf import HISTORY_SCHEMA, default_history_path, render_report


def _seed(path, values, bench="a12c", metric="lruk_kernel"):
    for index, value in enumerate(values):
        append_record(str(path), bench, {metric: value},
                      timestamp=f"2026-01-{index + 1:02d}T00:00:00Z")


class TestLedger:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record = append_record(
            str(path), "a12c", {"lruk_kernel": 1000.0, "skipped": None},
            meta={"cores": 4}, timestamp="2026-01-01T00:00:00Z")
        assert record["schema"] == HISTORY_SCHEMA
        loaded = load_history(str(path))
        assert loaded == [record]
        assert loaded[0]["metrics"]["skipped"] is None
        assert loaded[0]["meta"] == {"cores": 4}

    def test_bench_name_required(self, tmp_path):
        with pytest.raises(ConfigurationError):
            append_record(str(tmp_path / "h.jsonl"), "", {"m": 1.0})

    def test_load_filters_by_bench(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(str(path), "a12c", {"m": 1.0})
        append_record(str(path), "a12d", {"m": 2.0})
        assert [r["bench"] for r in load_history(str(path))] == \
            ["a12c", "a12d"]
        assert [r["metrics"]["m"]
                for r in load_history(str(path), bench="a12d")] == [2.0]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_load_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = append_record(str(path), "a12c", {"m": 1.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn json\n")
            handle.write('"just a string"\n')
            handle.write(json.dumps({"bench": "x"}) + "\n")  # no metrics
            handle.write(json.dumps(  # a future writer
                {"schema": HISTORY_SCHEMA + 1, "bench": "a12c",
                 "metrics": {"m": 9.0}}) + "\n")
        assert load_history(str(path)) == [good]

    def test_default_path_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "/tmp/custom.jsonl")
        assert default_history_path() == "/tmp/custom.jsonl"
        monkeypatch.delenv("REPRO_BENCH_HISTORY")
        assert default_history_path() == "BENCH_history.jsonl"


class TestVerdicts:
    def test_ok_within_threshold(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 1020.0, 980.0, 990.0])
        verdict = check_regression(load_history(str(path)), "lruk_kernel")
        assert verdict.status == "ok"
        assert verdict.exit_code == 0
        assert verdict.baseline == 1000.0  # median of first three
        assert verdict.latest == 990.0
        assert verdict.ratio == pytest.approx(0.99)

    def test_regression_beyond_threshold(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 1000.0, 1000.0, 850.0])
        verdict = check_regression(load_history(str(path)), "lruk_kernel",
                                   threshold=0.10)
        assert verdict.status == "regression"
        assert verdict.exit_code == 1
        assert "regressed" in verdict.message

    def test_median_baseline_shrugs_off_one_outlier(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # One anomalously fast historical run must not fail the latest.
        _seed(path, [1000.0, 5000.0, 1000.0, 990.0])
        verdict = check_regression(load_history(str(path)), "lruk_kernel")
        assert verdict.status == "ok"
        assert verdict.baseline == 1000.0

    def test_window_bounds_the_baseline(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # Ancient slow records age out of a window of 2.
        _seed(path, [100.0, 100.0, 1000.0, 1000.0, 995.0])
        verdict = check_regression(load_history(str(path)), "lruk_kernel",
                                   window=2)
        assert verdict.status == "ok"
        assert verdict.window_values == [1000.0, 1000.0]

    def test_empty_history_insufficient(self):
        verdict = check_regression([], "lruk_kernel")
        assert verdict.status == "insufficient"
        assert verdict.exit_code == 0

    def test_single_record_insufficient(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0])
        verdict = check_regression(load_history(str(path)), "lruk_kernel")
        assert verdict.status == "insufficient"
        assert verdict.exit_code == 0

    def test_null_latest_is_skipped_not_judged(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 1000.0])
        append_record(str(path), "a12c", {"lruk_kernel": None},
                      meta={"skipped_reason": "single-core"})
        verdict = check_regression(load_history(str(path)), "lruk_kernel")
        assert verdict.status == "skipped"
        assert verdict.exit_code == 0

    def test_null_rows_excluded_from_baseline(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(str(path), "a12c", {"lruk_kernel": 1000.0})
        append_record(str(path), "a12c", {"lruk_kernel": None})
        append_record(str(path), "a12c", {"lruk_kernel": 1010.0})
        append_record(str(path), "a12c", {"lruk_kernel": 990.0})
        verdict = check_regression(load_history(str(path)), "lruk_kernel")
        assert verdict.status == "ok"
        assert verdict.window_values == [1000.0, 1010.0]

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            check_regression([], "m", threshold=0.0)
        with pytest.raises(ConfigurationError):
            check_regression([], "m", threshold=1.0)
        with pytest.raises(ConfigurationError):
            check_regression([], "m", window=0)


class TestReportAndCli:
    def test_report_renders_trajectory_and_nulls(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 1100.0, 1200.0])
        append_record(str(path), "a12c", {"lruk_kernel": None},
                      meta={"skipped_reason": "single-core"},
                      timestamp="2026-01-04T00:00:00Z")
        records = load_history(str(path))
        verdict = check_regression(records, "lruk_kernel")
        report = render_report(records, verdict)
        assert "4 record(s)" in report
        assert "(null)" in report and "single-core" in report
        assert "trend:" in report
        assert report.endswith(verdict.message)

    def test_cli_ok_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 1000.0, 1005.0])
        assert main(["perf", "--history", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_regression_exit_one(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 1000.0, 500.0])
        assert main(["perf", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_custom_metric_and_threshold(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed(path, [10.0, 10.0, 8.0], bench="a12d", metric="speedup")
        assert main(["perf", "--history", str(path), "--bench", "a12d",
                     "--metric", "speedup", "--threshold", "0.3"]) == 0
        assert main(["perf", "--history", str(path), "--bench", "a12d",
                     "--metric", "speedup", "--threshold", "0.1"]) == 1

    def test_cli_default_history_via_env(self, tmp_path, monkeypatch,
                                         capsys):
        path = tmp_path / "h.jsonl"
        _seed(path, [1000.0, 990.0])
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(path))
        assert main(["perf"]) == 0
        assert "lruk_kernel" in capsys.readouterr().out

    def test_committed_ledger_passes_the_gate(self):
        """The repo's own seeded BENCH_history.jsonl must never fail CI."""
        import os
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        ledger = os.path.join(root, "BENCH_history.jsonl")
        assert os.path.exists(ledger)
        assert main(["perf", "--history", ledger]) == 0
