"""Dispatcher lifecycle ordering and ring-buffer overflow semantics.

Regression coverage for two sharp edges of the ambient-observability
design: events emitted after ``runtime.deactivate()`` (or ``close()``)
must never reach detached sinks, and the bounded ring buffer must drop
the *oldest* events when it overflows — both matter to the forked sweep
workers, which inherit the parent's dispatcher and immediately detach
from it.
"""

from repro.obs import (
    AccessEvent,
    CallbackSink,
    EventDispatcher,
    ProgressEvent,
    RingBufferSink,
)
from repro.obs import runtime


def _event(time=1):
    return AccessEvent(time=time, page=1, hit=True)


class TestDeactivateOrdering:
    def test_events_after_deactivate_do_not_reach_ambient_sinks(self):
        dispatcher = EventDispatcher()
        seen = []
        dispatcher.attach(CallbackSink(lambda event, ctx: seen.append(event)))
        with runtime.activate(dispatcher):
            resolved = runtime.resolve(None)
            resolved.emit(_event())
            runtime.deactivate()
            # A driver resolving *after* deactivation sees no dispatcher
            # at all: nothing to emit through.
            assert runtime.resolve(None) is None
        assert len(seen) == 1
        assert runtime.current() is None

    def test_close_detaches_before_any_later_emit(self):
        dispatcher = EventDispatcher()
        seen = []
        dispatcher.attach(CallbackSink(lambda event, ctx: seen.append(event)))
        dispatcher.emit(_event(1))
        dispatcher.close()
        assert not dispatcher.active
        # Emitting on a closed dispatcher is a silent no-op: the sink
        # list is empty, so the detached sink must not observe this.
        dispatcher.emit(_event(2))
        assert [event.time for event in seen] == [1]

    def test_flush_then_deactivate_preserves_buffered_events(self):
        dispatcher = EventDispatcher()
        flushed = []

        class BufferingSink(RingBufferSink):
            def flush(self):
                flushed.extend(self.events())
                self.clear()

        dispatcher.attach(BufferingSink())
        with runtime.activate(dispatcher):
            dispatcher.emit(_event(1))
            dispatcher.emit(_event(2))
            dispatcher.flush()
            runtime.deactivate()
        assert [event.time for event in flushed] == [1, 2]

    def test_close_is_idempotent_and_flush_safe_after_close(self):
        dispatcher = EventDispatcher()
        dispatcher.attach(RingBufferSink())
        dispatcher.close()
        dispatcher.close()
        dispatcher.flush()  # no sinks left; must not raise


class TestRingBufferOverflow:
    def test_overflow_drops_oldest_keeps_newest(self):
        ring = RingBufferSink(maxlen=3)
        for time in range(1, 6):
            ring.handle(_event(time), {})
        assert len(ring) == 3
        assert [event.time for event in ring.events()] == [3, 4, 5]

    def test_overflow_preserves_context_pairing(self):
        ring = RingBufferSink(maxlen=2)
        ring.handle(_event(1), {"seed": 1})
        ring.handle(_event(2), {"seed": 2})
        ring.handle(_event(3), {"seed": 3})
        assert [ctx["seed"] for _, ctx in ring.records()] == [2, 3]

    def test_kind_filter_applies_after_overflow(self):
        ring = RingBufferSink(maxlen=2)
        ring.handle(ProgressEvent(message="early"), {})
        ring.handle(_event(1), {})
        ring.handle(_event(2), {})
        assert ring.events(kind="progress") == []
        assert len(ring.events(kind="access")) == 2
