"""repro top: frame rendering, sources, and the polling loop."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, parse_exposition, render_exposition
from repro.obs.telemetry import MetricsServer
from repro.obs.top import fetch_url, read_snapshot_file, render_frame, run_top


def _exposition(counters=None, gauges=None, runs=()):
    registry = MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.counter(name).inc(value)
    for name, value in (gauges or {}).items():
        registry.set_gauge(name, value)
    if runs:
        histogram = registry.histogram("protocol.run_hit_ratio", 0.0, 1.0)
        for value in runs:
            histogram.observe(value)
    return parse_exposition(render_exposition(registry))


class TestRenderFrame:
    def test_empty_exposition_hints_at_the_problem(self):
        frame = render_frame(parse_exposition(""))
        assert "no samples yet" in frame

    def test_sweep_progress_bar(self):
        frame = render_frame(_exposition(
            gauges={"sweep.cells_total": 8, "sweep.cells_done": 2}))
        assert "2/8 cells" in frame and "25%" in frame

    def test_cumulative_fallback_without_a_previous_poll(self):
        frame = render_frame(_exposition(
            counters={"protocol.references": 1000, "protocol.hits": 250,
                      "protocol.misses": 750}))
        assert "rate needs two polls" in frame
        assert "0.2500 (cumulative)" in frame

    def test_rates_derive_from_successive_polls(self):
        previous = _exposition(
            counters={"protocol.references": 1000, "protocol.hits": 100,
                      "protocol.misses": 900})
        current = _exposition(
            counters={"protocol.references": 3000, "protocol.hits": 1100,
                      "protocol.misses": 1900})
        frame = render_frame(current, previous, elapsed=2.0)
        assert "1,000" in frame  # 2000 new refs / 2s
        assert "0.5000 (this poll)" in frame  # 1000 hits / 2000 refs

    def test_run_histogram_stats_and_sketch(self):
        frame = render_frame(_exposition(runs=(0.2, 0.4, 0.4, 0.6)))
        assert "runs 4" in frame
        assert "mean 0.4000" in frame
        assert "p50" in frame and "p95" in frame
        assert "▕" in frame  # the bucket-density strip

    def test_flat_snapshot_histogram_keys_also_work(self):
        exposition = parse_exposition("")
        exposition.samples = {"protocol.run_hit_ratio.count": 3.0,
                              "protocol.run_hit_ratio.mean": 0.5,
                              "protocol.run_hit_ratio.p50": 0.5,
                              "protocol.run_hit_ratio.p95": 0.6}
        frame = render_frame(exposition)
        assert "runs 3" in frame and "mean 0.5000" in frame

    def test_fault_counters_render_when_present(self):
        frame = render_frame(_exposition(
            counters={"sweep.cell.retries": 2, "sweep.cell.timeouts": 0,
                      "sweep.cell.fallbacks": 0, "sweep.cell.failures": 0,
                      "sweep.pool.rebuilds": 1}))
        assert "retries 2" in frame and "rebuilds 1" in frame

    def test_faults_absent_when_unregistered(self):
        frame = render_frame(_exposition(
            counters={"protocol.references": 10}))
        assert "faults" not in frame

    def test_resource_gauges(self):
        frame = render_frame(_exposition(
            gauges={"process.rss_bytes": 512 * 1024 * 1024,
                    "process.cpu_seconds": 12.5,
                    "process.threads": 3,
                    "process.gc_gen2_collections": 4}))
        assert "512.0 MiB" in frame
        assert "cpu 12.5s" in frame
        assert "threads 3" in frame and "gc2 4" in frame

    def test_worker_provenance_line(self):
        registry = MetricsRegistry()
        registry.merge_gauges({"protocol.last_run_hit_ratio": 0.4},
                              worker="111")
        registry.merge_gauges({"protocol.last_run_evictions": 9.0},
                              worker="222")
        exposition = parse_exposition(render_exposition(registry))
        frame = render_frame(exposition)
        assert "workers" in frame
        assert "111" in frame and "222" in frame

    def test_colorless_by_default_color_on_request(self):
        exposition = _exposition(counters={"sweep.cell.retries": 1,
                                           "sweep.cell.timeouts": 0,
                                           "sweep.cell.fallbacks": 0,
                                           "sweep.cell.failures": 0,
                                           "sweep.pool.rebuilds": 0})
        assert "\x1b[" not in render_frame(exposition)
        assert "\x1b[31m" in render_frame(exposition, color=True)


class TestSources:
    def test_fetch_url_appends_metrics_path(self):
        registry = MetricsRegistry()
        registry.counter("protocol.hits").inc(4)
        with MetricsServer(registry) as server:
            bare = fetch_url(server.url)
            explicit = fetch_url(server.url + "/metrics")
        assert bare.value("protocol.hits") == 4
        assert explicit.value("protocol.hits") == 4

    def test_read_snapshot_file_uses_last_snapshot(self, tmp_path):
        path = tmp_path / "m.jsonl"
        records = [
            {"event": "access", "page": 1},
            {"event": "snapshot", "phase": "run",
             "counters": {"protocol.hits": 1.0}},
            {"event": "snapshot", "phase": "final",
             "counters": {"protocol.hits": 9.0, "label": "x"}},
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.write("{torn tail\n")
        exposition = read_snapshot_file(str(path))
        assert exposition.value("protocol.hits") == 9.0
        assert not exposition.has("label")  # non-numeric values dropped


class TestRunTop:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            run_top()
        with pytest.raises(ConfigurationError):
            run_top(url="http://x", file="y")
        with pytest.raises(ConfigurationError):
            run_top(url="http://x", interval=0.0)

    def test_once_against_a_live_server(self):
        registry = MetricsRegistry()
        registry.counter("protocol.references").inc(123)
        out = io.StringIO()
        with MetricsServer(registry) as server:
            code = run_top(url=server.url, once=True, stream=out)
        assert code == 0
        text = out.getvalue()
        assert "123" in text
        assert "\x1b[" not in text  # --once never paints

    def test_once_against_a_snapshot_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"event": "snapshot",
                 "counters": {"protocol.hits": 5.0,
                              "protocol.misses": 5.0}}) + "\n")
        out = io.StringIO()
        assert run_top(file=str(path), once=True, stream=out) == 0
        assert "0.5000 (cumulative)" in out.getvalue()

    def test_unreachable_endpoint_exits_one(self):
        out = io.StringIO()
        code = run_top(url="http://127.0.0.1:9/metrics", once=True,
                       stream=out)
        assert code == 1
        assert "cannot read" in out.getvalue()

    def test_endpoint_disappearing_after_success_is_clean_exit(self):
        registry = MetricsRegistry()
        registry.counter("protocol.hits").inc(1)
        server = MetricsServer(registry)
        server.start()
        url = server.url
        out = io.StringIO()
        # Two frames requested, but the server dies after the first
        # poll — a finished sweep must read as success, not failure.
        original_sleep_over = {"stopped": False}

        code = None
        import threading

        def stop_soon():
            server.stop()
            original_sleep_over["stopped"] = True

        timer = threading.Timer(0.2, stop_soon)
        timer.start()
        try:
            code = run_top(url=url, frames=5, interval=0.1, stream=out)
        finally:
            timer.cancel()
            server.stop()
        assert code == 0
        assert "endpoint gone" in out.getvalue()

    def test_frames_mode_renders_and_stops(self):
        registry = MetricsRegistry()
        registry.counter("protocol.references").inc(7)
        out = io.StringIO()
        with MetricsServer(registry) as server:
            code = run_top(url=server.url, frames=2, interval=0.01,
                           stream=out)
        assert code == 0
        assert out.getvalue().count("repro top") == 2


class TestServiceRows:
    @staticmethod
    def _service_exposition(requests=100, hits=60, misses=40,
                            latencies=(), tenants=()):
        registry = MetricsRegistry()
        registry.counter("service.requests").inc(requests)
        registry.counter("service.hits").inc(hits)
        registry.counter("service.misses").inc(misses)
        if latencies:
            histogram = registry.histogram("service.request_ms",
                                           0.0, 5.0, 500)
            for value in latencies:
                histogram.observe(value)
        for tenant, tenant_hits, tenant_misses in tenants:
            registry.counter(f"service.tenant.{tenant}.hits").inc(
                tenant_hits)
            registry.counter(f"service.tenant.{tenant}.misses").inc(
                tenant_misses)
        return parse_exposition(render_exposition(registry))

    def test_absent_without_service_counters(self):
        frame = render_frame(_exposition(
            counters={"protocol.references": 10}))
        assert "svc hits" not in frame

    def test_cumulative_service_section(self):
        frame = render_frame(self._service_exposition())
        assert "service" in frame
        assert "0.6000 (cumulative)" in frame

    def test_request_rate_from_successive_polls(self):
        previous = self._service_exposition(requests=100)
        current = self._service_exposition(requests=300)
        frame = render_frame(current, previous, elapsed=2.0)
        assert "100 req/s" in frame  # 200 new requests / 2s

    def test_latency_quantiles_from_scraped_histogram(self):
        frame = render_frame(self._service_exposition(
            latencies=[0.01] * 99 + [2.0]))
        assert "svc ms" in frame
        assert "p50" in frame and "p999" in frame

    def test_latency_from_flat_snapshot_keys(self):
        exposition = self._service_exposition()
        exposition.samples.update({"service.request_ms.count": 4.0,
                                   "service.request_ms.p50": 0.01,
                                   "service.request_ms.p99": 0.5})
        frame = render_frame(exposition)
        assert "svc ms" in frame and "p99 0.500" in frame

    def test_per_tenant_rows_sorted(self):
        frame = render_frame(self._service_exposition(
            tenants=[("beta", 30, 10), ("alpha", 10, 30)]))
        assert "tenant alpha" in frame and "tenant beta" in frame
        assert frame.index("tenant alpha") < frame.index("tenant beta")
        assert "0.2500 (40 reqs)" in frame
        assert "0.7500 (40 reqs)" in frame

    def test_tenant_rows_parse_both_name_spellings(self):
        from repro.obs.top import _tenant_rows
        scraped = self._service_exposition(tenants=[("a", 5, 5)])
        assert _tenant_rows(scraped) == [("a", 5.0, 5.0)]
        flat = parse_exposition("")
        flat.samples = {"service.tenant.a.hits": 7.0,
                        "service.tenant.a.misses": 3.0}
        assert _tenant_rows(flat) == [("a", 7.0, 3.0)]
