"""Metrics registry and sliding-window recorder."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    AccessEvent,
    EventDispatcher,
    HitRatioWindowRecorder,
    MetricsRegistry,
    RingBufferSink,
    SlidingHitRatioWindow,
    SnapshotEvent,
)


class TestRegistry:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("evictions")
        counter.inc()
        counter.inc(4)
        with pytest.raises(ConfigurationError):
            counter.inc(-1)
        assert registry.snapshot()["evictions"] == 5.0

    def test_counter_is_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_gauge_callable_tracks_live_object(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.gauge("live", lambda: state["value"])
        state["value"] = 42
        assert registry.snapshot()["live"] == 42.0

    def test_set_on_callable_gauge_rejected(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live", lambda: 1)
        with pytest.raises(ConfigurationError):
            gauge.set(2)

    def test_duplicate_names_rejected_across_kinds(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x", 0, 1)

    def test_histogram_summary_in_snapshot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", 0.0, 100.0, bins=100)
        for value in range(100):
            histogram.observe(float(value))
        snapshot = registry.snapshot()
        assert snapshot["lat.count"] == 100.0
        assert snapshot["lat.mean"] == pytest.approx(49.5)
        assert snapshot["lat.p50"] == pytest.approx(50.0, abs=1.5)
        assert snapshot["lat.p99"] == pytest.approx(99.0, abs=1.5)
        assert "lat" in registry.names()


class TestSlidingWindow:
    def test_tracks_only_the_window(self):
        window = SlidingHitRatioWindow(4)
        for hit in (True, True, True, True):
            window.record(hit)
        assert window.hit_ratio == 1.0
        for hit in (False, False, False, False):
            window.record(hit)
        assert window.hit_ratio == 0.0
        assert window.count == 8
        assert window.occupancy == 4

    def test_partial_window_ratio(self):
        window = SlidingHitRatioWindow(10)
        window.record(True)
        window.record(False)
        assert window.hit_ratio == 0.5
        window.reset()
        assert window.hit_ratio == 0.0
        assert window.count == 0

    def test_eviction_of_hit_from_window_edge(self):
        window = SlidingHitRatioWindow(2)
        window.record(True)
        window.record(False)
        window.record(False)  # the True falls out
        assert window.hit_ratio == 0.0


class TestWindowRecorder:
    def _access(self, t, hit):
        return AccessEvent(time=t, page=1, hit=hit)

    def test_samples_every_stride_and_reemits(self):
        dispatcher = EventDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        recorder = dispatcher.attach(
            HitRatioWindowRecorder(dispatcher, window=4, stride=2))
        pattern = [True, False, True, True, False, False]
        for index, hit in enumerate(pattern, start=1):
            dispatcher.emit(self._access(index, hit))
        samples = ring.events("window")
        assert [event.time for event in samples] == [2, 4, 6]
        assert samples[0].hit_ratio == pytest.approx(0.5)   # T F
        assert samples[1].hit_ratio == pytest.approx(0.75)  # T F T T
        assert samples[2].hit_ratio == pytest.approx(0.5)   # T T F F
        assert len(recorder.series) == 3

    def test_start_snapshot_resets_the_window(self):
        dispatcher = EventDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        dispatcher.attach(
            HitRatioWindowRecorder(dispatcher, window=4, stride=2))
        for t in (1, 2):
            dispatcher.emit(self._access(t, True))
        dispatcher.emit(SnapshotEvent(time=0, phase="start", counters={}))
        for t in (1, 2):
            dispatcher.emit(self._access(t, False))
        samples = ring.events("window")
        assert samples[0].hit_ratio == 1.0   # pre-reset run
        assert samples[1].hit_ratio == 0.0   # fresh window, not 0.5
