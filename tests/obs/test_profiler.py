"""Hook latency profiler: transparency and percentile math."""

import pytest

from repro import CacheSimulator, LRUKPolicy
from repro.errors import ConfigurationError
from repro.obs import PROFILED_HOOKS, HookProfile, ProfiledPolicy
from repro.policies import LRUPolicy
from repro.workloads import ZipfianWorkload


class TestHookProfile:
    def test_nearest_rank_percentiles(self):
        profile = HookProfile("observe")
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            profile.add(value)
        assert profile.count == 5
        assert profile.percentile(0.0) == 1.0
        assert profile.percentile(0.50) == 3.0
        assert profile.percentile(1.0) == 5.0
        assert profile.mean == pytest.approx(3.0)

    def test_percentiles_are_monotone(self):
        profile = HookProfile("on_hit")
        for value in range(100):
            profile.add(float(value))
        summary = profile.summary_us()
        assert summary["count"] == 100.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_profile_is_zero(self):
        profile = HookProfile("on_evict")
        assert profile.mean == 0.0
        assert profile.percentile(0.99) == 0.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            HookProfile("x").percentile(1.5)

    def test_samples_added_after_a_query_still_sort(self):
        profile = HookProfile("observe")
        profile.add(2.0)
        assert profile.percentile(1.0) == 2.0
        profile.add(1.0)
        assert profile.percentile(0.0) == 1.0


def run(policy, capacity=64, references=5_000):
    workload = ZipfianWorkload(n=1_000)
    simulator = CacheSimulator(policy, capacity=capacity)
    evictions = []
    for reference in workload.references(references, seed=11):
        outcome = simulator.access(reference)
        if outcome.evicted is not None:
            evictions.append(outcome.evicted)
    return simulator.hit_ratio, evictions


class TestProfiledPolicy:
    @pytest.mark.parametrize("make", [
        lambda: LRUPolicy(),
        lambda: LRUKPolicy(k=2),
    ])
    def test_decisions_match_the_unwrapped_policy(self, make):
        plain_ratio, plain_evictions = run(make())
        profiled = ProfiledPolicy(make())
        wrapped_ratio, wrapped_evictions = run(profiled)
        assert wrapped_ratio == plain_ratio
        assert wrapped_evictions == plain_evictions

    def test_hook_counts_match_the_run(self):
        profiled = ProfiledPolicy(LRUPolicy())
        hit_ratio, evictions = run(profiled, references=2_000)
        hits = profiled.profiles["on_hit"].count
        admits = profiled.profiles["on_admit"].count
        assert profiled.profiles["observe"].count == 2_000
        assert hits + admits == 2_000
        assert hit_ratio == pytest.approx(hits / 2_000)
        assert profiled.profiles["choose_victim"].count == len(evictions)
        assert profiled.profiles["on_evict"].count == len(evictions)

    def test_report_covers_every_exercised_hook(self):
        profiled = ProfiledPolicy(LRUKPolicy(k=2))
        run(profiled)
        report = profiled.report()
        assert set(report) == set(PROFILED_HOOKS)
        for summary in report.values():
            assert summary["count"] > 0
            assert 0.0 <= summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_wrapper_exposes_inner_surface(self):
        inner = LRUKPolicy(k=2)
        profiled = ProfiledPolicy(inner)
        profiled.on_admit(1, 1)
        assert 1 in profiled
        assert len(profiled) == 1
        assert profiled.resident_pages == frozenset({1})
        # Policy-specific surface falls through to the wrapped instance.
        assert profiled.backward_k_distance(1, 5) == float("inf")
        assert profiled.stats is inner.stats

    def test_reset_keeps_profiles(self):
        profiled = ProfiledPolicy(LRUPolicy())
        profiled.on_admit(1, 1)
        profiled.reset()
        assert len(profiled) == 0
        assert profiled.profiles["on_admit"].count == 1
