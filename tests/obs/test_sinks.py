"""File, ring-buffer, console, and timeline sinks."""

import io
import json

from repro.obs import (
    AccessEvent,
    ConsoleProgressSink,
    EventDispatcher,
    EvictionEvent,
    JsonlSink,
    ProgressEvent,
    RingBufferSink,
    TimelineSink,
    WindowEvent,
)


class TestJsonlSink:
    def test_merges_context_and_parses_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        dispatcher = EventDispatcher()
        dispatcher.attach(JsonlSink.open(str(path)))
        with dispatcher.scoped(policy="LRU-2", capacity=100, seed=0):
            dispatcher.emit(AccessEvent(time=1, page=5, hit=False))
            dispatcher.emit(EvictionEvent(time=2, victim=5, dirty=True,
                                          backward_k_distance=12.0,
                                          history_informed=True))
        dispatcher.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["policy"] == "LRU-2"
        assert records[0]["capacity"] == 100
        assert records[1]["event"] == "eviction"
        assert records[1]["backward_k_distance"] == 12.0

    def test_access_sampling_keeps_decision_events(self):
        stream = io.StringIO()
        sink = JsonlSink(stream, access_every=3)
        for t in range(1, 10):  # 9 access events -> keep t=3,6,9
            sink.handle(AccessEvent(time=t, page=t, hit=False), {})
        sink.handle(EvictionEvent(time=10, victim=1), {})
        records = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        times = [r["time"] for r in records if r["event"] == "access"]
        assert times == [3, 6, 9]
        assert records[-1]["event"] == "eviction"
        assert sink.written == 4


class TestRingBufferSink:
    def test_bounded_retention(self):
        ring = RingBufferSink(maxlen=3)
        for t in range(1, 6):
            ring.handle(AccessEvent(time=t, page=t, hit=False), {"seed": t})
        assert len(ring) == 3
        assert ring.maxlen == 3
        assert [event.time for event in ring.events()] == [3, 4, 5]
        event, context = ring.records()[0]
        assert context == {"seed": 3}
        ring.clear()
        assert len(ring) == 0


class TestConsoleProgressSink:
    def test_prints_progress_only(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.handle(ProgressEvent(message="cell done"), {})
        sink.handle(AccessEvent(time=1, page=1, hit=True), {})
        assert stream.getvalue() == "  .. cell done\n"


class TestTimelineSink:
    def _window(self, t, ratio):
        return WindowEvent(time=t, hit_ratio=ratio, window=10, count=10)

    def test_renders_series_per_policy_at_largest_capacity(self):
        timeline = TimelineSink()
        for label, base in (("LRU-1", 0.2), ("LRU-2", 0.4)):
            for capacity in (10, 50):
                context = {"policy": label, "capacity": capacity, "seed": 0}
                for t in (100, 200, 300):
                    timeline.handle(self._window(t, base + t / 1000), context)
        assert not timeline.empty
        assert timeline.capacities() == [10, 50]
        rendered = timeline.render()
        assert "B=50" in rendered
        assert "LRU-1" in rendered and "LRU-2" in rendered
        assert "window hit ratio" in rendered

    def test_empty_and_missing_capacity_messages(self):
        timeline = TimelineSink()
        assert "no window samples" in timeline.render()
        timeline.handle(self._window(1, 0.5),
                        {"policy": "LRU-2", "capacity": 10, "seed": 0})
        assert "no samples at capacity 99" in timeline.render(capacity=99)

    def test_series_with_uneven_lengths_align(self):
        timeline = TimelineSink()
        for t in (100, 200, 300):
            timeline.handle(self._window(t, 0.3),
                            {"policy": "LRU-1", "capacity": 10, "seed": 0})
        for t in (100, 200):
            timeline.handle(self._window(t, 0.6),
                            {"policy": "LRU-2", "capacity": 10, "seed": 0})
        rendered = timeline.render()
        assert "t: 100 .. 200" in rendered
