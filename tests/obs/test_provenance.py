"""Eviction provenance: capture, lookup, Belady regret, decision identity."""

import json

import pytest

from repro import CacheSimulator, LRUKPolicy
from repro.errors import ConfigurationError
from repro.obs import (
    EventDispatcher,
    EvictionDecisionEvent,
    ProvenanceRecorder,
    RingBufferSink,
)
from repro.obs.provenance import CandidateInfo, EvictionDecision
from repro.workloads import ZipfianWorkload


def _pages(count=3000, n=400, seed=11):
    workload = ZipfianWorkload(n=n)
    return [ref.page for ref in workload.references(count, seed=seed)]


def _replay(pages, capacity=40, recorder=None, **policy_kwargs):
    policy = LRUKPolicy(k=2, **policy_kwargs)
    if recorder is not None:
        policy.provenance = recorder
    simulator = CacheSimulator(policy, capacity)
    for page in pages:
        simulator.access_page(page)
    return simulator


class TestDecisionIdentity:
    def test_provenance_capture_changes_no_decision(self):
        pages = _pages()
        recorder = ProvenanceRecorder()
        observed = _replay(pages, recorder=recorder)
        plain = _replay(pages)
        assert observed.counter.hits == plain.counter.hits
        assert observed.evictions == plain.evictions
        assert observed.resident_pages == plain.resident_pages
        assert recorder.evictions == observed.evictions

    def test_identity_holds_with_crp(self):
        pages = _pages()
        recorder = ProvenanceRecorder()
        observed = _replay(pages, recorder=recorder,
                           correlated_reference_period=20)
        plain = _replay(pages, correlated_reference_period=20)
        assert observed.counter.hits == plain.counter.hits
        assert observed.resident_pages == plain.resident_pages


class TestRecorder:
    def test_every_eviction_recorded_with_victim_on_top(self):
        pages = _pages(count=1500)
        recorder = ProvenanceRecorder(top_candidates=4)
        simulator = _replay(pages, recorder=recorder)
        assert len(recorder) == simulator.evictions
        for decision in recorder.decisions:
            chosen = [info for info in decision.candidates if info.chosen]
            assert [info.page for info in chosen] == [decision.victim]
            assert decision.considered >= 1
            assert decision.dirty is False  # annotated by the driver

    def test_find_prefers_exact_time_then_nearest(self):
        recorder = ProvenanceRecorder()

        def decision(time):
            return EvictionDecision(
                time=time, victim=7, victim_distance=1.0,
                victim_hist=[1], victim_last=1, candidates=[],
                considered=1, crp_excluded=[], crp_excluded_total=0,
                excluded_total=0, forced=False, retained_history=False)

        for time in (10, 50, 90):
            recorder.record(decision(time), resident=[7])
        assert recorder.find(7, at=50).time == 50
        assert recorder.find(7, at=60).time == 50
        assert recorder.find(7, at=75).time == 90
        assert recorder.find(7).time == 90
        assert recorder.find(7, at=1).time == 10
        assert recorder.find(404) is None
        assert [d.time for d in recorder.decisions_for(7)] == [10, 50, 90]

    def test_max_decisions_bounds_memory_and_index(self):
        pages = _pages(count=2000)
        recorder = ProvenanceRecorder(max_decisions=16)
        simulator = _replay(pages, recorder=recorder)
        assert simulator.evictions > 16
        assert len(recorder) == 16
        indexed = sum(len(recorder.decisions_for(page))
                      for page in {d.victim for d in recorder.decisions})
        assert indexed == 16

    def test_configuration_is_validated(self):
        with pytest.raises(ConfigurationError):
            ProvenanceRecorder(top_candidates=0)
        with pytest.raises(ConfigurationError):
            ProvenanceRecorder(max_decisions=0)
        with pytest.raises(ConfigurationError):
            ProvenanceRecorder(next_use=lambda page, now: None)


class TestBeladyRegret:
    def test_oracle_annotation(self):
        # Resident {1, 2}; 2 is next used sooner, so B0 evicts 1.
        next_uses = {1: 100, 2: 20}
        recorder = ProvenanceRecorder(
            next_use=lambda page, now: next_uses.get(page), horizon=200)
        decision = EvictionDecision(
            time=10, victim=2, victim_distance=5.0, victim_hist=[9],
            victim_last=9, candidates=[], considered=2, crp_excluded=[],
            crp_excluded_total=0, excluded_total=0, forced=False,
            retained_history=False)
        recorder.record(decision, resident=[1, 2])
        assert decision.belady_victim == 1
        assert decision.belady_agrees is False
        assert decision.regret == 80
        assert recorder.total_regret == 80
        assert recorder.belady_agreement_ratio == 0.0

    def test_equally_never_used_pages_count_as_agreement(self):
        recorder = ProvenanceRecorder(
            next_use=lambda page, now: None, horizon=50)
        decision = EvictionDecision(
            time=5, victim=9, victim_distance=None, victim_hist=[1],
            victim_last=1, candidates=[], considered=2, crp_excluded=[],
            crp_excluded_total=0, excluded_total=0, forced=False,
            retained_history=False)
        recorder.record(decision, resident=[3, 9])
        assert decision.belady_agrees is True
        assert decision.regret == 0

    def test_ratio_is_none_without_oracle(self):
        assert ProvenanceRecorder().belady_agreement_ratio is None


class TestRendering:
    def test_summary_lines_name_the_mechanism(self):
        pages = _pages(count=1500)
        recorder = ProvenanceRecorder(top_candidates=3)
        _replay(pages, recorder=recorder)
        text = "\n".join(recorder.decisions[-1].summary_lines())
        assert "backward K-distance" in text
        assert "HIST(q,K)" in text
        assert "candidates considered" in text
        assert "<- evicted" in text


class TestDecisionEvents:
    def test_decision_events_reach_sinks_and_serialize(self):
        pages = _pages(count=1500)
        dispatcher = EventDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        policy = LRUKPolicy(k=2)
        policy.provenance = ProvenanceRecorder()
        simulator = CacheSimulator(policy, 40, observability=dispatcher)
        for page in pages:
            simulator.access_page(page)
        decisions = ring.events(kind="decision")
        assert len(decisions) == simulator.evictions
        record = json.loads(json.dumps(decisions[-1].to_dict()))
        assert record["event"] == "decision"
        assert record["victim"] == decisions[-1].victim
        assert isinstance(record["candidates"], list)

    def test_from_decision_flattens_candidates(self):
        decision = EvictionDecision(
            time=4, victim=1, victim_distance=None, victim_hist=[2, 0],
            victim_last=2,
            candidates=[CandidateInfo(page=1, kth_time=0,
                                      last_uncorrelated=2,
                                      backward_k_distance=None,
                                      chosen=True)],
            considered=1, crp_excluded=[5], crp_excluded_total=1,
            excluded_total=0, forced=False, retained_history=True)
        event = EvictionDecisionEvent.from_decision(decision)
        assert event.retained_history is True
        assert event.crp_excluded == 1
        assert event.candidates[0]["chosen"] is True
