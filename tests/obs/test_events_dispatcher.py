"""Event model and dispatcher semantics."""

import json

import pytest

from repro import CacheSimulator, LRUKPolicy
from repro.obs import (
    AccessEvent,
    CallbackSink,
    EventDispatcher,
    EvictionEvent,
    ProgressEvent,
    PurgeEvent,
    RingBufferSink,
    SnapshotEvent,
    WindowEvent,
    victim_telemetry,
)
from repro.obs import runtime
from repro.policies import LRUPolicy


class TestEventModel:
    def test_to_dict_carries_kind_tag(self):
        record = AccessEvent(time=3, page=7, hit=True, write=True).to_dict()
        assert record == {"event": "access", "time": 3, "page": 7,
                          "hit": True, "write": True}

    def test_every_event_serializes_to_strict_json(self):
        events = [
            AccessEvent(time=1, page=1, hit=False),
            EvictionEvent(time=2, victim=1, dirty=True,
                          backward_k_distance=float("inf"),
                          history_informed=False),
            SnapshotEvent(time=None, phase="final", counters={"x": 1.0}),
            WindowEvent(time=5, hit_ratio=0.5, window=100, count=50),
            PurgeEvent(time=9, dropped=3, retained=10),
            ProgressEvent(message="hello"),
        ]
        for event in events:
            line = json.dumps(event.to_dict())
            assert json.loads(line)["event"] == event.kind

    def test_infinite_distance_maps_to_null(self):
        record = EvictionEvent(time=1, victim=2,
                               backward_k_distance=float("inf")).to_dict()
        assert record["backward_k_distance"] is None

    def test_victim_telemetry_for_lruk(self):
        policy = LRUKPolicy(k=2)
        policy.on_admit(1, 1)
        policy.on_hit(1, 5)
        distance, informed = victim_telemetry(policy, 1, 10)
        assert informed is True
        assert distance == pytest.approx(9.0)

    def test_victim_telemetry_for_plain_lru(self):
        assert victim_telemetry(LRUPolicy(), 1, 10) == (None, None)


class TestDispatcher:
    def test_inactive_without_sinks(self):
        dispatcher = EventDispatcher()
        assert not dispatcher.active
        assert not dispatcher
        dispatcher.emit(ProgressEvent(message="dropped"))  # no sinks: no-op

    def test_delivery_order_and_detach(self):
        dispatcher = EventDispatcher()
        seen = []
        first = dispatcher.attach(
            CallbackSink(lambda e, c: seen.append(("first", e.kind))))
        dispatcher.attach(
            CallbackSink(lambda e, c: seen.append(("second", e.kind))))
        dispatcher.emit(ProgressEvent(message="x"))
        assert seen == [("first", "progress"), ("second", "progress")]
        dispatcher.detach(first)
        dispatcher.emit(ProgressEvent(message="y"))
        assert seen[-1] == ("second", "progress")

    def test_scoped_context_restores(self):
        dispatcher = EventDispatcher()
        contexts = []
        dispatcher.attach(CallbackSink(lambda e, c: contexts.append(dict(c))))
        with dispatcher.scoped(policy="LRU-2", capacity=10):
            dispatcher.emit(ProgressEvent(message="in"))
            with dispatcher.scoped(seed=3):
                dispatcher.emit(ProgressEvent(message="nested"))
        dispatcher.emit(ProgressEvent(message="out"))
        assert contexts[0] == {"policy": "LRU-2", "capacity": 10}
        assert contexts[1] == {"policy": "LRU-2", "capacity": 10, "seed": 3}
        assert contexts[2] == {}

    def test_simulator_pays_nothing_until_sink_attached(self):
        dispatcher = EventDispatcher()
        simulator = CacheSimulator(LRUPolicy(), capacity=2,
                                   observability=dispatcher)
        simulator.access(1)
        ring = dispatcher.attach(RingBufferSink())
        simulator.access(2)
        assert [e.page for e in ring.events("access")] == [2]

    def test_ambient_activation_reaches_new_simulators(self):
        dispatcher = EventDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        with runtime.activate(dispatcher):
            simulator = CacheSimulator(LRUPolicy(), capacity=2)
            simulator.access(1)
        assert len(ring.events("access")) == 1
        assert runtime.current() is None
        # Simulators built outside the extent stay unobserved.
        CacheSimulator(LRUPolicy(), capacity=2).access(1)
        assert len(ring.events("access")) == 1


class TestHasSinks:
    def test_empty_dispatcher_has_no_sinks(self):
        dispatcher = EventDispatcher()
        assert dispatcher.has_sinks is False
        assert not dispatcher
        assert dispatcher.sinks == ()

    def test_attach_detach_toggle_the_guard(self):
        dispatcher = EventDispatcher()
        sink = dispatcher.attach(RingBufferSink())
        assert dispatcher.has_sinks is True
        assert bool(dispatcher)
        dispatcher.detach(sink)
        assert dispatcher.has_sinks is False

    def test_active_is_an_alias_for_has_sinks(self):
        dispatcher = EventDispatcher()
        assert dispatcher.active is False
        dispatcher.attach(RingBufferSink())
        assert dispatcher.active is True

    def test_close_clears_the_guard(self):
        dispatcher = EventDispatcher()
        dispatcher.attach(RingBufferSink())
        dispatcher.close()
        assert dispatcher.has_sinks is False

    def test_sinks_snapshot_preserves_attachment_order(self):
        dispatcher = EventDispatcher()
        first = dispatcher.attach(RingBufferSink())
        second = dispatcher.attach(RingBufferSink())
        assert dispatcher.sinks == (first, second)
        # A snapshot, not the live list: mutating it is impossible and
        # detaching afterwards does not rewrite history.
        snapshot = dispatcher.sinks
        dispatcher.detach(first)
        assert snapshot == (first, second)
        assert dispatcher.sinks == (second,)


class TestSuppress:
    def test_suppress_hides_the_ambient_dispatcher(self):
        dispatcher = EventDispatcher()
        dispatcher.attach(RingBufferSink())
        with runtime.activate(dispatcher):
            assert runtime.current() is dispatcher
            with runtime.suppress():
                assert runtime.current() is None
            assert runtime.current() is dispatcher

    def test_suppress_without_an_ambient_dispatcher_is_harmless(self):
        with runtime.suppress():
            assert runtime.current() is None
